//! Figure 2 study: the mutator/GC decomposition of execution time for
//! the three scalable benchmarks, 4 → 48 threads.
//!
//! The paper's two take-aways (§III-C), both visible here:
//! 1. GC overhead keeps increasing with thread count, even though heap
//!    usage and allocation volume are fixed;
//! 2. pure mutator time keeps shrinking all the way to 48 threads — so
//!    GC is what caps the overall scalability of these applications.
//!
//! ```sh
//! cargo run --release --example gc_scalability_study
//! ```

use scalesim::experiments::{run_fig2, ExpParams};
use scalesim::metrics::fmt2;

fn main() {
    let params = ExpParams::paper()
        .with_scale(0.5)
        .with_threads(vec![4, 8, 16, 32, 48]);
    let fig2 = run_fig2(&params).expect("fig2");
    println!("Figure 2 — mutator vs GC time (scalable apps):");
    println!("{}", fig2.table());

    for app in fig2.apps() {
        let gc = fig2.gc_series(&app);
        let mutator = fig2.mutator_series(&app);
        let rows = fig2.rows_of(&app);
        let (first, last) = (rows.first().expect("rows"), rows.last().expect("rows"));
        println!(
            "{app}: mutator {} -> {} ({}x faster), GC {} -> {} ({}x more), \
             GC share {} -> {}",
            first.mutator,
            last.mutator,
            fmt2(mutator.growth_ratio().map_or(0.0, |g| 1.0 / g)),
            first.gc,
            last.gc,
            fmt2(gc.growth_ratio().unwrap_or(0.0)),
            fmt2(first.gc_share() * 100.0) + "%",
            fmt2(last.gc_share() * 100.0) + "%",
        );
    }

    println!();
    println!("if GC time is ignored, all three apps keep speeding up through 48");
    println!("threads; with GC included, rising pause time erodes the gains —");
    println!("the paper's conclusion that GC limits scalability.");
}
