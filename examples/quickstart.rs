//! Quickstart: run one benchmark at two thread counts and print the
//! observables the ISPASS'15 paper is built on.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use scalesim::metrics::{fmt_pct, Table};
use scalesim::runtime::{Jvm, JvmConfig, RunReport};
use scalesim::workloads::xalan;

fn run(threads: usize, scale: f64) -> RunReport {
    let app = xalan().scaled(scale);
    let config = JvmConfig::builder()
        .threads(threads)
        .seed(42)
        .build()
        .expect("config");
    Jvm::new(config).run(&app).expect("run")
}

fn main() {
    // A slice of xalan's standard workload keeps this example snappy.
    let scale = 0.25;
    println!(
        "xalan @ {:.0}% of standard work, cores = threads\n",
        scale * 100.0
    );

    let mut table = Table::new(vec![
        "threads",
        "wall",
        "mutator",
        "gc",
        "gc%",
        "minor",
        "full",
        "lock acq",
        "contentions",
        "<1KiB lifespan",
    ]);
    for threads in [1, 4, 16, 48] {
        let r = run(threads, scale);
        table.row(vec![
            r.threads.to_string(),
            r.wall_time.to_string(),
            r.mutator_wall().to_string(),
            r.gc_time.to_string(),
            fmt_pct(r.gc_share()),
            r.gc.count(scalesim::gc::GcKind::Minor).to_string(),
            r.gc.count(scalesim::gc::GcKind::Full).to_string(),
            r.locks.total.acquisitions.to_string(),
            r.locks.total.contentions.to_string(),
            fmt_pct(r.trace.fraction_below(1024)),
        ]);
    }
    println!("{table}");

    let r4 = run(4, scale);
    let r48 = run(48, scale);
    println!(
        "speedup 4->48 threads: {:.2}x",
        r4.wall_time.as_secs_f64() / r48.wall_time.as_secs_f64()
    );
    println!(
        "lifespan shift: {} of objects die within 1 KiB at 4 threads, {} at 48",
        fmt_pct(r4.trace.fraction_below(1024)),
        fmt_pct(r48.trace.fraction_below(1024)),
    );
}
