//! Figure 1a/1b study: how lock acquisitions and contention instances
//! scale with thread count for all six benchmarks.
//!
//! The paper's finding: *scalable* applications show lock usage and
//! contention that grow with threads (performance gains outweigh the
//! extra synchronization); *non-scalable* applications' curves stay flat.
//!
//! ```sh
//! cargo run --release --example lock_contention_study
//! ```

use scalesim::experiments::{run_fig1_locks, ExpParams};
use scalesim::metrics::fmt2;

fn main() {
    let params = ExpParams::paper()
        .with_scale(0.25)
        .with_threads(vec![4, 8, 16, 32, 48]);
    println!(
        "lock usage vs threads, {:.0}% of standard work\n",
        params.scale * 100.0
    );

    let fig1 = run_fig1_locks(&params).expect("fig1");
    println!("{}", fig1.table());

    println!(
        "growth from T={} to T={}:",
        params.min_threads(),
        params.max_threads()
    );
    for series in fig1.acquisitions.iter().chain(fig1.contentions.iter()) {
        let metric = if fig1.acquisitions.iter().any(|s| std::ptr::eq(s, series)) {
            "acquisitions"
        } else {
            "contentions"
        };
        let growth = series
            .growth_ratio()
            .map_or_else(|| "n/a".to_owned(), |g| format!("{}x", fmt2(g)));
        println!("  {:<9} {:<13} {}", series.label(), metric, growth);
    }

    println!();
    println!("reading: scalable apps (sunflow, lusearch, xalan) grow in both");
    println!("metrics; non-scalable apps (h2, eclipse, jython) stay flat, because");
    println!("added threads receive no additional work to synchronize over.");
}
