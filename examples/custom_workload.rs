//! Building a custom application model: the public API is not limited to
//! the six DaCapo analogs. This example defines a fictional
//! "message-broker" workload — fan-in consumers on a shared topic lock
//! with bursty short-lived envelopes — and studies its scalability.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use scalesim::metrics::{fmt_pct, Table};
use scalesim::runtime::{Jvm, JvmConfig};
use scalesim::simkit::SimDuration;
use scalesim::workloads::{
    AppSpec, BatchMerge, CarrySpec, CriticalSpec, Distribution, ItemStateSpec, LockClass,
    LockClassId, PermanentSpec, ScalabilityClass, SyntheticApp, TempClass,
};

/// A queue-parallel message broker: mostly tiny envelopes that die as
/// soon as they are routed, a shared topic-index lock, and per-batch
/// offset commits.
fn message_broker() -> SyntheticApp {
    SyntheticApp::new(AppSpec {
        name: "broker".into(),
        class: ScalabilityClass::Scalable,
        min_heap_bytes: 16 << 20,
        total_items: 50_000,
        effective_cap: None,
        distribution: Distribution::GuidedQueue {
            factor: 16.0,
            lock: LockClassId(0),
            dispatch: SimDuration::from_nanos(900),
            merge: Some(BatchMerge {
                class: LockClassId(2),
                held_ns: (2_000, 5_000),
            }),
        },
        lock_classes: vec![
            LockClass::new("partition-queue"),
            LockClass::new("topic-index"),
            LockClass::new("offset-commit"),
        ],
        compute_ns: (30_000, 50_000),
        temps: vec![
            // envelope headers: parsed and dropped immediately
            TempClass {
                count: 12,
                bytes: (48, 192),
                gap_ns: (50, 150),
            },
            // payload views: live across the routing decision
            TempClass {
                count: 4,
                bytes: (256, 2_048),
                gap_ns: (600, 1_800),
            },
        ],
        item_state: ItemStateSpec {
            count: 1,
            bytes: (512, 1_024),
        },
        carries: vec![CarrySpec {
            bytes: (1_024, 4_096),
            items: 32,
            probability: 0.2,
        }],
        permanent: Some(PermanentSpec {
            bytes: 8 << 10,
            probability: 0.01,
        }),
        criticals: vec![CriticalSpec {
            class: LockClassId(1),
            held_ns: (400, 900),
            probability: 0.9,
        }],
    })
}

fn main() {
    let app = message_broker().scaled(0.5);
    println!("custom workload: a fan-in message broker\n");

    let mut table = Table::new(vec![
        "threads",
        "wall",
        "gc%",
        "queue acq",
        "topic contentions",
        "<1KiB lifespan",
    ]);
    let mut walls = Vec::new();
    for threads in [1usize, 4, 16, 48] {
        let config = JvmConfig::builder()
            .threads(threads)
            .seed(7)
            .build()
            .expect("config");
        let report = Jvm::new(config).run(&app).expect("run");
        walls.push((threads, report.wall_time));
        table.row(vec![
            threads.to_string(),
            report.wall_time.to_string(),
            fmt_pct(report.gc_share()),
            report.locks.acquisitions_of("partition-queue").to_string(),
            report.locks.contentions_of("topic-index").to_string(),
            fmt_pct(report.trace.fraction_below(1 << 10)),
        ]);
    }
    println!("{table}");

    let speedup = walls[0].1.as_secs_f64() / walls.last().expect("non-empty").1.as_secs_f64();
    println!("1 -> 48 thread speedup: {speedup:.1}x");
    println!("\nthe same factors the paper identified apply: queue traffic and");
    println!("contention grow with threads, lifespans stretch, GC share climbs.");
}
