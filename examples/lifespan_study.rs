//! Figure 1c/1d study: object-lifespan CDFs under thread scaling, plus a
//! direct measurement of the paper's causal mechanism — thread
//! suspension.
//!
//! The paper measures lifespan as *bytes allocated to other objects
//! between an object's creation and death* (§II-A). More concurrent
//! allocators advance that clock faster, and suspended threads keep their
//! in-flight objects alive while the clock runs — so xalan's CDF shifts
//! right dramatically from 4 to 48 threads while eclipse's (which only
//! ever uses ~4 threads) barely moves.
//!
//! ```sh
//! cargo run --release --example lifespan_study
//! ```

use scalesim::experiments::{run_fig1c, run_fig1d, ExpParams};
use scalesim::metrics::fmt_pct;
use scalesim::runtime::{Jvm, JvmConfig};
use scalesim::workloads::xalan;

fn main() {
    let params = ExpParams::paper()
        .with_scale(0.25)
        .with_threads(vec![4, 16, 48]);

    let fig1d = run_fig1d(&params).expect("fig1d");
    println!("Figure 1d — xalan object-lifespan CDF:");
    println!("{}", fig1d.table());

    let fig1c = run_fig1c(&params).expect("fig1c");
    println!("Figure 1c — eclipse object-lifespan CDF:");
    println!("{}", fig1c.table());

    println!(
        "xalan  <1KiB: {} at T=4  ->  {} at T=48   (max CDF shift {})",
        fmt_pct(fig1d.frac_below_1k(4).expect("T=4 swept")),
        fmt_pct(fig1d.frac_below_1k(48).expect("T=48 swept")),
        fmt_pct(fig1d.max_shift()),
    );
    println!(
        "eclipse <1KiB: {} at T=4  ->  {} at T=48   (max CDF shift {})",
        fmt_pct(fig1c.frac_below_1k(4).expect("T=4 swept")),
        fmt_pct(fig1c.frac_below_1k(48).expect("T=48 swept")),
        fmt_pct(fig1c.max_shift()),
    );

    // The mechanism: suspension. Compare aggregate suspended time (alive
    // but not executing) per completed item at both ends of the sweep.
    println!("\nmechanism check — suspension grows with thread count (xalan):");
    for threads in [4usize, 48] {
        let config = JvmConfig::builder()
            .threads(threads)
            .seed(42)
            .build()
            .expect("config");
        let report = Jvm::new(config).run(&xalan().scaled(0.25)).expect("run");
        let per_item = report.total_suspension().as_secs_f64() * 1e9 / report.total_items() as f64;
        println!(
            "  T={threads:<2}: total suspension {}  ({per_item:.0} ns per item)",
            report.total_suspension()
        );
    }
}
