//! Ablations of the paper's two improvement proposals (§IV): biased
//! (phase/cohort) scheduling and the compartmentalized heap.
//!
//! ```sh
//! cargo run --release --example future_work_ablations
//! ```

use scalesim::experiments::{run_biased_sched, run_heaplets, ExpParams};
use scalesim::metrics::fmt2;

fn main() {
    let params = ExpParams::paper()
        .with_scale(0.25)
        .with_threads(vec![16, 48]);

    println!("ablation 1 — biased (cohort) scheduling on xalan:");
    let sched = run_biased_sched("xalan", &params).expect("abl-sched");
    println!("{}", sched.table());
    for variant in ["biased-2", "biased-4"] {
        if let (Some(v), Some(b)) = (sched.row(variant, 48), sched.row("baseline", 48)) {
            println!(
                "  {variant} @48T: <1KiB lifespans {} -> {} (interference reduced), \
                 wall {}x",
                fmt2(b.frac_below_1k * 100.0) + "%",
                fmt2(v.frac_below_1k * 100.0) + "%",
                fmt2(v.wall.as_secs_f64() / b.wall.as_secs_f64()),
            );
        }
    }
    println!(
        "  note: GC time barely moves — xalan's survivors are dominated by\n\
         \x20 per-thread carried caches, which phase scheduling cannot shorten.\n"
    );

    println!("ablation 2 — compartmentalized heaplets on xalan:");
    let heap = run_heaplets("xalan", &params).expect("abl-heap");
    println!("{}", heap.table());
    if let (Some(v), Some(b)) = (heap.row("heaplets", 48), heap.row("baseline", 48)) {
        println!(
            "  heaplets @48T: wall {} -> {} ({}x faster) — collections no longer\n\
             \x20 stop the world, matching the paper's predicted throughput win for\n\
             \x20 large multi-threaded server applications.",
            b.wall,
            v.wall,
            fmt2(b.wall.as_secs_f64() / v.wall.as_secs_f64()),
        );
    }
}
