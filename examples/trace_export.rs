//! Exporting the raw measurement streams: the Elephant-Tracks-style
//! object trace, the `-verbose:gc`-style collection log, and the
//! deterministic execution timeline as Chrome trace-event JSON.
//!
//! Useful for feeding external analysis tooling, or simply for eyeballing
//! what the simulated VM did.
//!
//! ```sh
//! cargo run --release --example trace_export
//! ```

use scalesim::objtrace::{format_trace, parse_trace, Retention};
use scalesim::runtime::{Jvm, JvmConfig};
use scalesim::trace::{format_timeline, parse_timeline, to_chrome_json, TraceConfig};
use scalesim::workloads::lusearch;

fn main() {
    // Full retention keeps the in-order event list (memory-heavy; use a
    // small run). Timeline tracing rides along: it is observational only,
    // so the measurements below are identical with it on or off.
    let app = lusearch().scaled(0.02);
    let config = JvmConfig::builder()
        .threads(4)
        .retention(Retention::Full)
        .trace(TraceConfig::on())
        .seed(42)
        .build()
        .expect("config");
    let report = Jvm::new(config).run(&app).expect("run");

    let events = report.trace.events().expect("full retention keeps events");
    let text = format_trace(events);
    println!("object trace: {} events, first ten lines:", events.len());
    for line in text.lines().take(10) {
        println!("  {line}");
    }
    // The format round-trips losslessly.
    assert_eq!(parse_trace(&text).expect("own output parses"), events);

    println!("\nverbose GC log:");
    for line in report.gc.to_verbose_gc().lines() {
        println!("  {line}");
    }

    if let Some(pauses) = report.gc.pause_summary() {
        println!(
            "\npause stats: mean {:.3}ms, p100 {:.3}ms over {} collections",
            pauses.mean() * 1e3,
            pauses.max() * 1e3,
            pauses.len()
        );
    }

    if let Some(per_thread) = report.trace.per_thread_histograms() {
        println!("\nper-thread median lifespans (allocation bytes):");
        for (thread, hist) in per_thread.iter().enumerate() {
            if let Some(p50) = hist.quantile(0.5) {
                println!("  thread {thread}: ~{p50} B over {} objects", hist.count());
            }
        }
    }

    // The 4-thread lusearch execution timeline: per-thread state spans,
    // monitor hold/wait spans, GC phases, and heap-pressure samples, as
    // Chrome trace-event JSON. Drop the file onto https://ui.perfetto.dev
    // (or chrome://tracing) to scrub through the run.
    let json = to_chrome_json(&report.timeline);
    let path = std::env::temp_dir().join("scalesim_lusearch_trace.json");
    std::fs::write(&path, &json).expect("write timeline export");
    println!(
        "\ntimeline: {} events ({} dropped by ring retention)",
        report.timeline.len(),
        report.timeline.dropped()
    );
    println!(
        "  wrote {} — open at https://ui.perfetto.dev",
        path.display()
    );

    // The compact text form round-trips losslessly, like the object trace.
    let text = format_timeline(&report.timeline);
    let reparsed = parse_timeline(&text).expect("own timeline output parses");
    assert_eq!(reparsed.len(), report.timeline.len());
    for line in text.lines().take(5) {
        println!("  {line}");
    }

    // The counters registry is always on, traced or not.
    println!("\ncounters:");
    for (id, value) in report.counters.iter() {
        println!("  {id:?} = {value}");
    }
}
