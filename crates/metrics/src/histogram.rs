//! Log-bucketed streaming histogram.
//!
//! Object lifespans span nine orders of magnitude (a few bytes to gigabytes
//! of allocation), so the natural x-axis is logarithmic — exactly how the
//! paper plots Figures 1c/1d. [`LogHistogram`] buckets by power of two and
//! keeps exact totals, which is all the CDFs need.

use std::fmt;

/// A histogram over `u64` values with one bucket per power of two.
///
/// Bucket `i` covers `[2^i, 2^(i+1))`; value `0` lands in bucket 0 together
/// with value 1 (lifespans of 0 and 1 byte are indistinguishable for our
/// purposes).
///
/// # Examples
///
/// ```
/// use scalesim_metrics::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in [1u64, 2, 3, 1024, 4096] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.fraction_below(1024), 0.6); // 1, 2, 3
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; 64],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            0
        } else {
            63 - value.leading_zeros() as usize
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations at once.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no observations have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean observation, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Smallest observation, or `None` when empty.
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Fraction of observations strictly below `threshold` (bucket
    /// resolution: exact when `threshold` is a power of two).
    ///
    /// Returns 0.0 for an empty histogram.
    #[must_use]
    pub fn fraction_below(&self, threshold: u64) -> f64 {
        if self.count == 0 || threshold == 0 {
            return 0.0;
        }
        let limit = Self::bucket_of(threshold);
        let below: u64 = self.buckets[..limit].iter().sum();
        // Within the threshold's own bucket, attribute a linear share —
        // exact for power-of-two thresholds (share = 0).
        let lo = if limit == 0 { 0 } else { 1u64 << limit };
        let hi = 1u64.checked_shl(limit as u32 + 1).unwrap_or(u64::MAX);
        let share = if threshold <= lo {
            0.0
        } else {
            (threshold - lo) as f64 / (hi - lo) as f64
        };
        (below as f64 + self.buckets[limit] as f64 * share) / self.count as f64
    }

    /// Approximate quantile `q` in `[0, 1]` (bucket upper bound), or `None`
    /// when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.count == 0 {
            return None;
        }
        let target = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64.checked_shl(i as u32 + 1).map_or(u64::MAX, |v| v - 1));
            }
        }
        Some(self.max)
    }

    /// The raw per-bucket counts, indexed by power-of-two bucket.
    ///
    /// Unlike [`LogHistogram::iter`] this exposes every bucket (including
    /// empty ones) so callers can persist and rebuild the histogram
    /// losslessly.
    #[must_use]
    pub fn bucket_counts(&self) -> [u64; 64] {
        self.buckets
    }

    /// The raw `min` field, including the `u64::MAX` empty sentinel.
    ///
    /// Persistence needs the sentinel verbatim so a round-tripped
    /// histogram compares (and `Debug`-formats) identically; ordinary
    /// callers want [`LogHistogram::min`].
    #[must_use]
    pub fn raw_min(&self) -> u64 {
        self.min
    }

    /// The raw `max` field, including the `0` empty sentinel.
    /// See [`LogHistogram::raw_min`].
    #[must_use]
    pub fn raw_max(&self) -> u64 {
        self.max
    }

    /// Rebuilds a histogram from raw parts captured via
    /// [`LogHistogram::bucket_counts`], [`LogHistogram::count`],
    /// [`LogHistogram::sum`], [`LogHistogram::raw_min`] and
    /// [`LogHistogram::raw_max`].
    ///
    /// The parts are trusted as-is (this is a persistence hook, not a
    /// constructor for new data); feeding back unmodified parts yields a
    /// histogram equal to the original.
    #[must_use]
    pub fn from_raw_parts(buckets: [u64; 64], count: u64, sum: u128, min: u64, max: u64) -> Self {
        LogHistogram {
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Iterates over `(bucket_lower_bound, count)` for non-empty buckets.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

impl fmt::Display for LogHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LogHistogram(n={}", self.count)?;
        if let (Some(mn), Some(mx)) = (self.min(), self.max()) {
            write!(f, ", min={mn}, max={mx}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<u64> for LogHistogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = LogHistogram::new();
        for v in iter {
            h.record(v);
        }
        h
    }
}

impl Extend<u64> for LogHistogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.mean(), None);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.fraction_below(100), 0.0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 0);
        assert_eq!(LogHistogram::bucket_of(2), 1);
        assert_eq!(LogHistogram::bucket_of(3), 1);
        assert_eq!(LogHistogram::bucket_of(4), 2);
        assert_eq!(LogHistogram::bucket_of(1023), 9);
        assert_eq!(LogHistogram::bucket_of(1024), 10);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 63);
    }

    #[test]
    fn count_sum_min_max_mean() {
        let h: LogHistogram = [4u64, 8, 12].into_iter().collect();
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 24);
        assert_eq!(h.min(), Some(4));
        assert_eq!(h.max(), Some(12));
        assert_eq!(h.mean(), Some(8.0));
    }

    #[test]
    fn fraction_below_power_of_two_is_exact() {
        let h: LogHistogram = [1u64, 2, 3, 1024, 4096].into_iter().collect();
        assert_eq!(h.fraction_below(1024), 0.6);
        // bucket 0 spans {0,1}; at the bucket boundary 2 the count is exact:
        // only the value 1 lies below
        assert_eq!(h.fraction_below(2), 0.2);
        assert!((h.fraction_below(u64::MAX) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fraction_below_is_monotone() {
        let h: LogHistogram = (1u64..1000).collect();
        let mut prev = 0.0;
        for t in [1u64, 2, 10, 100, 512, 1024, 1 << 20] {
            let f = h.fraction_below(t);
            assert!(f >= prev, "fraction_below({t})={f} < {prev}");
            prev = f;
        }
    }

    #[test]
    fn quantile_brackets_the_data() {
        let h: LogHistogram = (0..100u64).map(|_| 700u64).collect();
        // all values in bucket [512,1024)
        assert_eq!(h.quantile(0.5), Some(1023));
        assert_eq!(h.quantile(1.0), Some(1023));
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_out_of_range_panics() {
        let h: LogHistogram = [1u64].into_iter().collect();
        let _ = h.quantile(1.5);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a: LogHistogram = [1u64, 2].into_iter().collect();
        let b: LogHistogram = [1024u64].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), Some(1024));
        assert_eq!(a.min(), Some(1));
    }

    #[test]
    fn record_n_is_bulk_record() {
        let mut a = LogHistogram::new();
        a.record_n(7, 5);
        let b: LogHistogram = std::iter::repeat_n(7u64, 5).collect();
        assert_eq!(a, b);
        a.record_n(9, 0); // no-op
        assert_eq!(a.count(), 5);
    }

    #[test]
    fn iter_yields_nonempty_buckets_in_order() {
        let h: LogHistogram = [1u64, 100, 100_000].into_iter().collect();
        let v: Vec<_> = h.iter().collect();
        assert_eq!(v, vec![(0, 1), (64, 1), (65536, 1)]);
    }

    #[test]
    fn raw_parts_round_trip_preserves_equality() {
        let h: LogHistogram = [0u64, 1, 7, 1024, u64::MAX].into_iter().collect();
        let back = LogHistogram::from_raw_parts(
            h.bucket_counts(),
            h.count(),
            h.sum(),
            h.raw_min(),
            h.raw_max(),
        );
        assert_eq!(h, back);
        assert_eq!(format!("{h:?}"), format!("{back:?}"));
        // The empty sentinels survive verbatim too.
        let e = LogHistogram::new();
        let eb = LogHistogram::from_raw_parts(
            e.bucket_counts(),
            e.count(),
            e.sum(),
            e.raw_min(),
            e.raw_max(),
        );
        assert_eq!(e, eb);
        assert_eq!(e.raw_min(), u64::MAX);
        assert_eq!(e.raw_max(), 0);
    }

    #[test]
    fn display_nonempty() {
        let h: LogHistogram = [5u64].into_iter().collect();
        assert!(h.to_string().contains("n=1"));
    }
}
