//! Labelled `(x, y)` series — the unit of "one line in a figure".

use std::fmt;

/// One plotted line: a label plus `(x, y)` points, e.g. *xalan's lock
/// contentions vs. thread count*.
///
/// # Examples
///
/// ```
/// use scalesim_metrics::Series;
///
/// let mut s = Series::new("xalan");
/// s.push(4.0, 100.0);
/// s.push(48.0, 900.0);
/// assert_eq!(s.growth_ratio(), Some(9.0));
/// assert!(s.is_increasing());
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with a label.
    #[must_use]
    pub fn new<S: Into<String>>(label: S) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// The series label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends a point. X values should be pushed in increasing order.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        if let Some(&(px, _)) = self.points.last() {
            assert!(x > px, "series x values must be strictly increasing");
        }
        self.points.push((x, y));
        self
    }

    /// The points in insertion order.
    #[must_use]
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at the first point.
    #[must_use]
    pub fn first_y(&self) -> Option<f64> {
        self.points.first().map(|&(_, y)| y)
    }

    /// The y value at the last point.
    #[must_use]
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// `last_y / first_y` — how much the curve grew across the sweep.
    /// `None` if fewer than 2 points or the first y is 0.
    #[must_use]
    pub fn growth_ratio(&self) -> Option<f64> {
        if self.points.len() < 2 {
            return None;
        }
        let first = self.first_y()?;
        if first == 0.0 {
            return None;
        }
        Some(self.last_y()? / first)
    }

    /// Whether y is non-decreasing across the whole series.
    #[must_use]
    pub fn is_increasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 >= w[0].1)
    }

    /// Whether y is non-increasing across the whole series.
    #[must_use]
    pub fn is_decreasing(&self) -> bool {
        self.points.windows(2).all(|w| w[1].1 <= w[0].1)
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.label)?;
        for (i, (x, y)) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "({x:.0}, {y:.3})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_accessors() {
        let mut s = Series::new("a");
        s.push(1.0, 10.0).push(2.0, 5.0);
        assert_eq!(s.label(), "a");
        assert_eq!(s.len(), 2);
        assert_eq!(s.first_y(), Some(10.0));
        assert_eq!(s.last_y(), Some(5.0));
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_monotone_x_panics() {
        let mut s = Series::new("a");
        s.push(2.0, 1.0).push(2.0, 2.0);
    }

    #[test]
    fn growth_ratio_edge_cases() {
        let mut s = Series::new("a");
        assert_eq!(s.growth_ratio(), None);
        s.push(1.0, 0.0);
        s.push(2.0, 5.0);
        assert_eq!(s.growth_ratio(), None, "zero first y");
        let mut t = Series::new("b");
        t.push(1.0, 2.0).push(2.0, 8.0);
        assert_eq!(t.growth_ratio(), Some(4.0));
    }

    #[test]
    fn monotonicity_checks() {
        let mut up = Series::new("up");
        up.push(1.0, 1.0).push(2.0, 2.0).push(3.0, 2.0);
        assert!(up.is_increasing());
        assert!(!up.is_decreasing());

        let mut down = Series::new("down");
        down.push(1.0, 3.0).push(2.0, 1.0);
        assert!(down.is_decreasing());

        let empty = Series::new("e");
        assert!(empty.is_increasing() && empty.is_decreasing());
    }

    #[test]
    fn display_lists_points() {
        let mut s = Series::new("xalan");
        s.push(4.0, 1.5);
        assert_eq!(s.to_string(), "xalan: (4, 1.500)");
    }
}
