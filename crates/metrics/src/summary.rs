//! Scalar summaries of float samples (means, percentiles, imbalance).

use std::fmt;

/// Summary statistics over a set of `f64` samples.
///
/// # Examples
///
/// ```
/// use scalesim_metrics::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
}

impl Summary {
    /// Builds a summary from samples.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or contains NaN — a summary of nothing
    /// (or of not-a-number) has no meaningful statistics.
    #[must_use]
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "cannot summarize zero samples");
        assert!(
            samples.iter().all(|v| !v.is_nan()),
            "samples must not contain NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        let sum = sorted.iter().sum();
        Summary { sorted, sum }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: empty summaries cannot be constructed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Arithmetic mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.sum / self.sorted.len() as f64
    }

    /// Sum of samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Largest sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty")
    }

    /// Percentile `p` in `[0, 100]` (nearest-rank).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    #[must_use]
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
        let rank =
            ((p / 100.0 * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        self.sorted[rank - 1]
    }

    /// Population standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        let var =
            self.sorted.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / self.sorted.len() as f64;
        var.sqrt()
    }

    /// Coefficient of variation (`std_dev / mean`); 0.0 when the mean is 0.
    ///
    /// Used as the *workload-imbalance* metric: per-thread work shares with
    /// CV near 0 are "nearly uniform" (xalan/lusearch/sunflow in the paper),
    /// large CV means a few threads do most of the work (jython/eclipse).
    #[must_use]
    pub fn coefficient_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Max sample divided by mean — another imbalance view: 1.0 is perfect
    /// balance, `len()` means one sample holds everything.
    #[must_use]
    pub fn max_over_mean(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            1.0
        } else {
            self.max() / m
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Summary(n={}, mean={:.3}, min={:.3}, max={:.3}, sd={:.3})",
            self.len(),
            self.mean(),
            self.min(),
            self.max(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s = Summary::from_samples(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.mean(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
        assert_eq!(s.sum(), 10.0);
        assert!((s.std_dev() - 1.118033988749895).abs() < 1e-12);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let s = Summary::from_samples(&[10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(s.percentile(0.0), 10.0);
        assert_eq!(s.percentile(50.0), 30.0);
        assert_eq!(s.percentile(90.0), 50.0);
        assert_eq!(s.percentile(100.0), 50.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_panics() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_panics() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn imbalance_metrics() {
        let balanced = Summary::from_samples(&[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(balanced.coefficient_of_variation(), 0.0);
        assert_eq!(balanced.max_over_mean(), 1.0);

        let skewed = Summary::from_samples(&[20.0, 0.0, 0.0, 0.0]);
        assert!(skewed.coefficient_of_variation() > 1.0);
        assert_eq!(skewed.max_over_mean(), 4.0);
    }

    #[test]
    fn zero_mean_is_guarded() {
        let s = Summary::from_samples(&[0.0, 0.0]);
        assert_eq!(s.coefficient_of_variation(), 0.0);
        assert_eq!(s.max_over_mean(), 1.0);
    }

    #[test]
    fn display_nonempty() {
        let s = Summary::from_samples(&[1.0]);
        assert!(s.to_string().contains("mean=1.000"));
    }
}
