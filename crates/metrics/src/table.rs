//! Plain-text tables and CSV output for experiment results.
//!
//! The experiment drivers print the same rows/series the paper's figures
//! report; [`Table`] renders them aligned for the terminal and as CSV for
//! downstream plotting.

use std::fmt;

/// A simple column-aligned table.
///
/// # Examples
///
/// ```
/// use scalesim_metrics::Table;
///
/// let mut t = Table::new(vec!["app", "threads", "speedup"]);
/// t.row(vec!["xalan".into(), "48".into(), "17.2".into()]);
/// let text = t.to_string();
/// assert!(text.contains("xalan"));
/// assert!(t.to_csv().starts_with("app,threads,speedup\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Column headers.
    #[must_use]
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            joined.join(",") + "\n"
        };
        out.push_str(&line(&self.headers));
        for r in &self.rows {
            out.push_str(&line(r));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, (cell, w)) in cells.iter().zip(widths.iter()).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}")?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with 2 decimal places for table cells.
#[must_use]
pub fn fmt2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a fraction as a percentage with one decimal, e.g. `0.825` →
/// `"82.5%"`.
#[must_use]
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a byte count using binary units (`1536` → `"1.5KiB"`).
#[must_use]
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_align_under_headers() {
        let mut t = Table::new(vec!["name", "n"]);
        t.row(vec!["a-long-name".into(), "1".into()]);
        t.row(vec!["b".into(), "22".into()]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines.len(), 4);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        Table::new(vec!["a", "b"]).row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = Table::new(vec!["k", "v"]);
        t.row(vec!["x,y".into(), "he said \"hi\"".into()]);
        let csv = t.to_csv();
        assert_eq!(csv, "k,v\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn accessors() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1".into()]);
        assert_eq!(t.num_rows(), 1);
        assert_eq!(t.headers(), ["a"]);
        assert_eq!(t.rows()[0], ["1"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt2(1.234), "1.23");
        assert_eq!(fmt_pct(0.825), "82.5%");
        assert_eq!(fmt_bytes(512), "512B");
        assert_eq!(fmt_bytes(1536), "1.5KiB");
        assert_eq!(fmt_bytes(3 * 1024 * 1024), "3.0MiB");
        assert_eq!(fmt_bytes(5 * 1024 * 1024 * 1024), "5.0GiB");
    }
}
