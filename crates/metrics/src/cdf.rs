//! Empirical cumulative distribution functions.
//!
//! Figures 1c and 1d of the paper are lifespan CDFs; [`Cdf`] is the exact
//! (sample-based) counterpart used when full traces are retained, and can
//! also be extracted from a [`LogHistogram`](crate::LogHistogram) at bucket
//! resolution.

use std::fmt;

use crate::histogram::LogHistogram;

/// An empirical CDF over `u64` samples.
///
/// # Examples
///
/// ```
/// use scalesim_metrics::Cdf;
///
/// let cdf = Cdf::from_samples(vec![10, 20, 30, 40]);
/// assert_eq!(cdf.fraction_at_most(20), 0.5);
/// assert_eq!(cdf.quantile(0.75), Some(30));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Cdf {
    sorted: Vec<u64>,
}

impl Cdf {
    /// Builds a CDF from raw samples (takes ownership, sorts once).
    #[must_use]
    pub fn from_samples(mut samples: Vec<u64>) -> Self {
        samples.sort_unstable();
        Cdf { sorted: samples }
    }

    /// Builds a bucket-resolution CDF from a log histogram: one point per
    /// non-empty bucket, placed at the bucket's lower bound.
    #[must_use]
    pub fn from_histogram(hist: &LogHistogram) -> Self {
        let mut sorted = Vec::new();
        for (lo, n) in hist.iter() {
            sorted.extend(std::iter::repeat_n(lo, n as usize));
        }
        Cdf { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF has no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0.0 when empty.
    #[must_use]
    pub fn fraction_at_most(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// `P(X < x)`; 0.0 when empty.
    #[must_use]
    pub fn fraction_below(&self, x: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v < x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The smallest sample `v` with `P(X <= v) >= q`, or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be in [0,1], got {q}"
        );
        if self.sorted.is_empty() {
            return None;
        }
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Samples the CDF at each threshold, returning `(threshold, fraction
    /// at most threshold)` pairs — the series a plotted figure needs.
    #[must_use]
    pub fn series(&self, thresholds: &[u64]) -> Vec<(u64, f64)> {
        thresholds
            .iter()
            .map(|&t| (t, self.fraction_at_most(t)))
            .collect()
    }

    /// Largest absolute vertical distance to another CDF evaluated at both
    /// sample sets (the Kolmogorov–Smirnov statistic). Useful to quantify
    /// "the eclipse CDF barely moves, the xalan CDF moves a lot".
    #[must_use]
    pub fn ks_distance(&self, other: &Cdf) -> f64 {
        let mut max = 0.0f64;
        for &x in self.sorted.iter().chain(other.sorted.iter()) {
            let d = (self.fraction_at_most(x) - other.fraction_at_most(x)).abs();
            max = max.max(d);
        }
        max
    }
}

impl FromIterator<u64> for Cdf {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        Cdf::from_samples(iter.into_iter().collect())
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cdf(n={}", self.len())?;
        if let (Some(p50), Some(p90)) = (self.quantile(0.5), self.quantile(0.9)) {
            write!(f, ", p50={p50}, p90={p90}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_quantiles() {
        let cdf = Cdf::from_samples(vec![30, 10, 20, 40]);
        assert_eq!(cdf.fraction_at_most(9), 0.0);
        assert_eq!(cdf.fraction_at_most(10), 0.25);
        assert_eq!(cdf.fraction_below(10), 0.0);
        assert_eq!(cdf.fraction_at_most(40), 1.0);
        assert_eq!(cdf.quantile(0.0), Some(10));
        assert_eq!(cdf.quantile(0.5), Some(20));
        assert_eq!(cdf.quantile(1.0), Some(40));
    }

    #[test]
    fn empty_cdf_is_safe() {
        let cdf = Cdf::default();
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_most(5), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
    }

    #[test]
    fn from_histogram_round_trips_bucket_bounds() {
        let mut h = LogHistogram::new();
        h.record_n(1, 3); // bucket lower bound 0
        h.record_n(700, 2); // bucket [512,1024) -> lower bound 512
        let cdf = Cdf::from_histogram(&h);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf.fraction_at_most(0), 0.6);
        assert_eq!(cdf.fraction_at_most(512), 1.0);
    }

    #[test]
    fn series_samples_thresholds() {
        let cdf: Cdf = [1u64, 2, 3, 4].into_iter().collect();
        assert_eq!(cdf.series(&[2, 4]), vec![(2, 0.5), (4, 1.0)]);
    }

    #[test]
    fn ks_distance_zero_for_identical_and_positive_for_shifted() {
        let a: Cdf = (0..100u64).collect();
        let b: Cdf = (0..100u64).collect();
        assert_eq!(a.ks_distance(&b), 0.0);
        let shifted: Cdf = (50..150u64).collect();
        assert!(a.ks_distance(&shifted) >= 0.49);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_rejects_bad_q() {
        let cdf: Cdf = [1u64].into_iter().collect();
        let _ = cdf.quantile(-0.1);
    }

    #[test]
    fn display_mentions_medians() {
        let cdf: Cdf = (1..=100u64).collect();
        let s = cdf.to_string();
        assert!(s.contains("p50=50"), "{s}");
    }
}
