//! # scalesim-metrics
//!
//! Statistics toolkit shared by every `scalesim` crate: log-bucketed
//! [`LogHistogram`]s for lifespan distributions, exact [`Cdf`]s (Figures
//! 1c/1d of the paper are lifespan CDFs), scalar [`Summary`] statistics
//! with workload-imbalance measures, labelled [`Series`] for figure lines,
//! and a [`Table`] renderer (terminal + CSV) for the experiment drivers.
//!
//! No serialization dependency is needed: tables render themselves as CSV.
//!
//! ```
//! use scalesim_metrics::{Cdf, LogHistogram};
//!
//! let mut lifespans = LogHistogram::new();
//! for l in [100u64, 200, 5_000, 80_000] {
//!     lifespans.record(l);
//! }
//! // "what fraction of objects die within 1 KiB of allocation?"
//! assert_eq!(lifespans.fraction_below(1024), 0.5);
//! let cdf = Cdf::from_histogram(&lifespans);
//! assert_eq!(cdf.len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cdf;
mod histogram;
mod series;
mod summary;
mod table;

pub use cdf::Cdf;
pub use histogram::LogHistogram;
pub use series::Series;
pub use summary::Summary;
pub use table::{fmt2, fmt_bytes, fmt_pct, Table};
