//! Thread identity, states, and per-state time accounting.
//!
//! The paper's causal story for lifespan inflation is *suspension*: a
//! thread that is runnable-but-waiting (or blocked on a monitor) is not
//! using the objects it already allocated, while every other thread keeps
//! advancing the allocation clock. The scheduler therefore accounts, per
//! thread, exactly how long it spent in each state.

use std::fmt;

use scalesim_simkit::{SimDuration, SimTime};

/// A simulated thread (mutator or helper), numbered densely from 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(usize);

impl ThreadId {
    /// Creates a thread id from a raw index.
    #[must_use]
    pub const fn new(index: usize) -> Self {
        ThreadId(index)
    }

    /// The raw index (dense; usable to index parallel `Vec`s).
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread{}", self.0)
    }
}

impl From<usize> for ThreadId {
    fn from(index: usize) -> Self {
        ThreadId(index)
    }
}

/// Why a thread is blocked (not runnable, not on a core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BlockReason {
    /// Waiting to acquire a contended monitor.
    Monitor,
    /// Waiting for more work to appear in an application queue.
    WorkStarvation,
    /// Voluntary sleep / timed wait.
    Sleep,
}

/// The scheduling state of a thread at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Registered but never started.
    New,
    /// On the ready queue, waiting for a core — the paper's "suspended
    /// while runnable".
    Runnable,
    /// Executing on a core.
    Running,
    /// Off the ready queue for the given reason.
    Blocked(BlockReason),
    /// Finished; never scheduled again.
    Terminated,
}

impl ThreadState {
    /// Whether the thread still exists for scheduling purposes.
    #[must_use]
    pub fn is_live(self) -> bool {
        !matches!(self, ThreadState::Terminated)
    }
}

impl fmt::Display for ThreadState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadState::New => write!(f, "new"),
            ThreadState::Runnable => write!(f, "runnable"),
            ThreadState::Running => write!(f, "running"),
            ThreadState::Blocked(r) => write!(f, "blocked({r:?})"),
            ThreadState::Terminated => write!(f, "terminated"),
        }
    }
}

/// Cumulative time a thread has spent in each state, plus the
/// stop-the-world GC pause time it absorbed.
///
/// `running + runnable_wait + blocked_* + gc_paused` equals the thread's
/// lifetime from first dispatch to termination (the integration tests
/// assert this conservation property).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StateTimes {
    /// Time actually executing on a core (mutator time, by the paper's
    /// definition, for mutator threads).
    pub running: SimDuration,
    /// Time runnable but waiting for a core.
    pub runnable_wait: SimDuration,
    /// Time blocked on contended monitors.
    pub blocked_monitor: SimDuration,
    /// Time blocked waiting for work.
    pub blocked_starved: SimDuration,
    /// Time in voluntary sleeps.
    pub blocked_sleep: SimDuration,
    /// Stop-the-world GC pause time absorbed while live.
    pub gc_paused: SimDuration,
}

impl StateTimes {
    /// Total accounted lifetime.
    #[must_use]
    pub fn total(&self) -> SimDuration {
        self.running
            + self.runnable_wait
            + self.blocked_monitor
            + self.blocked_starved
            + self.blocked_sleep
            + self.gc_paused
    }

    /// Total time *suspended* in the paper's sense: alive but not
    /// executing (waiting for a core, blocked, or frozen by GC).
    #[must_use]
    pub fn suspended(&self) -> SimDuration {
        self.total() - self.running
    }

    pub(crate) fn charge(&mut self, state: ThreadState, elapsed: SimDuration) {
        match state {
            ThreadState::Running => self.running += elapsed,
            ThreadState::Runnable => self.runnable_wait += elapsed,
            ThreadState::Blocked(BlockReason::Monitor) => self.blocked_monitor += elapsed,
            ThreadState::Blocked(BlockReason::WorkStarvation) => self.blocked_starved += elapsed,
            ThreadState::Blocked(BlockReason::Sleep) => self.blocked_sleep += elapsed,
            ThreadState::New | ThreadState::Terminated => {}
        }
    }
}

/// Internal bookkeeping for one thread.
#[derive(Debug, Clone)]
pub(crate) struct ThreadRec {
    pub state: ThreadState,
    /// When the current state was entered.
    pub since: SimTime,
    pub times: StateTimes,
    pub dispatches: u64,
    pub preemptions: u64,
    /// Cohort index for biased scheduling.
    pub cohort: usize,
}

impl ThreadRec {
    pub fn new(now: SimTime, cohort: usize) -> Self {
        ThreadRec {
            state: ThreadState::New,
            since: now,
            times: StateTimes::default(),
            dispatches: 0,
            preemptions: 0,
            cohort,
        }
    }

    /// Transitions to `next`, charging the elapsed interval to the old
    /// state's accumulator.
    ///
    /// Returns the outgoing state and the instant it was entered, so the
    /// caller can record the closed interval on a timeline.
    pub fn transition(&mut self, next: ThreadState, now: SimTime) -> (ThreadState, SimTime) {
        let elapsed = now.saturating_since(self.since);
        self.times.charge(self.state, elapsed);
        let prev = (self.state, self.since);
        self.state = next;
        self.since = now;
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn thread_id_round_trip() {
        let id = ThreadId::new(9);
        assert_eq!(id.index(), 9);
        assert_eq!(id.to_string(), "thread9");
        assert_eq!(ThreadId::from(9), id);
    }

    #[test]
    fn state_liveness() {
        assert!(ThreadState::Running.is_live());
        assert!(ThreadState::Blocked(BlockReason::Monitor).is_live());
        assert!(!ThreadState::Terminated.is_live());
    }

    #[test]
    fn transition_charges_previous_state() {
        let mut rec = ThreadRec::new(t(0), 0);
        rec.transition(ThreadState::Runnable, t(0));
        rec.transition(ThreadState::Running, t(10));
        rec.transition(ThreadState::Blocked(BlockReason::Monitor), t(25));
        rec.transition(ThreadState::Running, t(30));
        rec.transition(ThreadState::Terminated, t(50));

        assert_eq!(rec.times.runnable_wait, SimDuration::from_nanos(10));
        assert_eq!(rec.times.running, SimDuration::from_nanos(15 + 20));
        assert_eq!(rec.times.blocked_monitor, SimDuration::from_nanos(5));
        assert_eq!(rec.times.total(), SimDuration::from_nanos(50));
        assert_eq!(rec.times.suspended(), SimDuration::from_nanos(15));
    }

    #[test]
    fn new_and_terminated_charge_nowhere() {
        let mut rec = ThreadRec::new(t(0), 0);
        rec.transition(ThreadState::Runnable, t(100)); // 100ns in New: dropped
        assert_eq!(rec.times.total(), SimDuration::ZERO);
    }

    #[test]
    fn state_display() {
        assert_eq!(ThreadState::Running.to_string(), "running");
        assert_eq!(
            ThreadState::Blocked(BlockReason::Sleep).to_string(),
            "blocked(Sleep)"
        );
    }
}
