//! # scalesim-sched
//!
//! Simulated OS CPU scheduler for the `scalesim` workspace.
//!
//! The paper's §III-B argues that thread *suspension* — time spent
//! runnable-but-waiting for a core, or blocked on a monitor — is what
//! stretches object lifespans: a suspended thread is not consuming the
//! objects it allocated while every other thread keeps advancing the
//! allocation clock. This crate makes suspension a first-class, measured
//! quantity: [`CpuScheduler`] tracks each thread's state machine and
//! charges every nanosecond to [`StateTimes`].
//!
//! The scheduler is policy-parametric ([`SchedPolicy`]): `Fair` round-robin
//! reproduces the paper's measurements; `Biased` cohort scheduling
//! implements the paper's first future-work proposal and is evaluated by
//! the `abl-sched` ablation experiment.
//!
//! ```
//! use scalesim_machine::MachineTopology;
//! use scalesim_sched::{BlockReason, CpuScheduler, SchedPolicy};
//! use scalesim_simkit::{SimDuration, SimTime};
//!
//! let cores = MachineTopology::amd_6168().enabled(4);
//! let mut sched = CpuScheduler::new(cores, SimDuration::from_millis(10), SchedPolicy::Fair);
//! let tid = sched.register(SimTime::ZERO);
//! sched.start(tid, SimTime::ZERO);
//! sched.dispatch(SimTime::ZERO);
//! sched.block(tid, SimTime::from_nanos(500), BlockReason::Monitor);
//! assert_eq!(sched.times(tid).running, SimDuration::from_nanos(500));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod scheduler;
mod thread;

pub use scheduler::{CpuScheduler, Dispatch, QuantumOutcome, SchedPolicy};
pub use thread::{BlockReason, StateTimes, ThreadId, ThreadState};
