//! The simulated OS CPU scheduler.
//!
//! A round-robin, time-sliced scheduler over the enabled cores of a
//! [`MachineTopology`](scalesim_machine::MachineTopology). It is driven by
//! the runtime's event loop: the runtime tells it about thread lifecycle
//! transitions and quantum expiries, and asks it to [`dispatch`] threads to
//! idle cores; the scheduler answers with decisions and keeps per-thread
//! [`StateTimes`] accounting.
//!
//! Two policies are provided:
//!
//! * [`SchedPolicy::Fair`] — plain round-robin over one ready queue, the
//!   Linux-like default used for the paper's main experiments.
//! * [`SchedPolicy::Biased`] — the paper's *future work* suggestion 1:
//!   cohort (phase-staggered) scheduling that restricts which worker
//!   threads may run concurrently to reduce lifetime interference.
//!
//! [`dispatch`]: CpuScheduler::dispatch

use std::collections::VecDeque;
use std::fmt;

use scalesim_machine::CoreId;
use scalesim_simkit::{SimDuration, SimTime};
use scalesim_trace::{EventKind, Timeline};

use crate::thread::{BlockReason, StateTimes, ThreadId, ThreadRec, ThreadState};

/// Which thread the scheduler placed on which core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch {
    /// The thread that was moved from the ready queue to a core.
    pub thread: ThreadId,
    /// The core it now occupies.
    pub core: CoreId,
}

/// Result of a quantum-expiry check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantumOutcome {
    /// No eligible waiter: the thread keeps its core for another quantum.
    Continued,
    /// The thread was preempted and re-enqueued; its core is free.
    Preempted,
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Round-robin over a single ready queue (the default, models CFS
    /// closely enough for this study).
    Fair,
    /// Lifetime-interference-aware cohort scheduling (paper §IV,
    /// suggestion 1): threads are partitioned into `cohorts` groups and
    /// only the active cohort is dispatched; the runtime rotates cohorts
    /// periodically so groups run in staggered phases.
    Biased {
        /// Number of cohorts; must be at least 1.
        cohorts: usize,
    },
}

impl SchedPolicy {
    fn cohorts(self) -> usize {
        match self {
            SchedPolicy::Fair => 1,
            SchedPolicy::Biased { cohorts } => cohorts,
        }
    }
}

/// The CPU scheduler: enabled cores, one ready queue, per-thread records.
///
/// # Examples
///
/// ```
/// use scalesim_machine::MachineTopology;
/// use scalesim_sched::{CpuScheduler, SchedPolicy};
/// use scalesim_simkit::{SimDuration, SimTime};
///
/// let cores = MachineTopology::amd_6168().enabled(2);
/// let mut sched = CpuScheduler::new(cores, SimDuration::from_millis(10), SchedPolicy::Fair);
/// let t0 = sched.register(SimTime::ZERO);
/// sched.start(t0, SimTime::ZERO);
/// let placed = sched.dispatch(SimTime::ZERO);
/// assert_eq!(placed.len(), 1);
/// assert_eq!(placed[0].thread, t0);
/// ```
#[derive(Debug)]
pub struct CpuScheduler {
    cores: Vec<CoreId>,
    occupants: Vec<Option<ThreadId>>,
    ready: VecDeque<ThreadId>,
    threads: Vec<ThreadRec>,
    quantum: SimDuration,
    policy: SchedPolicy,
    active_cohort: usize,
    cohort_rotations: u64,
    /// Timeline recorder for per-thread state spans (disabled by default).
    timeline: Timeline,
}

impl CpuScheduler {
    /// Creates a scheduler over the given enabled cores.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is empty, `quantum` is zero, or a biased policy
    /// requests zero cohorts.
    #[must_use]
    pub fn new(cores: Vec<CoreId>, quantum: SimDuration, policy: SchedPolicy) -> Self {
        assert!(!cores.is_empty(), "scheduler needs at least one core");
        assert!(!quantum.is_zero(), "quantum must be positive");
        assert!(
            policy.cohorts() >= 1,
            "biased policy needs at least one cohort"
        );
        let n = cores.len();
        CpuScheduler {
            cores,
            occupants: vec![None; n],
            ready: VecDeque::new(),
            threads: Vec::new(),
            quantum,
            policy,
            active_cohort: 0,
            cohort_rotations: 0,
            timeline: Timeline::disabled(),
        }
    }

    /// Installs a timeline recorder; every subsequent state transition
    /// closes the outgoing state's interval as a span on it.
    pub fn set_timeline(&mut self, timeline: Timeline) {
        self.timeline = timeline;
    }

    /// Removes the recorder (leaving a disabled one) and returns it.
    pub fn take_timeline(&mut self) -> Timeline {
        std::mem::take(&mut self.timeline)
    }

    /// The timeline span kind for time spent in `state`, if it is traced.
    fn state_kind(state: ThreadState) -> Option<EventKind> {
        match state {
            ThreadState::Running => Some(EventKind::ThreadRunning),
            ThreadState::Runnable => Some(EventKind::ThreadRunnable),
            ThreadState::Blocked(BlockReason::Monitor) => Some(EventKind::ThreadBlockedMonitor),
            ThreadState::Blocked(BlockReason::WorkStarvation) => {
                Some(EventKind::ThreadBlockedStarved)
            }
            ThreadState::Blocked(BlockReason::Sleep) => Some(EventKind::ThreadBlockedSleep),
            ThreadState::New | ThreadState::Terminated => None,
        }
    }

    /// Records the closed interval `[from, to)` spent by `tid` in `state`.
    fn emit_state(
        timeline: &mut Timeline,
        tid: ThreadId,
        state: ThreadState,
        from: SimTime,
        to: SimTime,
    ) {
        if let Some(kind) = Self::state_kind(state) {
            timeline.span(kind, tid.index() as u32, from, to, 0);
        }
    }

    /// Registers a new thread (state `New`) and returns its id.
    pub fn register(&mut self, now: SimTime) -> ThreadId {
        let id = ThreadId::new(self.threads.len());
        let cohort = id.index() % self.policy.cohorts();
        self.threads.push(ThreadRec::new(now, cohort));
        id
    }

    /// Moves a `New` thread onto the ready queue.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not in state `New`.
    pub fn start(&mut self, tid: ThreadId, now: SimTime) {
        let rec = self.rec_mut(tid);
        assert_eq!(rec.state, ThreadState::New, "start() on non-new {tid}");
        rec.transition(ThreadState::Runnable, now);
        self.ready.push_back(tid);
    }

    /// Closes and records the interval that `transition` just charged.
    fn traced_transition(&mut self, tid: ThreadId, next: ThreadState, now: SimTime) {
        let (prev, entered) = self.rec_mut(tid).transition(next, now);
        Self::emit_state(&mut self.timeline, tid, prev, entered, now);
    }

    /// Fills idle cores from the ready queue (respecting the active cohort
    /// under the biased policy) and returns the placements made.
    ///
    /// Call after any transition that may have freed a core or added a
    /// ready thread.
    pub fn dispatch(&mut self, now: SimTime) -> Vec<Dispatch> {
        let mut placed = Vec::new();
        for slot in 0..self.occupants.len() {
            if self.occupants[slot].is_some() {
                continue;
            }
            let Some(tid) = self.take_eligible() else {
                break;
            };
            let core = self.cores[slot];
            self.occupants[slot] = Some(tid);
            self.traced_transition(tid, ThreadState::Running, now);
            self.rec_mut(tid).dispatches += 1;
            placed.push(Dispatch { thread: tid, core });
        }
        placed
    }

    /// Removes the first ready thread eligible under the current policy.
    fn take_eligible(&mut self) -> Option<ThreadId> {
        match self.policy {
            SchedPolicy::Fair => self.ready.pop_front(),
            SchedPolicy::Biased { .. } => {
                let pos = self
                    .ready
                    .iter()
                    .position(|&t| self.threads[t.index()].cohort == self.active_cohort)?;
                self.ready.remove(pos)
            }
        }
    }

    /// Blocks a `Running` thread for `reason`, freeing its core.
    ///
    /// Returns the freed core.
    ///
    /// # Panics
    ///
    /// Panics if the thread is not currently running.
    pub fn block(&mut self, tid: ThreadId, now: SimTime, reason: BlockReason) -> CoreId {
        let core = self
            .core_of(tid)
            .unwrap_or_else(|| panic!("block() on non-running {tid}"));
        self.vacate(tid);
        self.traced_transition(tid, ThreadState::Blocked(reason), now);
        core
    }

    /// Makes a `Blocked` thread runnable again (tail of the ready queue).
    ///
    /// # Panics
    ///
    /// Panics if the thread is not blocked.
    pub fn unblock(&mut self, tid: ThreadId, now: SimTime) {
        let rec = self.rec_mut(tid);
        assert!(
            matches!(rec.state, ThreadState::Blocked(_)),
            "unblock() on non-blocked {tid} (state {})",
            rec.state
        );
        self.traced_transition(tid, ThreadState::Runnable, now);
        self.ready.push_back(tid);
    }

    /// Handles a quantum expiry for a running thread: if another eligible
    /// thread is waiting (or the thread's cohort is no longer active), the
    /// thread is preempted to the tail of the ready queue; otherwise it
    /// keeps the core.
    ///
    /// Returns what happened. If the thread is no longer running (it
    /// blocked or terminated before its timer fired) this is a no-op
    /// reported as `Continued` — the runtime's stale-timer case.
    pub fn quantum_expired(&mut self, tid: ThreadId, now: SimTime) -> QuantumOutcome {
        if self.core_of(tid).is_none() {
            return QuantumOutcome::Continued;
        }
        let cohort_evicted = matches!(self.policy, SchedPolicy::Biased { .. })
            && self.threads[tid.index()].cohort != self.active_cohort;
        let waiter_exists = match self.policy {
            SchedPolicy::Fair => !self.ready.is_empty(),
            SchedPolicy::Biased { .. } => self
                .ready
                .iter()
                .any(|&t| self.threads[t.index()].cohort == self.active_cohort),
        };
        if !waiter_exists && !cohort_evicted {
            return QuantumOutcome::Continued;
        }
        self.vacate(tid);
        self.traced_transition(tid, ThreadState::Runnable, now);
        self.rec_mut(tid).preemptions += 1;
        self.ready.push_back(tid);
        QuantumOutcome::Preempted
    }

    /// Terminates a thread; frees its core if it was running.
    ///
    /// Returns the freed core, if any.
    ///
    /// # Panics
    ///
    /// Panics if the thread was already terminated.
    pub fn terminate(&mut self, tid: ThreadId, now: SimTime) -> Option<CoreId> {
        assert!(
            self.threads[tid.index()].state.is_live(),
            "terminate() on already-terminated {tid}"
        );
        let core = self.core_of(tid);
        if core.is_some() {
            self.vacate(tid);
        } else if let Some(pos) = self.ready.iter().position(|&t| t == tid) {
            self.ready.remove(pos);
        }
        self.traced_transition(tid, ThreadState::Terminated, now);
        core
    }

    /// Accounts a stop-the-world pause beginning at `now`: every live
    /// thread absorbs `pause` as GC time without it leaking into its
    /// current state's accumulator.
    ///
    /// The runtime shifts the event clock by the same amount, so `since`
    /// timestamps are moved forward to match. On the timeline this closes
    /// the in-progress state span at `now` and records a safepoint span
    /// covering the pause itself; the accounting arithmetic is untouched
    /// by tracing.
    pub fn apply_stw_pause(&mut self, pause: SimDuration, now: SimTime) {
        let CpuScheduler {
            threads, timeline, ..
        } = self;
        for (i, rec) in threads.iter_mut().enumerate() {
            if !rec.state.is_live() {
                continue;
            }
            rec.times.gc_paused += pause;
            Self::emit_state(timeline, ThreadId::new(i), rec.state, rec.since, now);
            timeline.span(
                EventKind::ThreadSafepoint,
                i as u32,
                now,
                now.saturating_add(pause),
                0,
            );
            rec.since = rec.since.saturating_add(pause);
        }
    }

    /// Advances to the next cohort (biased policy). Running threads from
    /// the outgoing cohort are *not* forcibly evicted here; they yield at
    /// their next quantum expiry, which models a cooperative phase change.
    ///
    /// A no-op under [`SchedPolicy::Fair`].
    pub fn rotate_cohort(&mut self) {
        if let SchedPolicy::Biased { cohorts } = self.policy {
            self.active_cohort = (self.active_cohort + 1) % cohorts;
            self.cohort_rotations += 1;
        }
    }

    fn vacate(&mut self, tid: ThreadId) {
        for slot in self.occupants.iter_mut() {
            if *slot == Some(tid) {
                *slot = None;
                return;
            }
        }
        panic!("{tid} occupies no core");
    }

    fn rec_mut(&mut self, tid: ThreadId) -> &mut ThreadRec {
        &mut self.threads[tid.index()]
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// The scheduling quantum.
    #[must_use]
    pub fn quantum(&self) -> SimDuration {
        self.quantum
    }

    /// The configured policy.
    #[must_use]
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Number of enabled cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Current state of a thread.
    #[must_use]
    pub fn state(&self, tid: ThreadId) -> ThreadState {
        self.threads[tid.index()].state
    }

    /// The core a thread is running on, if any.
    #[must_use]
    pub fn core_of(&self, tid: ThreadId) -> Option<CoreId> {
        self.occupants
            .iter()
            .position(|&o| o == Some(tid))
            .map(|slot| self.cores[slot])
    }

    /// Per-state time accounting for a thread.
    #[must_use]
    pub fn times(&self, tid: ThreadId) -> &StateTimes {
        &self.threads[tid.index()].times
    }

    /// How often a thread was placed on a core.
    #[must_use]
    pub fn dispatches(&self, tid: ThreadId) -> u64 {
        self.threads[tid.index()].dispatches
    }

    /// How often a thread was preempted at quantum expiry.
    #[must_use]
    pub fn preemptions(&self, tid: ThreadId) -> u64 {
        self.threads[tid.index()].preemptions
    }

    /// Number of threads waiting on the ready queue.
    #[must_use]
    pub fn runnable_count(&self) -> usize {
        self.ready.len()
    }

    /// Number of threads currently on cores.
    #[must_use]
    pub fn running_count(&self) -> usize {
        self.occupants.iter().filter(|o| o.is_some()).count()
    }

    /// Number of registered, not-yet-terminated threads.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.threads.iter().filter(|r| r.state.is_live()).count()
    }

    /// Total registered threads (including terminated).
    #[must_use]
    pub fn registered_count(&self) -> usize {
        self.threads.len()
    }

    /// Whether demand currently exceeds core supply.
    #[must_use]
    pub fn is_contended(&self) -> bool {
        !self.ready.is_empty()
    }

    /// How many cohort rotations have occurred (biased policy).
    #[must_use]
    pub fn cohort_rotations(&self) -> u64 {
        self.cohort_rotations
    }

    /// Ids of the threads currently running, in core order.
    pub fn running_threads(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.occupants.iter().filter_map(|&o| o)
    }

    /// Full cross-structure consistency check, for the runtime's invariant
    /// monitors: at most one thread per core, occupancy agrees with
    /// per-thread state, the ready queue holds exactly the `Runnable`
    /// threads, and no thread appears twice.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency found.
    pub fn sanity_check(&self) -> Result<(), String> {
        let mut seen = vec![0u32; self.threads.len()];
        for (slot, &occ) in self.occupants.iter().enumerate() {
            if let Some(tid) = occ {
                seen[tid.index()] += 1;
                if seen[tid.index()] > 1 {
                    return Err(format!("{tid} occupies more than one core"));
                }
                if self.state(tid) != ThreadState::Running {
                    return Err(format!(
                        "{tid} occupies core slot {slot} but is {}",
                        self.state(tid)
                    ));
                }
            }
        }
        let mut queued = vec![false; self.threads.len()];
        for &tid in &self.ready {
            if queued[tid.index()] {
                return Err(format!("{tid} is on the ready queue twice"));
            }
            queued[tid.index()] = true;
            if self.state(tid) != ThreadState::Runnable {
                return Err(format!(
                    "{tid} is on the ready queue but is {}",
                    self.state(tid)
                ));
            }
        }
        for (i, rec) in self.threads.iter().enumerate() {
            let tid = ThreadId::new(i);
            match rec.state {
                ThreadState::Running if seen[i] == 0 => {
                    return Err(format!("{tid} is Running but occupies no core"));
                }
                ThreadState::Runnable if !queued[i] => {
                    return Err(format!("{tid} is Runnable but not on the ready queue"));
                }
                _ => {}
            }
        }
        if self.running_count() > self.num_cores() {
            return Err(format!(
                "{} threads running on {} cores",
                self.running_count(),
                self.num_cores()
            ));
        }
        Ok(())
    }
}

impl fmt::Display for CpuScheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CpuScheduler(cores={}, running={}, ready={}, live={})",
            self.num_cores(),
            self.running_count(),
            self.runnable_count(),
            self.live_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn cores(n: usize) -> Vec<CoreId> {
        (0..n).map(CoreId::new).collect()
    }
    fn quantum() -> SimDuration {
        SimDuration::from_millis(10)
    }

    fn sched(n: usize) -> CpuScheduler {
        CpuScheduler::new(cores(n), quantum(), SchedPolicy::Fair)
    }

    fn spawn_started(s: &mut CpuScheduler, k: usize) -> Vec<ThreadId> {
        (0..k)
            .map(|_| {
                let id = s.register(t(0));
                s.start(id, t(0));
                id
            })
            .collect()
    }

    #[test]
    fn dispatch_fills_cores_fifo() {
        let mut s = sched(2);
        let ids = spawn_started(&mut s, 3);
        let placed = s.dispatch(t(0));
        assert_eq!(placed.len(), 2);
        assert_eq!(placed[0].thread, ids[0]);
        assert_eq!(placed[1].thread, ids[1]);
        assert_eq!(s.state(ids[2]), ThreadState::Runnable);
        assert_eq!(s.running_count(), 2);
        assert_eq!(s.runnable_count(), 1);
        assert!(s.is_contended());
    }

    #[test]
    fn sanity_check_accepts_consistent_states() {
        let mut s = sched(2);
        let ids = spawn_started(&mut s, 4);
        assert_eq!(s.sanity_check(), Ok(()));
        s.dispatch(t(0));
        assert_eq!(s.sanity_check(), Ok(()));
        s.block(ids[0], t(1), BlockReason::Monitor);
        s.dispatch(t(1));
        assert_eq!(s.sanity_check(), Ok(()));
        s.terminate(ids[1], t(2));
        s.unblock(ids[0], t(2));
        s.dispatch(t(2));
        assert_eq!(s.sanity_check(), Ok(()));
    }

    #[test]
    fn sanity_check_flags_a_lost_runnable_thread() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 2);
        s.dispatch(t(0));
        // Corrupt the cross-structure invariant the way a lost wakeup
        // does: a thread claims Runnable but sits on no queue.
        s.ready.clear();
        let err = s.sanity_check().unwrap_err();
        assert!(err.contains(&format!("{}", ids[1])), "{err}");
        assert!(err.contains("not on the ready queue"), "{err}");
    }

    #[test]
    fn each_core_has_at_most_one_thread() {
        let mut s = sched(3);
        spawn_started(&mut s, 5);
        let placed = s.dispatch(t(0));
        let mut seen: Vec<CoreId> = placed.iter().map(|d| d.core).collect();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), placed.len(), "a core was double-booked");
    }

    #[test]
    fn block_frees_core_and_unblock_requeues() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 2);
        s.dispatch(t(0));
        let core = s.block(ids[0], t(5), BlockReason::Monitor);
        assert_eq!(core, CoreId::new(0));
        assert_eq!(s.state(ids[0]), ThreadState::Blocked(BlockReason::Monitor));
        // the waiter takes over
        let placed = s.dispatch(t(5));
        assert_eq!(placed[0].thread, ids[1]);
        s.unblock(ids[0], t(8));
        assert_eq!(s.state(ids[0]), ThreadState::Runnable);
    }

    #[test]
    fn quantum_expiry_preempts_only_when_contended() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 1);
        s.dispatch(t(0));
        assert_eq!(s.quantum_expired(ids[0], t(10)), QuantumOutcome::Continued);

        let id2 = s.register(t(10));
        s.start(id2, t(10));
        assert_eq!(s.quantum_expired(ids[0], t(20)), QuantumOutcome::Preempted);
        assert_eq!(s.preemptions(ids[0]), 1);
        let placed = s.dispatch(t(20));
        assert_eq!(placed[0].thread, id2);
    }

    #[test]
    fn stale_quantum_timer_is_harmless() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 1);
        s.dispatch(t(0));
        s.block(ids[0], t(5), BlockReason::Sleep);
        assert_eq!(s.quantum_expired(ids[0], t(10)), QuantumOutcome::Continued);
    }

    #[test]
    fn terminate_running_frees_core_and_ready_thread_is_dequeued() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 2);
        s.dispatch(t(0));
        assert_eq!(s.terminate(ids[0], t(5)), Some(CoreId::new(0)));
        assert_eq!(s.live_count(), 1);
        assert_eq!(s.terminate(ids[1], t(6)), None);
        assert_eq!(s.runnable_count(), 0);
        assert_eq!(s.live_count(), 0);
    }

    #[test]
    #[should_panic(expected = "already-terminated")]
    fn double_terminate_panics() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 1);
        s.terminate(ids[0], t(1));
        s.terminate(ids[0], t(2));
    }

    #[test]
    fn accounting_conserves_time() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 2);
        s.dispatch(t(0));
        s.quantum_expired(ids[0], t(10)); // preempt
        s.dispatch(t(10));
        s.block(ids[1], t(15), BlockReason::Monitor);
        s.dispatch(t(15));
        s.unblock(ids[1], t(18));
        s.terminate(ids[0], t(30));
        s.terminate(ids[1], t(30));

        let t0 = s.times(ids[0]);
        assert_eq!(t0.running, SimDuration::from_nanos(10 + 15));
        assert_eq!(t0.runnable_wait, SimDuration::from_nanos(5));
        assert_eq!(t0.total(), SimDuration::from_nanos(30));

        let t1 = s.times(ids[1]);
        assert_eq!(t1.running, SimDuration::from_nanos(5));
        assert_eq!(t1.blocked_monitor, SimDuration::from_nanos(3));
        assert_eq!(t1.runnable_wait, SimDuration::from_nanos(10 + 12));
        assert_eq!(t1.total(), SimDuration::from_nanos(30));
    }

    #[test]
    fn stw_pause_is_accounted_separately() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 1);
        s.dispatch(t(0));
        // STW at t=10 for 100ns; the runtime shifts its clock so the thread
        // later terminates at t=210 having run 10ns before and 100ns after.
        s.apply_stw_pause(SimDuration::from_nanos(100), t(10));
        s.terminate(ids[0], t(210));
        let times = s.times(ids[0]);
        assert_eq!(times.gc_paused, SimDuration::from_nanos(100));
        assert_eq!(times.running, SimDuration::from_nanos(110));
    }

    #[test]
    fn timeline_records_state_spans_and_safepoints() {
        let mut s = sched(1);
        s.set_timeline(Timeline::with_capacity(64));
        let ids = spawn_started(&mut s, 2);
        s.dispatch(t(0));
        s.quantum_expired(ids[0], t(10)); // closes running[0,10), runnable span opens
        s.dispatch(t(10));
        s.apply_stw_pause(SimDuration::from_nanos(5), t(20));
        s.block(ids[1], t(30), BlockReason::Monitor);
        s.terminate(ids[0], t(40));

        let tl = s.take_timeline();
        let events: Vec<_> = tl.events().copied().collect();
        assert!(!events.is_empty());
        let running: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::ThreadRunning)
            .collect();
        assert_eq!(running[0].track, 0);
        assert_eq!(running[0].at, t(0));
        assert_eq!(running[0].end(), t(10));
        let safepoints = events
            .iter()
            .filter(|e| e.kind == EventKind::ThreadSafepoint)
            .count();
        assert_eq!(safepoints, 2, "one safepoint span per live thread");
        // The recorder left behind is disabled: no further spans recorded.
        s.unblock(ids[1], t(41));
        s.terminate(ids[1], t(50));
        assert_eq!(s.take_timeline().len(), 0);
    }

    #[test]
    fn disabled_timeline_records_nothing() {
        let mut s = sched(1);
        let ids = spawn_started(&mut s, 1);
        s.dispatch(t(0));
        s.terminate(ids[0], t(10));
        assert_eq!(s.take_timeline().len(), 0);
    }

    #[test]
    fn biased_policy_gates_dispatch_to_active_cohort() {
        let mut s = CpuScheduler::new(cores(4), quantum(), SchedPolicy::Biased { cohorts: 2 });
        let ids = spawn_started(&mut s, 4);
        // cohort 0 = threads 0, 2; cohort 1 = threads 1, 3
        let placed = s.dispatch(t(0));
        let threads: Vec<_> = placed.iter().map(|d| d.thread).collect();
        assert_eq!(threads, vec![ids[0], ids[2]]);
        assert_eq!(s.running_count(), 2, "inactive cohort leaves cores idle");

        s.rotate_cohort();
        // running cohort-0 threads yield at quantum expiry
        assert_eq!(s.quantum_expired(ids[0], t(10)), QuantumOutcome::Preempted);
        let placed = s.dispatch(t(10));
        assert_eq!(placed[0].thread, ids[1]);
    }

    #[test]
    fn fair_policy_ignores_rotation() {
        let mut s = sched(1);
        s.rotate_cohort();
        assert_eq!(s.cohort_rotations(), 0);
    }

    #[test]
    fn running_threads_iterates_core_order() {
        let mut s = sched(2);
        let ids = spawn_started(&mut s, 2);
        s.dispatch(t(0));
        let running: Vec<_> = s.running_threads().collect();
        assert_eq!(running, ids);
    }

    #[test]
    #[should_panic(expected = "needs at least one core")]
    fn zero_cores_panics() {
        let _ = CpuScheduler::new(vec![], quantum(), SchedPolicy::Fair);
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_panics() {
        let _ = CpuScheduler::new(cores(1), SimDuration::ZERO, SchedPolicy::Fair);
    }

    #[test]
    fn display_summarizes() {
        let s = sched(2);
        assert!(s.to_string().contains("cores=2"));
    }
}
