//! One Criterion bench per paper artifact: each measurement regenerates
//! the table/figure end to end (workload generation, full simulation
//! sweep, statistics extraction).
//!
//! Artifact ↔ bench mapping (see DESIGN.md §4):
//!
//! * `workdist`   — §III per-thread workload distribution
//! * `scaletable` — §II-C scalability classification
//! * `fig1_locks` — Figures 1a + 1b (acquisitions, contentions)
//! * `fig1c`      — Figure 1c (eclipse lifespan CDF)
//! * `fig1d`      — Figure 1d (xalan lifespan CDF)
//! * `fig2`       — Figure 2 (mutator vs. GC decomposition)
//! * `abl_sched`  — §IV future work 1 (biased scheduling)
//! * `abl_heap`   — §IV future work 2 (compartmentalized heaplets)

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use scalesim_bench::bench_params;
use scalesim_experiments::{
    run_biased_sched, run_fig1_locks, run_fig1c, run_fig1d, run_fig2, run_heaplets,
    run_scalability, run_workdist,
};

fn paper_artifacts(c: &mut Criterion) {
    let params = bench_params();
    let mut group = c.benchmark_group("paper");
    group.sample_size(10);

    group.bench_function("workdist", |b| {
        b.iter(|| black_box(run_workdist(&params)));
    });
    group.bench_function("scaletable", |b| {
        b.iter(|| black_box(run_scalability(&params)));
    });
    group.bench_function("fig1_locks", |b| {
        b.iter(|| black_box(run_fig1_locks(&params)));
    });
    group.bench_function("fig1c", |b| {
        b.iter(|| black_box(run_fig1c(&params)));
    });
    group.bench_function("fig1d", |b| {
        b.iter(|| black_box(run_fig1d(&params)));
    });
    group.bench_function("fig2", |b| {
        b.iter(|| black_box(run_fig2(&params)));
    });
    group.bench_function("abl_sched", |b| {
        b.iter(|| black_box(run_biased_sched("xalan", &params)));
    });
    group.bench_function("abl_heap", |b| {
        b.iter(|| black_box(run_heaplets("xalan", &params)));
    });
    group.finish();
}

criterion_group!(benches, paper_artifacts);
criterion_main!(benches);
