//! One bench per paper artifact: each measurement regenerates the
//! table/figure end to end (workload generation, full simulation sweep,
//! statistics extraction).
//!
//! Artifact ↔ bench mapping (see DESIGN.md §4):
//!
//! * `workdist`   — §III per-thread workload distribution
//! * `scaletable` — §II-C scalability classification
//! * `fig1_locks` — Figures 1a + 1b (acquisitions, contentions)
//! * `fig1c`      — Figure 1c (eclipse lifespan CDF)
//! * `fig1d`      — Figure 1d (xalan lifespan CDF)
//! * `fig2`       — Figure 2 (mutator vs. GC decomposition)
//! * `abl_sched`  — §IV future work 1 (biased scheduling)
//! * `abl_heap`   — §IV future work 2 (compartmentalized heaplets)
//!
//! The run memo cache is cleared before every iteration so each
//! measurement is a true cold regeneration, not a cache hit.

use std::hint::black_box;

use scalesim_bench::{bench_params, timing};
use scalesim_experiments::{
    clear_run_cache, run_biased_sched, run_fig1_locks, run_fig1c, run_fig1d, run_fig2,
    run_heaplets, run_scalability, run_workdist,
};

fn main() {
    let params = bench_params();
    const WARMUP: u32 = 1;
    const ITERS: u32 = 5;

    println!("paper artifacts (cold cache per iteration)");
    timing::bench("paper/workdist", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_workdist(&params))
    });
    timing::bench("paper/scaletable", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_scalability(&params))
    });
    timing::bench("paper/fig1_locks", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_fig1_locks(&params))
    });
    timing::bench("paper/fig1c", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_fig1c(&params))
    });
    timing::bench("paper/fig1d", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_fig1d(&params))
    });
    timing::bench("paper/fig2", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_fig2(&params))
    });
    timing::bench("paper/abl_sched", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_biased_sched("xalan", &params))
    });
    timing::bench("paper/abl_heap", WARMUP, ITERS, || {
        clear_run_cache();
        black_box(run_heaplets("xalan", &params))
    });
}
