//! Raw simulator benchmarks: event throughput of single runs under the
//! configurations that stress different subsystems.
//!
//! These are performance benches for `scalesim` itself (not paper
//! artifacts): they catch regressions in the event loop, the scheduler,
//! the monitor table and the collector. Each line also reports simulated
//! events per second of host wall time.

use std::hint::black_box;

use scalesim_bench::timing;
use scalesim_core::{Jvm, JvmConfig};
use scalesim_workloads::{h2, xalan, SyntheticApp};

const WARMUP: u32 = 1;
const ITERS: u32 = 5;

fn events_of(app: &SyntheticApp, cfg: &JvmConfig) -> u64 {
    Jvm::new(cfg.clone())
        .run(app)
        .expect("bench run")
        .events_processed
}

fn bench_run(name: &str, app: &SyntheticApp, cfg: &JvmConfig) {
    let events = events_of(app, cfg);
    let sample = timing::bench(name, WARMUP, ITERS, || {
        black_box(Jvm::new(cfg.clone()).run(app).expect("bench run"))
    });
    let per_sec = events as f64 / (sample.median_ns as f64 / 1e9);
    println!(
        "    {events} events -> {:.2} M events/s (median)",
        per_sec / 1e6
    );
}

fn main() {
    println!("single-run throughput");

    // Scalable, queue + GC heavy.
    let app = xalan().scaled(0.02);
    for threads in [1usize, 16, 48] {
        let cfg = JvmConfig::builder()
            .threads(threads)
            .build()
            .expect("config");
        bench_run(&format!("runtime/xalan/{threads}"), &app, &cfg);
    }

    // Lock-convoy heavy (coarse latch, long waits).
    let db = h2().scaled(0.02);
    let cfg = JvmConfig::builder().threads(32).build().expect("config");
    bench_run("runtime/h2/32", &db, &cfg);

    // Heaplet mode (per-thread collections).
    let cfg = JvmConfig::builder()
        .threads(16)
        .heaplets(true)
        .build()
        .expect("config");
    bench_run("runtime/xalan-heaplets/16", &app, &cfg);
}
