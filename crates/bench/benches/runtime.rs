//! Raw simulator benchmarks: event throughput of single runs under the
//! configurations that stress different subsystems.
//!
//! These are performance benches for `scalesim` itself (not paper
//! artifacts): they catch regressions in the event loop, the scheduler,
//! the monitor table and the collector.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use scalesim_core::{Jvm, JvmConfig};
use scalesim_workloads::{h2, xalan, SyntheticApp};

fn events_of(app: &SyntheticApp, threads: usize) -> u64 {
    let cfg = JvmConfig::builder().threads(threads).build();
    Jvm::new(cfg).run(app).events_processed
}

fn single_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);

    // Scalable, queue + GC heavy.
    let app = xalan().scaled(0.02);
    for threads in [1usize, 16, 48] {
        let events = events_of(&app, threads);
        group.throughput(Throughput::Elements(events));
        group.bench_with_input(
            BenchmarkId::new("xalan", threads),
            &threads,
            |b, &threads| {
                let cfg = JvmConfig::builder().threads(threads).build();
                b.iter(|| black_box(Jvm::new(cfg.clone()).run(&app)));
            },
        );
    }

    // Lock-convoy heavy (coarse latch, long waits).
    let db = h2().scaled(0.02);
    let events = events_of(&db, 32);
    group.throughput(Throughput::Elements(events));
    group.bench_function("h2/32", |b| {
        let cfg = JvmConfig::builder().threads(32).build();
        b.iter(|| black_box(Jvm::new(cfg.clone()).run(&db)));
    });

    // Heaplet mode (per-thread collections).
    let events = {
        let cfg = JvmConfig::builder().threads(16).heaplets(true).build();
        Jvm::new(cfg).run(&app).events_processed
    };
    group.throughput(Throughput::Elements(events));
    group.bench_function("xalan-heaplets/16", |b| {
        let cfg = JvmConfig::builder().threads(16).heaplets(true).build();
        b.iter(|| black_box(Jvm::new(cfg.clone()).run(&app)));
    });

    group.finish();
}

criterion_group!(benches, single_runs);
criterion_main!(benches);
