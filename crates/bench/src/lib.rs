//! # scalesim-bench
//!
//! Criterion benchmarks regenerating every table and figure of the
//! ISPASS'15 evaluation, plus raw simulator-throughput benches.
//!
//! Run with:
//!
//! ```sh
//! cargo bench -p scalesim-bench            # everything
//! cargo bench -p scalesim-bench fig1       # one figure family
//! ```
//!
//! Each figure bench executes the corresponding
//! [`scalesim_experiments`] driver at a reduced-but-representative scale
//! (Criterion repeats each run many times; the paper-sized single run is
//! the `scalesim-experiments` CLI's job).

#![warn(missing_docs)]

use scalesim_experiments::ExpParams;

/// The scale and sweep used by the figure benches: large enough that GC,
/// contention and lifespan effects all materialize, small enough for
/// Criterion's repetitions.
#[must_use]
pub fn bench_params() -> ExpParams {
    ExpParams::paper()
        .with_scale(0.05)
        .with_threads(vec![4, 16, 48])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_params_are_modest() {
        let p = bench_params();
        assert!(p.scale <= 0.1);
        assert_eq!(p.max_threads(), 48);
    }
}
