//! # scalesim-bench
//!
//! Benchmarks regenerating every table and figure of the ISPASS'15
//! evaluation, plus raw simulator-throughput benches.
//!
//! Criterion cannot be built in this repository's offline environment, so
//! the benches run on the in-crate [`timing`] harness: fixed warmup,
//! fixed iteration count, min/median/mean wall time per iteration. Run
//! with:
//!
//! ```sh
//! cargo bench -p scalesim-bench            # everything
//! scripts/bench.sh                         # the headline sweep → BENCH_sweep.json
//! ```
//!
//! Each figure bench executes the corresponding
//! [`scalesim_experiments`] driver at a reduced-but-representative scale
//! (the paper-sized single run is the `scalesim-experiments` CLI's job).

#![warn(missing_docs)]

use scalesim_experiments::ExpParams;

/// The scale and sweep used by the figure benches: large enough that GC,
/// contention and lifespan effects all materialize, small enough for
/// repeated timing.
#[must_use]
pub fn bench_params() -> ExpParams {
    ExpParams::paper()
        .with_scale(0.05)
        .with_threads(vec![4, 16, 48])
}

/// A minimal fixed-iteration timing harness (Criterion replacement).
pub mod timing {
    use std::time::Instant;

    /// Wall-time statistics for one benchmark, in nanoseconds per
    /// iteration.
    #[derive(Debug, Clone)]
    pub struct Sample {
        /// Benchmark label.
        pub name: String,
        /// Timed iterations (after warmup).
        pub iters: u32,
        /// Fastest iteration.
        pub min_ns: u128,
        /// Median iteration.
        pub median_ns: u128,
        /// Mean iteration.
        pub mean_ns: u128,
    }

    impl Sample {
        /// Renders one aligned report line.
        #[must_use]
        pub fn line(&self) -> String {
            format!(
                "{:<28} min {:>12}  median {:>12}  mean {:>12}  ({} iters)",
                self.name,
                fmt_ns(self.min_ns),
                fmt_ns(self.median_ns),
                fmt_ns(self.mean_ns),
                self.iters
            )
        }
    }

    fn fmt_ns(ns: u128) -> String {
        if ns >= 1_000_000_000 {
            format!("{:.3} s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            format!("{:.3} ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            format!("{:.3} µs", ns as f64 / 1e3)
        } else {
            format!("{ns} ns")
        }
    }

    /// Runs `f` for `warmup` untimed and `iters` timed iterations and
    /// prints + returns the per-iteration statistics.
    pub fn bench<T>(name: &str, warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> Sample {
        assert!(iters > 0, "need at least one timed iteration");
        for _ in 0..warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<u128> = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let start = Instant::now();
            std::hint::black_box(f());
            times.push(start.elapsed().as_nanos());
        }
        times.sort_unstable();
        let sample = Sample {
            name: name.to_string(),
            iters,
            min_ns: times[0],
            median_ns: times[times.len() / 2],
            mean_ns: times.iter().sum::<u128>() / u128::from(iters),
        };
        println!("{}", sample.line());
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_params_are_modest() {
        let p = bench_params();
        assert!(p.scale <= 0.1);
        assert_eq!(p.max_threads(), 48);
    }

    #[test]
    fn timing_harness_reports_ordered_stats() {
        let mut n = 0u64;
        let s = timing::bench("busy", 1, 5, || {
            n += 1;
            std::hint::black_box((0..1000u64).sum::<u64>())
        });
        assert_eq!(n, 6); // warmup + timed
        assert!(s.min_ns <= s.median_ns);
        assert!(!s.line().is_empty());
    }
}
