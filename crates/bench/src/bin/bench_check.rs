//! Validates a written `BENCH_sweep.json` against the budgets its fields
//! are documented with. CI runs this over the committed report so a
//! regeneration that blows a budget (or records a nonsensical negative
//! overhead) fails loudly instead of being committed unnoticed.
//!
//! Budgets:
//!
//! * every `*_overhead_pct` field must be non-negative (the measurement
//!   clamps sub-noise negatives to zero — a negative value means the
//!   report predates the interleaved-pair fix);
//! * `checkpoint_overhead_pct` <= 3%;
//! * `monitor_overhead_pct` < 10%;
//! * `lock_alg_overhead_pct` <= 3% (the `Box<dyn LockAlgorithm>`
//!   dispatch path over the statically-dispatched default FIFO monitor
//!   on a byte-identical run — pluggable locks must not tax the
//!   default);
//! * `trace_off_overhead_pct` <= 2% (trace-off is the production path);
//! * `audit_overhead_pct` <= 3%;
//! * `campaign_overhead_pct` <= 3% (lease files, segment appends, and
//!   the deterministic merge over running the sweep in-process);
//! * `server_overhead_pct` <= 3% (the robust overload-control machinery
//!   — admission counting, deadline bookkeeping, armed backoff — over
//!   the naive per-request path on an identical healthy load);
//! * `analytics_overhead_pct` <= 3% (the offline USL-fit + attribution
//!   pass over producing the sweep it analyzes).
//!
//! `campaign_overhead_median_pct` is recorded but not budgeted: it is
//! the *signed* median per-pair delta kept alongside the clamped
//! min-ratio bound so a real-but-sub-noise campaign cost cannot hide
//! behind a `0.00` reading. It must be present and may be negative.
//!
//! Usage: `bench_check [BENCH_sweep.json]`. Exits 0 when every budget
//! holds, 1 with one line per violation otherwise, 2 when the file is
//! missing or malformed.

use std::process::ExitCode;

/// Extracts a numeric field from the flat one-field-per-line JSON that
/// `bench_sweep` writes.
fn field(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest.find([',', '}', '\n'])?;
    rest[..end].trim().parse().ok()
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let json = match std::fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    // (field, max allowed %). Non-negativity is checked for all of them.
    let budgets = [
        ("checkpoint_overhead_pct", 3.0),
        ("monitor_overhead_pct", 10.0),
        ("lock_alg_overhead_pct", 3.0),
        ("trace_overhead_pct", f64::INFINITY),
        ("trace_off_overhead_pct", 2.0),
        ("audit_overhead_pct", 3.0),
        ("campaign_overhead_pct", 3.0),
        ("server_overhead_pct", 3.0),
        ("analytics_overhead_pct", 3.0),
    ];
    let mut violations = 0;
    for (key, budget) in budgets {
        let Some(v) = field(&json, key) else {
            eprintln!("error: {path}: missing field {key}");
            return ExitCode::from(2);
        };
        if v < 0.0 {
            eprintln!("budget violation: {key} = {v:.2}% is negative");
            violations += 1;
        } else if v > budget {
            eprintln!("budget violation: {key} = {v:.2}% exceeds its {budget:.0}% budget");
            violations += 1;
        } else {
            println!("ok: {key} = {v:.2}%");
        }
    }
    // The signed median is a second opinion, not a budget: it must be
    // recorded (so the min-ratio clamp cannot silently hide a real
    // cost), but a negative value is legitimate host drift.
    match field(&json, "campaign_overhead_median_pct") {
        Some(v) => println!("ok: campaign_overhead_median_pct = {v:+.2}% (recorded, unbudgeted)"),
        None => {
            eprintln!("error: {path}: missing field campaign_overhead_median_pct");
            return ExitCode::from(2);
        }
    }
    if violations > 0 {
        eprintln!("{path}: {violations} budget violation(s)");
        ExitCode::FAILURE
    } else {
        println!("{path}: all overhead budgets hold");
        ExitCode::SUCCESS
    }
}
