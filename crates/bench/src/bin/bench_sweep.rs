//! The headline benchmark: times the full figure sweep at the pinned
//! paper seed and writes `BENCH_sweep.json`.
//!
//! The measurements, all on one process:
//!
//! 1. **Queue microbench** — the slab [`EventQueue`] vs. the retained
//!    [`BaselineQueue`] (the pre-overhaul `BinaryHeap` + `HashSet`
//!    implementation) on an identical schedule/cancel/pop/`shift_all`
//!    churn, reported as events per second each.
//! 2. **Memoized sweep** — every figure driver back to back on a cold
//!    cache, the production configuration. `sweep_wall_ms` and
//!    `events_per_sec` (unique simulated events / wall) come from here.
//! 3. **Unmemoized sweep** — the same drivers with `SCALESIM_NO_MEMO=1`,
//!    i.e. what the harness did before runs were shared across figures.
//! 4. **Checkpointed sweep** — the memoized sweep again with the durable
//!    checkpoint store active, i.e. every unique run appended to a
//!    crc-framed JSONL segment as it completes. The relative slowdown
//!    (`checkpoint_overhead_pct`) is budgeted at <= 3%.
//! 5. **Invariant-monitor overhead** — one xalan run timed with the
//!    always-on monitors enabled and disabled, reported as events per
//!    second each plus the relative slowdown (budgeted at < 10%).
//! 6. **Timeline-trace overhead** — the same xalan run timed with the
//!    timeline recorder off and on. Trace-off is the production default,
//!    so its throughput must stay within ~2% of a back-to-back baseline
//!    timing of the identical configuration: that delta bounds what the
//!    disabled recorder hooks cost on the hot path (plus host noise).
//!
//! Usage: `bench_sweep [OUTPUT.json]` (default `BENCH_sweep.json`).

use std::hint::black_box;
use std::time::Instant;

use scalesim_bench::{bench_params, timing};
use scalesim_core::{Jvm, JvmConfig, TraceConfig};
use scalesim_experiments::{
    cached_event_total, checkpoint, clear_run_cache, run_biased_sched, run_cache_size,
    run_fig1_locks, run_fig1c, run_fig1d, run_fig2, run_heaplets, run_scalability, run_workdist,
    ExpParams,
};
use scalesim_simkit::baseline::BaselineQueue;
use scalesim_simkit::{EventQueue, SimDuration};
use scalesim_workloads::xalan;

/// Events delivered by the queue churn below (identical for both
/// implementations).
const CHURN_EVENTS: u64 = 2_000_000;

/// One schedule/cancel/pop/shift churn step, generic over the queue via
/// closures so both implementations run byte-identical op sequences.
macro_rules! churn {
    ($queue:expr) => {{
        let q = &mut $queue;
        // Keep ~1k events pending; cancel every 8th; STW-shift every 64
        // pops — the mix the simulator's GC safepoints produce.
        let mut ids = Vec::with_capacity(1024);
        let mut x = 0x9e37_79b9_7f4a_7c15u64; // splitmix-ish op stream
        let mut delivered = 0u64;
        for i in 0..1024u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ids.push(q.schedule_at(q.now() + SimDuration::from_nanos(x % 10_000), i));
        }
        while delivered < CHURN_EVENTS {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x % 8 == 0 && q.len() > 512 {
                if let Some(id) = ids.pop() {
                    black_box(q.cancel(id));
                }
            }
            let (_, payload) = q.pop().expect("queue kept topped up");
            delivered += 1;
            if delivered % 64 == 0 {
                q.shift_all(SimDuration::from_nanos(x % 500));
            }
            ids.push(q.schedule_at(q.now() + SimDuration::from_nanos(x % 10_000), payload));
        }
        black_box(q.now());
    }};
}

fn queue_events_per_sec_slab() -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let start = Instant::now();
    churn!(q);
    CHURN_EVENTS as f64 / start.elapsed().as_secs_f64()
}

fn queue_events_per_sec_baseline() -> f64 {
    let mut q: BaselineQueue<u64> = BaselineQueue::new();
    let start = Instant::now();
    churn!(q);
    CHURN_EVENTS as f64 / start.elapsed().as_secs_f64()
}

/// Every figure driver, back to back — "the full figure sweep".
fn figure_sweep(params: &ExpParams) {
    black_box(run_workdist(params).expect("workdist"));
    black_box(run_scalability(params).expect("scaletable"));
    black_box(run_fig1_locks(params).expect("fig1ab"));
    black_box(run_fig1c(params).expect("fig1c"));
    black_box(run_fig1d(params).expect("fig1d"));
    black_box(run_fig2(params).expect("fig2"));
    black_box(run_biased_sched("xalan", params).expect("abl-sched"));
    black_box(run_heaplets("xalan", params).expect("abl-heap"));
}

fn sweep_wall_ms(params: &ExpParams) -> f64 {
    clear_run_cache();
    let start = Instant::now();
    figure_sweep(params);
    start.elapsed().as_secs_f64() * 1e3
}

/// Events per second of one xalan run with the invariant monitors
/// toggled. Same config either way, so the event count is identical and
/// the ratio is pure checking overhead.
fn monitor_events_per_sec(monitors: bool) -> f64 {
    let app = xalan().scaled(0.05);
    let cfg = JvmConfig::builder()
        .threads(16)
        .seed(42)
        .monitors(monitors)
        .build()
        .expect("bench config");
    let events = Jvm::new(cfg.clone())
        .run(&app)
        .expect("bench run")
        .events_processed;
    let label = if monitors {
        "monitors/on"
    } else {
        "monitors/off"
    };
    let sample = timing::bench(label, 1, 5, || {
        black_box(Jvm::new(cfg.clone()).run(&app).expect("bench run"))
    });
    events as f64 / (sample.median_ns as f64 / 1e9)
}

/// Events per second of one xalan run with the timeline recorder
/// toggled, using the noise-robust `min` over several iterations (the
/// simulation is deterministic, so the fastest observation is the one
/// least disturbed by the host). Trace-off is the production default
/// path; the `baseline` caller times the identical configuration back
/// to back with it, so their delta bounds measurement noise plus any
/// accidental work on the disabled recorder path.
fn trace_events_per_sec(label: &str, trace: TraceConfig) -> f64 {
    let app = xalan().scaled(0.05);
    let cfg = JvmConfig::builder()
        .threads(16)
        .seed(42)
        .trace(trace)
        .build()
        .expect("bench config");
    let events = Jvm::new(cfg.clone())
        .run(&app)
        .expect("bench run")
        .events_processed;
    let sample = timing::bench(label, 1, 7, || {
        black_box(Jvm::new(cfg.clone()).run(&app).expect("bench run"))
    });
    events as f64 / (sample.min_ns as f64 / 1e9)
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let params = bench_params();
    assert_eq!(params.seed, 42, "benchmark seed must stay pinned");

    eprintln!("queue churn: {CHURN_EVENTS} events each on slab and baseline queues");
    let slab = queue_events_per_sec_slab();
    let base = queue_events_per_sec_baseline();
    eprintln!("  slab     {:.2} M events/s", slab / 1e6);
    eprintln!(
        "  baseline {:.2} M events/s  (speedup {:.2}x)",
        base / 1e6,
        slab / base
    );

    eprintln!("figure sweep (memoized, cold cache)...");
    std::env::remove_var("SCALESIM_NO_MEMO");
    let memo_ms = sweep_wall_ms(&params);
    let runs = run_cache_size();
    let events = cached_event_total();
    let events_per_sec = events as f64 / (memo_ms / 1e3);
    eprintln!(
        "  {memo_ms:.0} ms, {runs} unique runs, {events} events, {:.2} M events/s",
        events_per_sec / 1e6
    );

    eprintln!("figure sweep (memoized, cold cache, checkpoint store on)...");
    let ckpt_dir = std::env::temp_dir().join(format!("scalesim-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    checkpoint::set_store(&ckpt_dir).expect("checkpoint store");
    let ckpt_ms = sweep_wall_ms(&params);
    checkpoint::disable_store();
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let ckpt_overhead_pct = (ckpt_ms / memo_ms - 1.0) * 100.0;
    eprintln!("  {ckpt_ms:.0} ms  (checkpoint overhead {ckpt_overhead_pct:.1}%, budget <= 3%)");

    eprintln!("figure sweep (memoization disabled)...");
    std::env::set_var("SCALESIM_NO_MEMO", "1");
    let nomemo_ms = sweep_wall_ms(&params);
    std::env::remove_var("SCALESIM_NO_MEMO");
    eprintln!(
        "  {nomemo_ms:.0} ms  (memo speedup {:.2}x)",
        nomemo_ms / memo_ms
    );

    eprintln!("invariant-monitor overhead (xalan, 16 threads)...");
    let mon_on = monitor_events_per_sec(true);
    let mon_off = monitor_events_per_sec(false);
    let mon_overhead_pct = (mon_off / mon_on - 1.0) * 100.0;
    eprintln!(
        "  on {:.2} M events/s, off {:.2} M events/s, overhead {:.1}%",
        mon_on / 1e6,
        mon_off / 1e6,
        mon_overhead_pct
    );

    eprintln!("timeline-trace overhead (xalan, 16 threads)...");
    let trace_baseline = trace_events_per_sec("trace/baseline", TraceConfig::off());
    let trace_off = trace_events_per_sec("trace/off", TraceConfig::off());
    let trace_on = trace_events_per_sec("trace/on", TraceConfig::on());
    let trace_overhead_pct = (trace_off / trace_on - 1.0) * 100.0;
    let trace_off_overhead_pct = (trace_baseline / trace_off - 1.0) * 100.0;
    eprintln!(
        "  off {:.2} M events/s, on {:.2} M events/s, recording cost {:.1}%, \
         trace-off cost vs back-to-back baseline {:.1}% (budget ~2%)",
        trace_off / 1e6,
        trace_on / 1e6,
        trace_overhead_pct,
        trace_off_overhead_pct
    );

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"events_per_sec\": {eps:.0},\n  \"sweep_wall_ms\": {memo:.1},\n  \"sweep_wall_ms_nomemo\": {nomemo:.1},\n  \"sweep_wall_ms_checkpoint\": {ckpt:.1},\n  \"checkpoint_overhead_pct\": {ckpt_pct:.2},\n  \"memo_speedup\": {mspeed:.2},\n  \"unique_runs\": {runs},\n  \"events_simulated\": {events},\n  \"queue_events_per_sec_slab\": {qslab:.0},\n  \"queue_events_per_sec_baseline\": {qbase:.0},\n  \"queue_speedup\": {qspeed:.2},\n  \"events_per_sec_monitors_on\": {mon_on:.0},\n  \"events_per_sec_monitors_off\": {mon_off:.0},\n  \"monitor_overhead_pct\": {mon_pct:.2},\n  \"events_per_sec_trace_off\": {troff:.0},\n  \"events_per_sec_trace_on\": {tron:.0},\n  \"trace_overhead_pct\": {tr_pct:.2},\n  \"trace_off_overhead_pct\": {troff_pct:.2}\n}}\n",
        seed = params.seed,
        eps = events_per_sec,
        memo = memo_ms,
        nomemo = nomemo_ms,
        ckpt = ckpt_ms,
        ckpt_pct = ckpt_overhead_pct,
        mspeed = nomemo_ms / memo_ms,
        runs = runs,
        events = events,
        qslab = slab,
        qbase = base,
        qspeed = slab / base,
        mon_on = mon_on,
        mon_off = mon_off,
        mon_pct = mon_overhead_pct,
        troff = trace_off,
        tron = trace_on,
        tr_pct = trace_overhead_pct,
        troff_pct = trace_off_overhead_pct,
    );
    scalesim_trace::write_atomic(std::path::Path::new(&out), &json)
        .expect("write benchmark report");
    println!("{json}");
    eprintln!("wrote {out}");
}
