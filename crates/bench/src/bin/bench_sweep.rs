//! The headline benchmark: times the full figure sweep at the pinned
//! paper seed and writes `BENCH_sweep.json`.
//!
//! The measurements, all on one process:
//!
//! 1. **Queue microbench** — the slab [`EventQueue`] vs. the retained
//!    [`BaselineQueue`] (the pre-overhaul `BinaryHeap` + `HashSet`
//!    implementation) on an identical schedule/cancel/pop/`shift_all`
//!    churn, reported as events per second each.
//! 2. **Memoized sweep** — every figure driver back to back on a cold
//!    cache, the production configuration. `sweep_wall_ms` and
//!    `events_per_sec` (unique simulated events / wall) come from here.
//! 3. **Unmemoized sweep** — the same drivers with `SCALESIM_NO_MEMO=1`,
//!    i.e. what the harness did before runs were shared across figures.
//! 4. **Checkpointed sweep** — the memoized sweep again with the durable
//!    checkpoint store active, i.e. every unique run appended to a
//!    crc-framed JSONL segment as it completes. The relative slowdown
//!    (`checkpoint_overhead_pct`) is budgeted at <= 3%.
//! 5. **Invariant-monitor overhead** — one xalan run timed with the
//!    always-on monitors enabled and disabled, reported as events per
//!    second each plus the relative slowdown (budgeted at < 10%).
//! 6. **Timeline-trace overhead** — the same xalan run timed with the
//!    timeline recorder off and on. Trace-off is the production default,
//!    so its throughput must stay within ~2% of a baseline timing of the
//!    identical configuration: that delta bounds what the disabled
//!    recorder hooks cost on the hot path (plus host noise).
//! 7. **Audit overhead** — the concurrency auditor over one traced
//!    xalan run's timeline, relative to producing the run itself
//!    (budgeted at <= 3%). The pass is two orders of magnitude cheaper
//!    than the run, so it is timed directly (best audit wall over best
//!    run wall) rather than as an A/B pair difference.
//! 8. **Campaign overhead** — a scalability sweep run as a
//!    single-process campaign (`campaign::run_local`: lease files,
//!    per-worker segment appends, and the deterministic merge) vs the
//!    same sweep in-process, budgeted at <= 3%. The sweep uses fewer,
//!    larger units than the broad bench grid so the fixed per-unit
//!    machinery cost is priced against realistically-sized runs. This
//!    prices the fault-tolerance machinery, not multi-process scaling.
//! 9. **Analytics overhead** — the offline scalability-analytics pass
//!    (USL fitting, time attribution, artifact serialization) over a
//!    just-completed scalability sweep, relative to producing the sweep
//!    itself (budgeted at <= 3%). The sweep leaves the memo cache warm,
//!    so the timed pass prices only the analytics, and like the audit it
//!    is timed directly (best pass wall over best sweep wall).
//! 10. **Server overload-control overhead** — one healthy (no-fault,
//!     under-capacity) open-loop server run under the robust policy
//!     (admission counting, deadline bookkeeping, backoff machinery
//!     armed) vs the identical offered load under the naive policy whose
//!     per-request path skips all of it. Budgeted at <= 3%: overload
//!     control must be effectively free while the server is healthy —
//!     its cost may only appear when it is actually saving the server.
//! 11. **Lock-algorithm dispatch overhead** — one xalan run under the
//!     default statically-dispatched FIFO monitor vs `fifo-dyn`, which
//!     routes the byte-identical FIFO algorithm through the
//!     `Box<dyn LockAlgorithm>` path every pluggable algorithm uses.
//!     The pair prices pure dispatch (vtable calls + the boxed lock's
//!     pointer chase) with zero behavioral difference, budgeted at
//!     <= 3%: making the lock pluggable must not tax the default.
//!
//! Every A/B overhead above is measured over **N interleaved
//! (base, variant) pairs** after warmup, as the ratio of the two sides'
//! minimum timings (see [`interleaved_overhead`]): timing each side
//! single-shot lets slow host drift land entirely on one side (which is
//! how earlier revisions reported a negative monitor overhead), and
//! both medians and per-pair ratios still wander by several percent
//! when the host's throughput bursts on second timescales. Sub-noise
//! negatives are clamped to zero so the recorded fields are comparable
//! against their budgets. The min-ratio clamp can also hide a real but
//! sub-noise cost as exactly `0.00` (the long-standing
//! `campaign_overhead_pct: 0.00` reading), so the campaign measurement
//! additionally records `campaign_overhead_median_pct` — the *signed*
//! median per-pair delta, never clamped — as the drift-sensitive but
//! bias-free second opinion; the budget is still enforced against the
//! min-ratio bound.
//!
//! Usage: `bench_sweep [OUTPUT.json]` (default `BENCH_sweep.json`).
//! `bench_check` validates a written report against the budgets.

use std::hint::black_box;
use std::time::Instant;

use scalesim_bench::bench_params;
use scalesim_core::{Jvm, JvmConfig, LockAlg, TraceConfig};
use scalesim_experiments::campaign::{self, CampaignSpec};
use scalesim_experiments::{
    cached_event_total, checkpoint, clear_run_cache, run_analytics, run_biased_sched,
    run_cache_size, run_fig1_locks, run_fig1c, run_fig1d, run_fig2, run_heaplets, run_scalability,
    run_workdist, take_run_manifests, take_sweep_failures, ExpParams,
};
use scalesim_simkit::baseline::BaselineQueue;
use scalesim_simkit::{EventQueue, SimDuration};
use scalesim_workloads::{xalan, ServerSpec};

/// Events delivered by the queue churn below (identical for both
/// implementations).
const CHURN_EVENTS: u64 = 2_000_000;

/// One schedule/cancel/pop/shift churn step, generic over the queue via
/// closures so both implementations run byte-identical op sequences.
macro_rules! churn {
    ($queue:expr) => {{
        let q = &mut $queue;
        // Keep ~1k events pending; cancel every 8th; STW-shift every 64
        // pops — the mix the simulator's GC safepoints produce.
        let mut ids = Vec::with_capacity(1024);
        let mut x = 0x9e37_79b9_7f4a_7c15u64; // splitmix-ish op stream
        let mut delivered = 0u64;
        for i in 0..1024u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ids.push(q.schedule_at(q.now() + SimDuration::from_nanos(x % 10_000), i));
        }
        while delivered < CHURN_EVENTS {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if x % 8 == 0 && q.len() > 512 {
                if let Some(id) = ids.pop() {
                    black_box(q.cancel(id));
                }
            }
            let (_, payload) = q.pop().expect("queue kept topped up");
            delivered += 1;
            if delivered % 64 == 0 {
                q.shift_all(SimDuration::from_nanos(x % 500));
            }
            ids.push(q.schedule_at(q.now() + SimDuration::from_nanos(x % 10_000), payload));
        }
        black_box(q.now());
    }};
}

fn queue_events_per_sec_slab() -> f64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let start = Instant::now();
    churn!(q);
    CHURN_EVENTS as f64 / start.elapsed().as_secs_f64()
}

fn queue_events_per_sec_baseline() -> f64 {
    let mut q: BaselineQueue<u64> = BaselineQueue::new();
    let start = Instant::now();
    churn!(q);
    CHURN_EVENTS as f64 / start.elapsed().as_secs_f64()
}

/// Every figure driver, back to back — "the full figure sweep".
fn figure_sweep(params: &ExpParams) {
    black_box(run_workdist(params).expect("workdist"));
    black_box(run_scalability(params).expect("scaletable"));
    black_box(run_fig1_locks(params).expect("fig1ab"));
    black_box(run_fig1c(params).expect("fig1c"));
    black_box(run_fig1d(params).expect("fig1d"));
    black_box(run_fig2(params).expect("fig2"));
    black_box(run_biased_sched("xalan", params).expect("abl-sched"));
    black_box(run_heaplets("xalan", params).expect("abl-heap"));
}

fn sweep_wall_ms(params: &ExpParams) -> f64 {
    clear_run_cache();
    let start = Instant::now();
    figure_sweep(params);
    start.elapsed().as_secs_f64() * 1e3
}

/// Result of one interleaved A/B overhead measurement.
struct Overhead {
    /// Best-sample events/sec of the base side.
    base_eps: f64,
    /// Best-sample events/sec of the variant side.
    variant_eps: f64,
    /// Slowdown of the variant's best sample over the base's, clamped
    /// at zero (a variant cannot be genuinely faster than its base here
    /// — a negative ratio is host noise).
    pct: f64,
    /// Signed median of the per-pair deltas, never clamped: noisier
    /// than `pct` but free of the min-ratio clamp's zero bias, so a
    /// real-but-small cost shows up here even when `pct` reads 0.00.
    median_pct: f64,
}

fn time_one(f: &mut impl FnMut()) -> u128 {
    let start = Instant::now();
    f();
    start.elapsed().as_nanos()
}

/// Measures the relative cost of `variant` over `base` as the ratio of
/// the two sides' *minimum* timings across `pairs` interleaved
/// (base, variant) rounds after `warmup` untimed rounds. Pair order
/// alternates so slow host drift cancels instead of landing on
/// whichever side ran last. Host noise is strictly additive — a
/// scheduling or I/O burst only ever inflates a sample — so each
/// side's minimum converges on its clean execution time, where medians
/// (of samples or of per-pair ratios) still wander by several percent
/// on a bursty host. Both sides' intrinsic work is deterministic, so
/// the min-to-min ratio is the intrinsic overhead.
fn interleaved_overhead(
    label: &str,
    events: u64,
    warmup: u32,
    pairs: u32,
    mut base: impl FnMut(),
    mut variant: impl FnMut(),
) -> Overhead {
    assert!(pairs > 0, "need at least one timed pair");
    for _ in 0..warmup {
        base();
        variant();
    }
    let mut base_ns: Vec<u128> = Vec::with_capacity(pairs as usize);
    let mut var_ns: Vec<u128> = Vec::with_capacity(pairs as usize);
    let mut deltas: Vec<f64> = Vec::with_capacity(pairs as usize);
    for i in 0..pairs {
        let (b, v) = if i % 2 == 0 {
            let b = time_one(&mut base);
            let v = time_one(&mut variant);
            (b, v)
        } else {
            let v = time_one(&mut variant);
            let b = time_one(&mut base);
            (b, v)
        };
        base_ns.push(b);
        var_ns.push(v);
        deltas.push(v as f64 / b as f64 - 1.0);
    }
    base_ns.sort_unstable();
    var_ns.sort_unstable();
    deltas.sort_by(f64::total_cmp);
    let base_min = base_ns[0] as f64;
    let var_min = var_ns[0] as f64;
    let raw = (var_min / base_min - 1.0) * 100.0;
    let pair_med = deltas[deltas.len() / 2] * 100.0;
    println!(
        "{label:<28} min-ratio overhead {raw:+.2}% \
         (median pair {pair_med:+.2}%) over {pairs} pairs"
    );
    Overhead {
        base_eps: events as f64 / (base_min / 1e9),
        variant_eps: events as f64 / (var_min / 1e9),
        pct: raw.max(0.0),
        median_pct: pair_med,
    }
}

/// The A/B run both overhead studies time: one xalan run at the pinned
/// seed, with the given monitor/trace toggles.
fn bench_cfg(monitors: bool, trace: TraceConfig) -> JvmConfig {
    JvmConfig::builder()
        .threads(16)
        .seed(42)
        .monitors(monitors)
        .trace(trace)
        .build()
        .expect("bench config")
}

fn run_events(cfg: &JvmConfig) -> u64 {
    Jvm::new(cfg.clone())
        .run(&xalan().scaled(0.05))
        .expect("bench run")
        .events_processed
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sweep.json".to_string());
    let params = bench_params();
    assert_eq!(params.seed, 42, "benchmark seed must stay pinned");

    eprintln!("queue churn: {CHURN_EVENTS} events each on slab and baseline queues");
    let slab = queue_events_per_sec_slab();
    let base = queue_events_per_sec_baseline();
    eprintln!("  slab     {:.2} M events/s", slab / 1e6);
    eprintln!(
        "  baseline {:.2} M events/s  (speedup {:.2}x)",
        base / 1e6,
        slab / base
    );

    eprintln!("figure sweep (memoized, cold cache)...");
    std::env::remove_var("SCALESIM_NO_MEMO");
    let memo_ms = sweep_wall_ms(&params);
    let runs = run_cache_size();
    let events = cached_event_total();
    let events_per_sec = events as f64 / (memo_ms / 1e3);
    eprintln!(
        "  {memo_ms:.0} ms, {runs} unique runs, {events} events, {:.2} M events/s",
        events_per_sec / 1e6
    );

    eprintln!("figure sweep (memoized, cold cache, checkpoint store on, interleaved pairs)...");
    let ckpt_dir = std::env::temp_dir().join(format!("scalesim-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    // The variant owns the store lifecycle (create, append, fsynced
    // rotation) so the timed cost is the whole price of durable
    // checkpointing; each pair starts from an empty numbered
    // subdirectory, and tearing old stores down is bench scaffolding
    // kept outside the timed region.
    // 9 pairs, not 5: the variant does file I/O the base side doesn't,
    // so virtio writeback bursts land asymmetrically and a 5-sample
    // median still wanders on a noisy host.
    let ckpt_round = std::cell::Cell::new(0u32);
    let ckpt = interleaved_overhead(
        "memo -> memo+checkpoint",
        events,
        1,
        9,
        || {
            black_box(sweep_wall_ms(&params));
        },
        || {
            let dir = ckpt_dir.join(ckpt_round.get().to_string());
            ckpt_round.set(ckpt_round.get() + 1);
            checkpoint::set_store(&dir).expect("checkpoint store");
            black_box(sweep_wall_ms(&params));
            checkpoint::disable_store();
        },
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let ckpt_ms = events as f64 / ckpt.variant_eps * 1e3;
    let ckpt_overhead_pct = ckpt.pct;
    eprintln!("  {ckpt_ms:.0} ms  (checkpoint overhead {ckpt_overhead_pct:.1}%, budget <= 3%)");

    eprintln!("figure sweep (memoization disabled)...");
    std::env::set_var("SCALESIM_NO_MEMO", "1");
    let nomemo_ms = sweep_wall_ms(&params);
    std::env::remove_var("SCALESIM_NO_MEMO");
    eprintln!(
        "  {nomemo_ms:.0} ms  (memo speedup {:.2}x)",
        nomemo_ms / memo_ms
    );

    eprintln!("campaign overhead (scalability sweep via run_local, interleaved pairs)...");
    std::env::remove_var("SCALESIM_NO_MEMO");
    // The campaign machinery costs a fixed handful of file operations
    // per unit, so its relative overhead depends on unit duration.
    // Production units run for seconds; measure against units at least
    // in the tens-of-milliseconds, not the ~7 ms toys the broad-grid
    // bench params produce, or the budget prices syscall latency on the
    // bench host instead of the machinery.
    let camp_params = ExpParams::paper()
        .with_scale(0.2)
        .with_threads(vec![16, 48]);
    clear_run_cache();
    let _ = take_run_manifests();
    let _ = take_sweep_failures();
    black_box(run_scalability(&camp_params).expect("scaletable"));
    let events_campaign = cached_event_total();
    let _ = take_run_manifests();
    let camp_dir =
        std::env::temp_dir().join(format!("scalesim-bench-campaign-{}", std::process::id()));
    let camp_spec = CampaignSpec {
        artifact: "scaletable".to_owned(),
        params: camp_params.clone(),
    };
    // Every pair pays the full fault-tolerance price — a fresh init,
    // one lease + done marker per unit, segment appends, and the merge
    // — by running into a numbered fresh subdirectory. Tearing the old
    // directories down is bench scaffolding, so it stays outside the
    // timed region.
    let camp_round = std::cell::Cell::new(0u32);
    let camp = interleaved_overhead(
        "sweep -> campaign",
        events_campaign,
        1,
        9,
        || {
            clear_run_cache();
            black_box(run_scalability(&camp_params).expect("scaletable"));
            let _ = take_run_manifests();
            let _ = take_sweep_failures();
        },
        || {
            let dir = camp_dir.join(camp_round.get().to_string());
            camp_round.set(camp_round.get() + 1);
            black_box(campaign::run_local(&dir, &camp_spec).expect("campaign"));
        },
    );
    let _ = std::fs::remove_dir_all(&camp_dir);
    let campaign_overhead_pct = camp.pct;
    let campaign_overhead_median_pct = camp.median_pct;
    eprintln!(
        "  campaign overhead {campaign_overhead_pct:.1}% \
         (signed median {campaign_overhead_median_pct:+.1}%, budget <= 3%)"
    );

    eprintln!("server overload-control overhead (healthy load, naive vs robust, interleaved)...");
    // Identical offered load, zero faults, comfortably under capacity:
    // the robust side arms admission counting, deadline bookkeeping, and
    // backoff machinery that never fires, so the pair prices the pure
    // cost of having overload control switched on.
    let mut srv_naive = ServerSpec::naive(100_000);
    srv_naive.horizon_ns = 300_000_000;
    srv_naive.measure_from_ns = 200_000_000;
    let mut srv_robust = ServerSpec::robust(100_000, 256);
    srv_robust.horizon_ns = srv_naive.horizon_ns;
    srv_robust.measure_from_ns = srv_naive.measure_from_ns;
    let server_cfg = |spec: ServerSpec| {
        let mut cfg = JvmConfig::builder();
        cfg.threads(16).seed(42).heap_bytes(16 << 20).server(spec);
        cfg.build().expect("server bench config")
    };
    let cfg_srv_naive = server_cfg(srv_naive);
    let cfg_srv_robust = server_cfg(srv_robust);
    let srv_app = xalan().scaled(0.05);
    let events_srv = Jvm::new(cfg_srv_naive.clone())
        .run(&srv_app)
        .expect("server bench run")
        .events_processed;
    let srv = interleaved_overhead(
        "server naive->robust",
        events_srv,
        2,
        15,
        || {
            black_box(
                Jvm::new(cfg_srv_naive.clone())
                    .run(&srv_app)
                    .expect("server bench run"),
            );
        },
        || {
            black_box(
                Jvm::new(cfg_srv_robust.clone())
                    .run(&srv_app)
                    .expect("server bench run"),
            );
        },
    );
    let server_overhead_pct = srv.pct;
    eprintln!(
        "  naive {:.2} M events/s, robust {:.2} M events/s, overhead {:.1}% (budget <= 3%)",
        srv.base_eps / 1e6,
        srv.variant_eps / 1e6,
        server_overhead_pct
    );

    eprintln!("invariant-monitor overhead (xalan, 16 threads, interleaved pairs)...");
    let app = xalan().scaled(0.05);
    let cfg_off = bench_cfg(false, TraceConfig::off());
    let cfg_on = bench_cfg(true, TraceConfig::off());
    let events_ab = run_events(&cfg_off);
    let mon = interleaved_overhead(
        "monitors off->on",
        events_ab,
        2,
        50,
        || {
            black_box(Jvm::new(cfg_off.clone()).run(&app).expect("bench run"));
        },
        || {
            black_box(Jvm::new(cfg_on.clone()).run(&app).expect("bench run"));
        },
    );
    eprintln!(
        "  off {:.2} M events/s, on {:.2} M events/s, overhead {:.1}% (budget < 10%)",
        mon.base_eps / 1e6,
        mon.variant_eps / 1e6,
        mon.pct
    );

    eprintln!("lock-algorithm dispatch overhead (fifo vs fifo-dyn, interleaved pairs)...");
    // Same algorithm on both sides — fifo-dyn is the FIFO lock behind
    // the Box<dyn LockAlgorithm> indirection the pluggable algorithms
    // use — so the pair isolates the dispatch cost of pluggability.
    let lock_cfg = |alg: LockAlg| {
        let mut cfg = JvmConfig::builder();
        cfg.threads(16).seed(42).lock_alg(alg);
        cfg.build().expect("lock bench config")
    };
    let cfg_lock_fifo = lock_cfg(LockAlg::Fifo);
    let cfg_lock_dyn = lock_cfg(LockAlg::FifoDyn);
    let lock = interleaved_overhead(
        "lock fifo->fifo-dyn",
        events_ab,
        2,
        50,
        || {
            black_box(
                Jvm::new(cfg_lock_fifo.clone())
                    .run(&app)
                    .expect("bench run"),
            );
        },
        || {
            black_box(Jvm::new(cfg_lock_dyn.clone()).run(&app).expect("bench run"));
        },
    );
    let lock_alg_overhead_pct = lock.pct;
    eprintln!(
        "  static {:.2} M events/s, dyn {:.2} M events/s, overhead {:.1}% (budget <= 3%)",
        lock.base_eps / 1e6,
        lock.variant_eps / 1e6,
        lock_alg_overhead_pct
    );

    eprintln!("timeline-trace overhead (xalan, 16 threads, interleaved pairs)...");
    let cfg_trace_off = bench_cfg(true, TraceConfig::off());
    let cfg_trace_on = bench_cfg(true, TraceConfig::on());
    let trace = interleaved_overhead(
        "trace off->on",
        events_ab,
        2,
        50,
        || {
            black_box(
                Jvm::new(cfg_trace_off.clone())
                    .run(&app)
                    .expect("bench run"),
            );
        },
        || {
            black_box(Jvm::new(cfg_trace_on.clone()).run(&app).expect("bench run"));
        },
    );
    // Trace-off is the production default: pair it against the identical
    // configuration so the median delta bounds what the disabled recorder
    // hooks cost (anything beyond host noise).
    let trace_off_floor = interleaved_overhead(
        "trace off->off (noise floor)",
        events_ab,
        2,
        50,
        || {
            black_box(
                Jvm::new(cfg_trace_off.clone())
                    .run(&app)
                    .expect("bench run"),
            );
        },
        || {
            black_box(
                Jvm::new(cfg_trace_off.clone())
                    .run(&app)
                    .expect("bench run"),
            );
        },
    );
    let trace_overhead_pct = trace.pct;
    let trace_off_overhead_pct = trace_off_floor.pct;
    eprintln!(
        "  off {:.2} M events/s, on {:.2} M events/s, recording cost {:.1}%, \
         trace-off cost vs identical baseline {:.1}% (budget <= 2%)",
        trace.base_eps / 1e6,
        trace.variant_eps / 1e6,
        trace_overhead_pct,
        trace_off_overhead_pct
    );

    eprintln!("audit overhead (auditing one traced xalan run)...");
    // The audit pass is two orders of magnitude cheaper than the run that
    // produces its timeline, so an A/B difference of two run timings would
    // drown it in host noise. Time the pass directly instead: each round
    // times the run and then the audit of that run's own timeline, and the
    // overhead is the ratio of the best samples (as in
    // `interleaved_overhead`, additive host noise only ever inflates a
    // sample, so each minimum converges on the clean time).
    let audit_rounds = 7usize;
    let mut audit_run_ns: Vec<u128> = Vec::with_capacity(audit_rounds);
    let mut audit_ns: Vec<u128> = Vec::with_capacity(audit_rounds);
    for round in 0..=audit_rounds {
        let start = Instant::now();
        let report = Jvm::new(cfg_trace_on.clone()).run(&app).expect("bench run");
        let run_ns = start.elapsed().as_nanos();
        let start = Instant::now();
        let audit = scalesim_audit::audit(&report.timeline, &report.counters, false);
        let pass_ns = start.elapsed().as_nanos();
        assert!(audit.is_clean(), "bench run must audit clean: {audit}");
        if round > 0 {
            // Round 0 is untimed warmup.
            audit_run_ns.push(run_ns);
            audit_ns.push(pass_ns);
        }
    }
    audit_run_ns.sort_unstable();
    audit_ns.sort_unstable();
    let audit_overhead_pct = audit_ns[0] as f64 * 100.0 / audit_run_ns[0].max(1) as f64;
    eprintln!("  audit overhead {audit_overhead_pct:.1}% (budget <= 3%)");

    eprintln!("analytics overhead (USL fit + attribution over a cached scalability sweep)...");
    // Same shape as the audit measurement: the analytics pass runs over
    // results the sweep already produced, and is far cheaper than the
    // sweep, so an A/B pair difference would drown in host noise. Each
    // round runs the sweep cold (pricing the producer) and then the
    // analytics pass against the now-warm memo cache (pricing only the
    // fitting, attribution, and serialization work); the overhead is the
    // ratio of the two best samples.
    let analytics_rounds = 7usize;
    let mut analytics_sweep_ns: Vec<u128> = Vec::with_capacity(analytics_rounds);
    let mut analytics_ns: Vec<u128> = Vec::with_capacity(analytics_rounds);
    for round in 0..=analytics_rounds {
        clear_run_cache();
        let start = Instant::now();
        black_box(run_scalability(&params).expect("scaletable"));
        let sweep_ns = start.elapsed().as_nanos();
        let start = Instant::now();
        let report = run_analytics(&params).expect("analytics");
        black_box(report.to_json_string());
        let pass_ns = start.elapsed().as_nanos();
        let _ = take_run_manifests();
        let _ = take_sweep_failures();
        if round > 0 {
            // Round 0 is untimed warmup.
            analytics_sweep_ns.push(sweep_ns);
            analytics_ns.push(pass_ns);
        }
    }
    analytics_sweep_ns.sort_unstable();
    analytics_ns.sort_unstable();
    let analytics_overhead_pct =
        analytics_ns[0] as f64 * 100.0 / analytics_sweep_ns[0].max(1) as f64;
    eprintln!("  analytics overhead {analytics_overhead_pct:.1}% (budget <= 3%)");

    let json = format!(
        "{{\n  \"seed\": {seed},\n  \"events_per_sec\": {eps:.0},\n  \"sweep_wall_ms\": {memo:.1},\n  \"sweep_wall_ms_nomemo\": {nomemo:.1},\n  \"sweep_wall_ms_checkpoint\": {ckpt:.1},\n  \"checkpoint_overhead_pct\": {ckpt_pct:.2},\n  \"memo_speedup\": {mspeed:.2},\n  \"unique_runs\": {runs},\n  \"events_simulated\": {events},\n  \"queue_events_per_sec_slab\": {qslab:.0},\n  \"queue_events_per_sec_baseline\": {qbase:.0},\n  \"queue_speedup\": {qspeed:.2},\n  \"events_per_sec_monitors_on\": {mon_on:.0},\n  \"events_per_sec_monitors_off\": {mon_off:.0},\n  \"monitor_overhead_pct\": {mon_pct:.2},\n  \"lock_alg_overhead_pct\": {lock_pct:.2},\n  \"events_per_sec_trace_off\": {troff:.0},\n  \"events_per_sec_trace_on\": {tron:.0},\n  \"trace_overhead_pct\": {tr_pct:.2},\n  \"trace_off_overhead_pct\": {troff_pct:.2},\n  \"audit_overhead_pct\": {audit_pct:.2},\n  \"campaign_overhead_pct\": {camp_pct:.2},\n  \"campaign_overhead_median_pct\": {camp_med_pct:.2},\n  \"server_overhead_pct\": {srv_pct:.2},\n  \"analytics_overhead_pct\": {ana_pct:.2}\n}}\n",
        seed = params.seed,
        eps = events_per_sec,
        memo = memo_ms,
        nomemo = nomemo_ms,
        ckpt = ckpt_ms,
        ckpt_pct = ckpt_overhead_pct,
        mspeed = nomemo_ms / memo_ms,
        runs = runs,
        events = events,
        qslab = slab,
        qbase = base,
        qspeed = slab / base,
        mon_on = mon.variant_eps,
        mon_off = mon.base_eps,
        mon_pct = mon.pct,
        lock_pct = lock_alg_overhead_pct,
        troff = trace.base_eps,
        tron = trace.variant_eps,
        tr_pct = trace_overhead_pct,
        troff_pct = trace_off_overhead_pct,
        audit_pct = audit_overhead_pct,
        camp_pct = campaign_overhead_pct,
        camp_med_pct = campaign_overhead_median_pct,
        srv_pct = server_overhead_pct,
        ana_pct = analytics_overhead_pct,
    );
    scalesim_trace::write_atomic(std::path::Path::new(&out), &json)
        .expect("write benchmark report");
    println!("{json}");
    eprintln!("wrote {out}");
}
