//! Appends one benchmark run to the durable bench history ledger.
//!
//! `scripts/bench.sh` calls this after `bench_sweep` + `bench_check` so
//! every successful benchmark run leaves a JSONL record — git SHA, date,
//! and the full `BENCH_sweep.json` body minified onto one line — that
//! performance drift can be diagnosed against long after the working
//! tree has moved on.
//!
//! Usage: `bench_history <BENCH_sweep.json> <history.jsonl> <sha> <date>`
//!
//! The history file is rewritten whole through
//! [`scalesim_trace::write_atomic`] (write-to-temp-then-rename), so a
//! crash mid-append can never truncate or interleave the ledger.

use std::process::ExitCode;

const USAGE: &str = "usage: bench_history <BENCH_sweep.json> <history.jsonl> <sha> <date>";

/// Minifies the flat one-field-per-line JSON `bench_sweep` writes onto a
/// single line. No string value in that report contains whitespace, so
/// dropping every whitespace character is lossless.
fn minify(json: &str) -> Result<String, String> {
    let flat: String = json.split_whitespace().collect();
    if !flat.starts_with('{') || !flat.ends_with('}') {
        return Err("bench report is not a JSON object".to_owned());
    }
    Ok(flat)
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [bench_path, history_path, sha, date] = args.as_slice() else {
        return Err(USAGE.to_owned());
    };
    let bench =
        std::fs::read_to_string(bench_path).map_err(|e| format!("read {bench_path}: {e}"))?;
    let bench = minify(&bench).map_err(|e| format!("{bench_path}: {e}"))?;
    if sha.is_empty() || sha.contains(|c: char| c.is_whitespace() || c == '"') {
        return Err(format!("bad sha `{sha}`"));
    }
    if date.is_empty() || date.contains(|c: char| c.is_whitespace() || c == '"') {
        return Err(format!("bad date `{date}`"));
    }

    // Read-modify-write the whole ledger: the tail must survive a crash
    // bit-for-bit, and whole-file atomic replace is the one primitive the
    // repo already trusts for that.
    let mut history = match std::fs::read_to_string(history_path) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("read {history_path}: {e}")),
    };
    if !history.is_empty() && !history.ends_with('\n') {
        history.push('\n');
    }
    history.push_str(&format!(
        "{{\"sha\":\"{sha}\",\"date\":\"{date}\",\"bench\":{bench}}}\n"
    ));

    let path = std::path::Path::new(history_path);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    scalesim_trace::write_atomic(path, &history)
        .map_err(|e| format!("write {history_path}: {e}"))?;
    let lines = history.lines().filter(|l| !l.trim().is_empty()).count();
    println!("{history_path}: appended {sha} ({date}), {lines} runs recorded");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_history: {msg}");
            ExitCode::FAILURE
        }
    }
}
