//! The discrete-event queue at the heart of every simulation.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs with three
//! properties the rest of `scalesim` relies on:
//!
//! 1. **Determinism** — events at equal times pop in the order they were
//!    scheduled (FIFO tie-break by sequence number).
//! 2. **Cancellation** — scheduling returns an [`EventId`] that can later be
//!    cancelled in O(1) (tombstoning), which is how pre-emption timers are
//!    retired when a thread blocks voluntarily first.
//! 3. **Time shifting** — [`EventQueue::shift_all`] moves every pending
//!    event later by a fixed amount, which is how stop-the-world GC pauses
//!    freeze the mutator world without re-scheduling each event by hand.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled.
///
/// Ids are unique for the lifetime of the queue and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

// Ordering is (time, seq); BinaryHeap is a max-heap so entries are wrapped
// in `Reverse` at the call sites.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event queue with a built-in clock.
///
/// Popping an event advances the clock to that event's timestamp; the clock
/// never moves backwards.
///
/// # Examples
///
/// ```
/// use scalesim_simkit::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_after(SimDuration::from_nanos(20), "late");
/// q.schedule_after(SimDuration::from_nanos(10), "early");
///
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_nanos(10), "early"));
/// assert_eq!(q.now(), SimTime::from_nanos(10));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<(EventId, E)>>>,
    cancelled: HashSet<EventId>,
    /// Ids currently pending (scheduled, not yet fired or cancelled).
    live: HashSet<EventId>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns an [`EventId`] usable with [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock: scheduling into the past
    /// is always a logic error in the caller.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event at {at} is in the past (now = {now})",
            now = self.now
        );
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Entry {
            time: at,
            seq: self.next_seq,
            payload: (id, payload),
        }));
        self.live.insert(id);
        self.next_seq += 1;
        self.scheduled_total += 1;
        id
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + after, payload)
    }

    /// Schedules `payload` to fire at the current instant (after any events
    /// already pending at this instant, preserving FIFO order).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending (it will now never be
    /// delivered), `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.live.remove(&id) {
            return false; // unknown, already fired, or already cancelled
        }
        // Tombstone; the entry is skipped and dropped when it reaches the top.
        self.cancelled.insert(id)
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let (id, payload) = entry.payload;
            if self.cancelled.remove(&id) {
                continue;
            }
            self.live.remove(&id);
            debug_assert!(entry.time >= self.now, "event queue clock went backwards");
            self.now = entry.time;
            self.popped_total += 1;
            return Some((entry.time, payload));
        }
        None
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Does not advance the clock.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&e.payload.0))
            .map(|Reverse(e)| (e.time, e.seq))
            .min()
            .map(|(t, _)| t)
    }

    /// Number of live (non-cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime (diagnostics).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events delivered over the queue's lifetime (diagnostics).
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Moves every pending event later by `delta` and advances the clock by
    /// the same amount.
    ///
    /// This models a stop-the-world pause: from the mutators' point of view
    /// the world freezes for `delta` and resumes exactly where it was.
    /// Relative ordering (including FIFO ties) is preserved.
    pub fn shift_all(&mut self, delta: SimDuration) {
        if delta.is_zero() {
            return;
        }
        let old = std::mem::take(&mut self.heap);
        self.heap = old
            .into_iter()
            .map(|Reverse(mut e)| {
                e.time += delta;
                Reverse(e)
            })
            .collect();
        self.now += delta;
    }
}

impl<E> fmt::Display for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EventQueue(now={}, pending={}, scheduled={}, popped={})",
            self.now,
            self.len(),
            self.scheduled_total,
            self.popped_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn dur(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(30), "c");
        q.schedule_at(ns(10), "a");
        q.schedule_at(ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), ns(42));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), ());
        q.pop();
        q.schedule_at(ns(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), "a");
        q.schedule_at(ns(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(999)));
    }

    #[test]
    fn cancelled_events_do_not_count_in_len() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), ());
        q.schedule_at(ns(20), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), ());
        q.schedule_at(ns(20), ());
        assert_eq!(q.peek_time(), Some(ns(10)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(ns(20)));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(100), "first");
        q.pop();
        q.schedule_after(dur(50), "second");
        assert_eq!(q.pop(), Some((ns(150), "second")));
    }

    #[test]
    fn schedule_now_preserves_fifo_at_current_instant() {
        let mut q = EventQueue::new();
        q.schedule_now("a");
        q.schedule_now("b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn shift_all_moves_everything_and_the_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), "a");
        q.schedule_at(ns(10), "b");
        q.schedule_at(ns(30), "c");
        q.shift_all(dur(100));
        assert_eq!(q.now(), ns(100));
        assert_eq!(q.pop(), Some((ns(110), "a")));
        assert_eq!(q.pop(), Some((ns(110), "b")));
        assert_eq!(q.pop(), Some((ns(130), "c")));
    }

    #[test]
    fn shift_all_zero_is_a_noop() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), ());
        q.shift_all(SimDuration::ZERO);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(ns(10)));
    }

    #[test]
    fn lifetime_counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(1), ());
        q.schedule_at(ns(2), ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(q.to_string().contains("EventQueue"));
    }
}
