//! The discrete-event queue at the heart of every simulation.
//!
//! [`EventQueue`] is a priority queue of `(time, payload)` pairs with three
//! properties the rest of `scalesim` relies on:
//!
//! 1. **Determinism** — events at equal times pop in the order they were
//!    scheduled (FIFO tie-break by sequence number).
//! 2. **Cancellation** — scheduling returns an [`EventId`] that can later be
//!    cancelled in O(1) (tombstoning), which is how pre-emption timers are
//!    retired when a thread blocks voluntarily first.
//! 3. **Time shifting** — [`EventQueue::shift_all`] moves every pending
//!    event later by a fixed amount, which is how stop-the-world GC pauses
//!    freeze the mutator world without re-scheduling each event by hand.
//!
//! # Hot-path design
//!
//! Every simulated metric is produced by popping millions of events, so
//! the schedule/cancel/pop path avoids hashing entirely:
//!
//! * **Generation-stamped slab.** An [`EventId`] is a `(slot, generation)`
//!   pair into a slab of `u32` generation stamps. An id is live exactly
//!   when its slot's stamp equals its generation; cancelling or delivering
//!   bumps the stamp, so liveness checks, cancellation, and the tombstone
//!   filter on pop are all single array reads — no `HashSet`, no hashing.
//!   Slots are recycled through a free list while generations keep retired
//!   ids from ever matching again.
//! * **Epoch-offset time shifting.** The heap orders entries by *internal*
//!   time (external time minus the accumulated shift at schedule time).
//!   [`EventQueue::shift_all`] just advances the queue-global offset and
//!   the clock — O(1) instead of rewriting every pending entry, which
//!   matters because stop-the-world GC pauses call it once per collection.
//!   Relative order (including FIFO ties) is untouched because internal
//!   times never change.
//!
//! The previous `BinaryHeap` + two-`HashSet` implementation survives as
//! [`crate::baseline::BaselineQueue`], serving as the reference model for
//! differential tests and the before/after comparator in benches.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled.
///
/// An id is a `(slot, generation)` pair: slots are recycled, generations
/// are not, so ids never alias for the lifetime of the queue (until a
/// slot's 2³²-generation wrap, far beyond any real run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId {
    slot: u32,
    generation: u32,
}

#[derive(Debug)]
struct Entry<E> {
    /// Internal (epoch-relative) time: external time minus the offset
    /// accumulated at schedule time.
    time: SimTime,
    seq: u64,
    slot: u32,
    generation: u32,
    payload: E,
}

// Ordering is (time, seq); BinaryHeap is a max-heap so entries are wrapped
// in `Reverse` at the call sites.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// A deterministic discrete-event queue with a built-in clock.
///
/// Popping an event advances the clock to that event's timestamp; the clock
/// never moves backwards.
///
/// # Examples
///
/// ```
/// use scalesim_simkit::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_after(SimDuration::from_nanos(20), "late");
/// q.schedule_after(SimDuration::from_nanos(10), "early");
///
/// let (t, ev) = q.pop().unwrap();
/// assert_eq!((t, ev), (SimTime::from_nanos(10), "early"));
/// assert_eq!(q.now(), SimTime::from_nanos(10));
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Generation stamp per slot. `stamps[s] == g` ⇔ event `(s, g)` is
    /// pending; any other relation means fired, cancelled, or not issued.
    stamps: Vec<u32>,
    /// Slots available for reuse.
    free: Vec<u32>,
    /// Live (non-cancelled) pending events.
    live: usize,
    /// External simulated time of the last popped event (plus shifts).
    now: SimTime,
    /// Total time shifted so far; external = internal + offset.
    offset: SimDuration,
    next_seq: u64,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            stamps: Vec::new(),
            free: Vec::new(),
            live: 0,
            now: SimTime::ZERO,
            offset: SimDuration::ZERO,
            next_seq: 0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// The current simulated time (timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns an [`EventId`] usable with [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock: scheduling into the past
    /// is always a logic error in the caller.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(
            at >= self.now,
            "scheduled event at {at} is in the past (now = {now})",
            now = self.now
        );
        let slot = match self.free.pop() {
            Some(s) => s,
            None => {
                let s = u32::try_from(self.stamps.len()).expect("more than 2^32 event slots");
                self.stamps.push(0);
                s
            }
        };
        let generation = self.stamps[slot as usize];
        let id = EventId { slot, generation };
        // `now >= offset` always (both advance together in shift_all and
        // `now` also advances on pops), so `at - offset` cannot underflow.
        self.heap.push(Reverse(Entry {
            time: at - self.offset,
            seq: self.next_seq,
            slot,
            generation,
            payload,
        }));
        self.live += 1;
        self.next_seq += 1;
        self.scheduled_total += 1;
        id
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> EventId {
        self.schedule_at(self.now + after, payload)
    }

    /// Schedules `payload` to fire at the current instant (after any events
    /// already pending at this instant, preserving FIFO order).
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        self.schedule_at(self.now, payload)
    }

    /// Whether `id` is still pending — one array read.
    fn is_live(&self, slot: u32, generation: u32) -> bool {
        self.stamps[slot as usize] == generation
    }

    /// Retires a slot: stale ids stop matching, the slot becomes reusable.
    fn retire(&mut self, slot: u32) {
        self.stamps[slot as usize] = self.stamps[slot as usize].wrapping_add(1);
        self.free.push(slot);
        self.live -= 1;
    }

    /// Cancels a pending event.
    ///
    /// Returns `true` if the event was still pending (it will now never be
    /// delivered), `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if !self.is_live(id.slot, id.generation) {
            return false; // already fired, or already cancelled
        }
        // Tombstone; the heap entry is skipped and dropped when it reaches
        // the top.
        self.retire(id.slot);
        true
    }

    /// Removes and returns the earliest pending event, advancing the clock
    /// to its timestamp. Returns `None` when no events remain.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.is_live(entry.slot, entry.generation) {
                continue; // lazily drop tombstone
            }
            self.retire(entry.slot);
            let at = entry.time + self.offset;
            debug_assert!(at >= self.now, "event queue clock went backwards");
            self.now = at;
            self.popped_total += 1;
            return Some((at, entry.payload));
        }
        None
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Does not advance the clock.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|Reverse(e)| self.is_live(e.slot, e.generation))
            .map(|Reverse(e)| (e.time, e.seq))
            .min()
            .map(|(t, _)| t + self.offset)
    }

    /// Number of live (non-cancelled) pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime (diagnostics).
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events delivered over the queue's lifetime (diagnostics).
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Moves every pending event later by `delta` and advances the clock by
    /// the same amount, in O(1).
    ///
    /// This models a stop-the-world pause: from the mutators' point of view
    /// the world freezes for `delta` and resumes exactly where it was.
    /// Relative ordering (including FIFO ties) is preserved — pending
    /// entries are ordered by shift-invariant internal times, so a pause
    /// can never reorder same-time events.
    pub fn shift_all(&mut self, delta: SimDuration) {
        if delta.is_zero() {
            return;
        }
        self.offset += delta;
        self.now += delta;
    }
}

impl<E> fmt::Display for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EventQueue(now={}, pending={}, scheduled={}, popped={})",
            self.now,
            self.len(),
            self.scheduled_total,
            self.popped_total
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn dur(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(30), "c");
        q.schedule_at(ns(10), "a");
        q.schedule_at(ns(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(ns(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(42), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), ns(42));
    }

    #[test]
    #[should_panic(expected = "in the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), ());
        q.pop();
        q.schedule_at(ns(5), ());
    }

    #[test]
    fn cancel_prevents_delivery() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), "a");
        q.schedule_at(ns(20), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double-cancel reports false");
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_fired_id_is_false() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(a), "fired events cannot be cancelled");
    }

    #[test]
    fn recycled_slot_does_not_alias_old_id() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), "a");
        assert!(q.cancel(a));
        // The slot is recycled for "b", but under a fresh generation: the
        // stale id must not cancel the new event.
        let b = q.schedule_at(ns(20), "b");
        assert_ne!(a, b, "EventIds are never reused");
        assert!(!q.cancel(a));
        assert_eq!(q.pop(), Some((ns(20), "b")));
    }

    #[test]
    fn ids_stay_distinct_across_heavy_recycling() {
        let mut q = EventQueue::new();
        let mut seen = std::collections::HashSet::new();
        for round in 0..100u64 {
            let id = q.schedule_at(ns(round), round);
            assert!(seen.insert(id), "EventId reused at round {round}");
            if round % 2 == 0 {
                q.cancel(id);
            } else {
                q.pop();
            }
        }
    }

    #[test]
    fn cancelled_events_do_not_count_in_len() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), ());
        q.schedule_at(ns(20), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), ());
        q.schedule_at(ns(20), ());
        assert_eq!(q.peek_time(), Some(ns(10)));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(ns(20)));
    }

    #[test]
    fn schedule_after_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(100), "first");
        q.pop();
        q.schedule_after(dur(50), "second");
        assert_eq!(q.pop(), Some((ns(150), "second")));
    }

    #[test]
    fn schedule_now_preserves_fifo_at_current_instant() {
        let mut q = EventQueue::new();
        q.schedule_now("a");
        q.schedule_now("b");
        assert_eq!(q.pop().map(|(_, e)| e), Some("a"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("b"));
    }

    #[test]
    fn shift_all_moves_everything_and_the_clock() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), "a");
        q.schedule_at(ns(10), "b");
        q.schedule_at(ns(30), "c");
        q.shift_all(dur(100));
        assert_eq!(q.now(), ns(100));
        assert_eq!(q.pop(), Some((ns(110), "a")));
        assert_eq!(q.pop(), Some((ns(110), "b")));
        assert_eq!(q.pop(), Some((ns(130), "c")));
    }

    #[test]
    fn shift_all_zero_is_a_noop() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), ());
        q.shift_all(SimDuration::ZERO);
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.peek_time(), Some(ns(10)));
    }

    #[test]
    fn shift_all_never_reorders_same_time_events() {
        // A GC pause between schedules must keep the FIFO tie-break: the
        // events pending across the shift keep their order, and an event
        // scheduled *after* the shift for the same (shifted) instant still
        // pops last.
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), "a");
        q.schedule_at(ns(10), "b");
        q.shift_all(dur(5));
        q.schedule_at(ns(15), "c"); // same external instant as shifted a/b
        assert_eq!(q.pop(), Some((ns(15), "a")));
        assert_eq!(q.pop(), Some((ns(15), "b")));
        assert_eq!(q.pop(), Some((ns(15), "c")));
    }

    #[test]
    fn repeated_shifts_accumulate() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(10), "a");
        q.shift_all(dur(5));
        q.shift_all(dur(7));
        assert_eq!(q.now(), ns(12));
        assert_eq!(q.peek_time(), Some(ns(22)));
        assert_eq!(q.pop(), Some((ns(22), "a")));
        // Scheduling keeps working in shifted time.
        q.schedule_after(dur(3), "b");
        assert_eq!(q.pop(), Some((ns(25), "b")));
    }

    #[test]
    fn cancel_of_pre_shift_id_still_works_after_shift() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(ns(10), "a");
        q.schedule_at(ns(20), "b");
        q.shift_all(dur(100));
        assert!(q.cancel(a));
        assert_eq!(q.pop(), Some((ns(120), "b")));
    }

    #[test]
    fn lifetime_counters_track_activity() {
        let mut q = EventQueue::new();
        q.schedule_at(ns(1), ());
        q.schedule_at(ns(2), ());
        q.pop();
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.popped_total(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let q: EventQueue<()> = EventQueue::new();
        assert!(q.to_string().contains("EventQueue"));
    }
}
