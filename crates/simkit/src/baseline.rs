//! The pre-slab event queue, kept as an executable specification.
//!
//! [`BaselineQueue`] is the original `BinaryHeap` + two-`HashSet`
//! implementation of the event queue (O(pending) `shift_all`, hashing on
//! every schedule/cancel/pop). It is **not** used by the simulator; it
//! exists so that
//!
//! * property tests can check the production [`crate::EventQueue`] against
//!   an independently-written model under random interleavings, and
//! * benches can report the slab queue's speedup against a faithful
//!   before-image instead of a guess.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// Identifies an event scheduled on a [`BaselineQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BaselineEventId(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The original deterministic event queue (reference implementation).
///
/// Semantically equivalent to [`crate::EventQueue`]; see the module docs
/// for why it is retained.
#[derive(Debug, Default)]
pub struct BaselineQueue<E> {
    heap: BinaryHeap<Reverse<Entry<(BaselineEventId, E)>>>,
    cancelled: HashSet<BaselineEventId>,
    live: HashSet<BaselineEventId>,
    now: SimTime,
    next_seq: u64,
    scheduled_total: u64,
    popped_total: u64,
}

impl<E> BaselineQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    #[must_use]
    pub fn new() -> Self {
        BaselineQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            live: HashSet::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            scheduled_total: 0,
            popped_total: 0,
        }
    }

    /// The current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> BaselineEventId {
        assert!(
            at >= self.now,
            "scheduled event at {at} is in the past (now = {now})",
            now = self.now
        );
        let id = BaselineEventId(self.next_seq);
        self.heap.push(Reverse(Entry {
            time: at,
            seq: self.next_seq,
            payload: (id, payload),
        }));
        self.live.insert(id);
        self.next_seq += 1;
        self.scheduled_total += 1;
        id
    }

    /// Schedules `payload` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, payload: E) -> BaselineEventId {
        self.schedule_at(self.now + after, payload)
    }

    /// Schedules `payload` at the current instant (FIFO after pending
    /// same-time events).
    pub fn schedule_now(&mut self, payload: E) -> BaselineEventId {
        self.schedule_at(self.now, payload)
    }

    /// Cancels a pending event; `true` if it was still pending.
    pub fn cancel(&mut self, id: BaselineEventId) -> bool {
        if !self.live.remove(&id) {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            let (id, payload) = entry.payload;
            if self.cancelled.remove(&id) {
                continue;
            }
            self.live.remove(&id);
            debug_assert!(entry.time >= self.now, "event queue clock went backwards");
            self.now = entry.time;
            self.popped_total += 1;
            return Some((entry.time, payload));
        }
        None
    }

    /// The timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&e.payload.0))
            .map(|Reverse(e)| (e.time, e.seq))
            .min()
            .map(|(t, _)| t)
    }

    /// Number of live pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no live events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events scheduled over the queue's lifetime.
    #[must_use]
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Total events delivered over the queue's lifetime.
    #[must_use]
    pub fn popped_total(&self) -> u64 {
        self.popped_total
    }

    /// Moves every pending event later by `delta` — O(pending), rebuilding
    /// the heap (the cost the slab queue's epoch offset eliminates).
    pub fn shift_all(&mut self, delta: SimDuration) {
        if delta.is_zero() {
            return;
        }
        let old = std::mem::take(&mut self.heap);
        self.heap = old
            .into_iter()
            .map(|Reverse(mut e)| {
                e.time += delta;
                Reverse(e)
            })
            .collect();
        self.now += delta;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn baseline_still_behaves_like_a_queue() {
        let mut q = BaselineQueue::new();
        let a = q.schedule_at(ns(10), "a");
        q.schedule_at(ns(5), "b");
        q.schedule_at(ns(10), "c");
        assert_eq!(q.len(), 3);
        assert!(q.cancel(a));
        q.shift_all(SimDuration::from_nanos(100));
        assert_eq!(q.pop(), Some((ns(105), "b")));
        assert_eq!(q.pop(), Some((ns(110), "c")));
        assert!(q.pop().is_none());
        assert_eq!(q.scheduled_total(), 3);
        assert_eq!(q.popped_total(), 2);
    }
}
