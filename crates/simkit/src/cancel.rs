//! Cooperative cancellation for in-flight runs.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the sweep
//! harness (which decides a run has overstayed its host deadline) and the
//! engine's main loop (which polls the flag at the same cadence as the
//! run-budget check and truncates cleanly). Cancellation is cooperative:
//! nothing is interrupted mid-event, so the truncated report still carries
//! consistent partial metrics.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared, clone-to-share cancellation flag.
///
/// Cloning hands out another handle to the *same* flag; once any handle
/// calls [`CancelToken::cancel`], every holder observes it.
#[derive(Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// True once any handle has called [`CancelToken::cancel`].
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

// The token sits on `Jvm`, whose Debug output feeds memo keys; render a
// constant so an attached watchdog can never perturb run identity.
impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CancelToken")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let token = CancelToken::new();
        let peer = token.clone();
        assert!(!token.is_cancelled());
        peer.cancel();
        assert!(token.is_cancelled());
        token.cancel(); // idempotent
        assert!(peer.is_cancelled());
    }

    #[test]
    fn debug_is_state_independent() {
        let token = CancelToken::new();
        let before = format!("{token:?}");
        token.cancel();
        assert_eq!(before, format!("{token:?}"));
        assert_eq!(before, "CancelToken");
    }
}
