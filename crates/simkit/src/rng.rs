//! Deterministic, perturbation-free random-number streams.
//!
//! Simulation experiments sweep a parameter (thread count, heap size, …)
//! and compare runs. If all entities shared one RNG, adding a thread would
//! shift every other entity's random draws and make comparisons noisy.
//! [`RngFactory`] instead derives an independent seed per `(label, index)`
//! pair from one master seed, so entity streams are stable across
//! configurations.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent [`StdRng`] streams from one master seed.
///
/// Streams are identified by a string label plus an index, e.g.
/// `("mutator", 7)` for mutator thread 7. The same `(seed, label, index)`
/// always yields the same stream.
///
/// # Examples
///
/// ```
/// use scalesim_simkit::RngFactory;
/// use rand::Rng;
///
/// let f = RngFactory::new(42);
/// let mut a = f.stream("mutator", 0);
/// let mut b = f.stream("mutator", 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
///
/// let mut c = f.stream("mutator", 1);
/// assert_ne!(f.stream("mutator", 0).gen::<u64>(), c.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RngFactory {
    master: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    #[must_use]
    pub fn new(master: u64) -> Self {
        RngFactory { master }
    }

    /// The master seed this factory was built from.
    #[must_use]
    pub fn master_seed(&self) -> u64 {
        self.master
    }

    /// Returns the deterministic stream for `(label, index)`.
    #[must_use]
    pub fn stream(&self, label: &str, index: u64) -> StdRng {
        StdRng::seed_from_u64(self.derive(label, index))
    }

    /// Derives the raw 64-bit seed for `(label, index)` without building an
    /// RNG; exposed so components can sub-split their own streams.
    #[must_use]
    pub fn derive(&self, label: &str, index: u64) -> u64 {
        let mut h = self.master ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        splitmix64(h ^ index.wrapping_mul(0xbf58_476d_1ce4_e5b9))
    }
}

/// One round of the SplitMix64 finalizer — a strong 64-bit mixer used for
/// seed derivation (not as the simulation RNG itself).
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let f = RngFactory::new(7);
        let xs: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(f.stream("a", 3), |r, _| Some(r.gen()))
            .collect();
        let ys: Vec<u64> = (0..8)
            .map(|_| 0)
            .scan(f.stream("a", 3), |r, _| Some(r.gen()))
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngFactory::new(7);
        assert_ne!(f.derive("alloc", 0), f.derive("lock", 0));
    }

    #[test]
    fn different_indices_differ() {
        let f = RngFactory::new(7);
        assert_ne!(f.derive("t", 0), f.derive("t", 1));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            RngFactory::new(1).derive("t", 0),
            RngFactory::new(2).derive("t", 0)
        );
    }

    #[test]
    fn master_seed_round_trips() {
        assert_eq!(RngFactory::new(99).master_seed(), 99);
    }

    #[test]
    fn splitmix_is_not_identity_and_spreads_bits() {
        let a = splitmix64(0);
        let b = splitmix64(1);
        assert_ne!(a, b);
        // single-bit input change flips many output bits
        assert!((a ^ b).count_ones() > 10);
    }

    #[test]
    fn stream_values_look_uniform_enough() {
        // cheap sanity check: over 1000 draws in [0,10) every value appears
        let f = RngFactory::new(1234);
        let mut r = f.stream("uniform", 0);
        let mut seen = [0u32; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0..10)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 50), "counts: {seen:?}");
    }
}
