//! Deterministic fault injection and run budgets.
//!
//! The chaos layer lets the test suite (and a cautious operator) prove that
//! the simulator's invariant monitors are not vacuous: every fault class a
//! [`ChaosPlan`] can inject must be caught by a corresponding monitor or by
//! a [`RunBudget`]. Faults are derived purely from the master seed and a
//! per-class counter, so the same `(config, seed)` always injects the same
//! faults at the same points — chaos runs are as replayable as clean runs.

use crate::rng::splitmix64;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Per-class salt folded into the firing hash so the classes draw
/// independent deterministic streams from one seed.
const SALTS: [u64; 5] = [
    0x7c15_9e37_79b9_7f4a, // drop wakeup
    0xe5b9_bf58_476d_1ce4, // spurious wakeup
    0x11eb_94d0_49bb_1331, // gc stall
    0xd463_2545_f491_4f6c, // memo corrupt
    0x9e6c_63d0_a52f_2f61, // request drop
];

/// The kinds of fault a [`ChaosPlan`] can inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// A monitor-release wakeup is dropped: the next waiter is granted the
    /// lock but never made runnable.
    DropWakeup,
    /// A blocked waiter is made runnable without being granted the lock.
    SpuriousWakeup,
    /// A GC pause is inflated as if a collector worker stalled at the
    /// safepoint.
    GcStall,
    /// A memo-cache entry in the sweep harness is corrupted after insert.
    MemoCorrupt,
    /// An admitted server request is silently dropped before service — the
    /// client sees no reply and must rely on its timeout to recover.
    RequestDrop,
}

impl FaultClass {
    fn index(self) -> usize {
        match self {
            FaultClass::DropWakeup => 0,
            FaultClass::SpuriousWakeup => 1,
            FaultClass::GcStall => 2,
            FaultClass::MemoCorrupt => 3,
            FaultClass::RequestDrop => 4,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            FaultClass::DropWakeup => "drop-wakeup",
            FaultClass::SpuriousWakeup => "spurious-wakeup",
            FaultClass::GcStall => "gc-stall",
            FaultClass::MemoCorrupt => "memo-corrupt",
            FaultClass::RequestDrop => "request-drop",
        };
        f.write_str(name)
    }
}

/// Static description of which faults to inject and how often.
///
/// Each `*_period` is an average firing period in opportunities: a period of
/// `p` makes roughly one in `p` opportunities fire (0 disables the class).
/// The exact opportunities that fire are a deterministic function of the
/// run seed — see [`ChaosPlan`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Average period, in release operations, between dropped wakeups.
    pub drop_wakeup_period: u64,
    /// Average period, in block operations, between spurious wakeups.
    pub spurious_wakeup_period: u64,
    /// Average period, in collections, between stalled-GC-worker pauses.
    pub gc_stall_period: u64,
    /// Multiplier applied to a stalled collection's pause (the pause grows
    /// by `pause * factor`).
    pub gc_stall_factor: f64,
    /// Average period, in cache inserts, between corrupted memo entries.
    pub memo_corrupt_period: u64,
    /// Average period, in admitted server requests, between silent drops.
    pub request_drop_period: u64,
    /// If nonzero, the run deliberately panics when the engine has
    /// processed exactly this many events (crash-isolation testing).
    pub panic_at_event: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_wakeup_period: 0,
            spurious_wakeup_period: 0,
            gc_stall_period: 0,
            gc_stall_factor: 4.0,
            memo_corrupt_period: 0,
            request_drop_period: 0,
            panic_at_event: 0,
        }
    }
}

impl ChaosConfig {
    /// True when no fault class is enabled.
    #[must_use]
    pub fn is_off(&self) -> bool {
        self.drop_wakeup_period == 0
            && self.spurious_wakeup_period == 0
            && self.gc_stall_period == 0
            && self.memo_corrupt_period == 0
            && self.request_drop_period == 0
            && self.panic_at_event == 0
    }

    /// Builds a config from the `SCALESIM_CHAOS` environment variable,
    /// or the all-off default when it is unset or empty.
    ///
    /// The format is a comma-separated `key=value` list, e.g.
    /// `drop-wakeup=64,spurious=97,gc-stall=3,gc-stall-factor=2.5,memo=5,request-drop=11`.
    /// A malformed spec falls back to the all-off default (the engine must
    /// not refuse to run because of a typo in a chaos knob).
    #[must_use]
    pub fn from_env() -> Self {
        match std::env::var("SCALESIM_CHAOS") {
            Ok(spec) => Self::parse(&spec).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }

    /// Parses a `key=value,key=value` chaos spec.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed entry.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut cfg = ChaosConfig::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() || part == "off" {
                continue;
            }
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("chaos entry `{part}` is not key=value"))?;
            let parse_u64 = |v: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("bad count in `{part}`"))
            };
            match key.trim() {
                "drop-wakeup" => cfg.drop_wakeup_period = parse_u64(value)?,
                "spurious" => cfg.spurious_wakeup_period = parse_u64(value)?,
                "gc-stall" => cfg.gc_stall_period = parse_u64(value)?,
                "gc-stall-factor" => {
                    cfg.gc_stall_factor = value
                        .parse::<f64>()
                        .map_err(|_| format!("bad factor in `{part}`"))?;
                }
                "memo" => cfg.memo_corrupt_period = parse_u64(value)?,
                "request-drop" => cfg.request_drop_period = parse_u64(value)?,
                "panic-at" => cfg.panic_at_event = parse_u64(value)?,
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(cfg)
    }
}

/// Seed-driven schedule of fault injections for one run.
///
/// Each injection *opportunity* (a monitor release, a block, a collection,
/// a cache insert) advances a per-class counter; whether the opportunity
/// fires is `splitmix64(seed ^ salt ^ counter) % period == 0`. The schedule
/// is therefore a pure function of `(config, seed)` and survives replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPlan {
    config: ChaosConfig,
    seed: u64,
    counters: [u64; 5],
    injected: [u64; 5],
}

impl ChaosPlan {
    /// Creates the plan for one run from its chaos config and master seed.
    #[must_use]
    pub fn new(config: ChaosConfig, seed: u64) -> Self {
        ChaosPlan {
            config,
            seed,
            counters: [0; 5],
            injected: [0; 5],
        }
    }

    /// The static configuration this plan was built from.
    #[must_use]
    pub fn config(&self) -> &ChaosConfig {
        &self.config
    }

    fn period(&self, class: FaultClass) -> u64 {
        match class {
            FaultClass::DropWakeup => self.config.drop_wakeup_period,
            FaultClass::SpuriousWakeup => self.config.spurious_wakeup_period,
            FaultClass::GcStall => self.config.gc_stall_period,
            FaultClass::MemoCorrupt => self.config.memo_corrupt_period,
            FaultClass::RequestDrop => self.config.request_drop_period,
        }
    }

    /// Registers one injection opportunity for `class` and reports whether
    /// it fires. Always advances the class counter, so enabling one class
    /// never perturbs another's schedule.
    pub fn fires(&mut self, class: FaultClass) -> bool {
        let i = class.index();
        let counter = self.counters[i];
        self.counters[i] += 1;
        let period = self.period(class);
        if period == 0 {
            return false;
        }
        let fired = splitmix64(self.seed ^ SALTS[i] ^ counter).is_multiple_of(period);
        if fired {
            self.injected[i] += 1;
        }
        fired
    }

    /// How many faults of `class` have fired so far.
    #[must_use]
    pub fn injected(&self, class: FaultClass) -> u64 {
        self.injected[class.index()]
    }

    /// Total faults injected across all classes.
    #[must_use]
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// True when the engine should deliberately panic at `events_processed`
    /// events (crash-isolation testing).
    #[must_use]
    pub fn panics_at(&self, events_processed: u64) -> bool {
        self.config.panic_at_event != 0 && events_processed == self.config.panic_at_event
    }
}

/// Hard limits a single run must stay within.
///
/// Budgets turn runaway runs (livelock after a lost wakeup, a pathological
/// config) into clean truncation: the engine stops, marks the report
/// truncated with an [`AbortReason`], and keeps whatever partial metrics it
/// gathered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunBudget {
    /// Maximum events the engine may process before aborting.
    pub max_events: u64,
    /// Maximum simulated time a run may cover, if any.
    pub max_sim_time: Option<SimDuration>,
    /// Maximum host wall-clock milliseconds a run may take, if any.
    pub max_host_ms: Option<u64>,
    /// Per-run host deadline enforced *externally* by the sweep watchdog
    /// thread, if any. Unlike `max_host_ms` this is not polled by
    /// [`RunBudget::check`]: the watchdog cancels the run cooperatively
    /// and the engine truncates with [`AbortReason::Watchdog`].
    pub watchdog_ms: Option<u64>,
}

impl Default for RunBudget {
    fn default() -> Self {
        RunBudget {
            max_events: 2_000_000_000,
            max_sim_time: None,
            max_host_ms: None,
            watchdog_ms: None,
        }
    }
}

impl RunBudget {
    /// Builds a budget from `SCALESIM_MAX_EVENTS`, `SCALESIM_MAX_SIM_MS`,
    /// `SCALESIM_MAX_HOST_MS` and `SCALESIM_WATCHDOG_MS`, falling back to
    /// the defaults for any variable that is unset or malformed.
    #[must_use]
    pub fn from_env() -> Self {
        let mut budget = RunBudget::default();
        if let Some(v) = env_u64("SCALESIM_MAX_EVENTS") {
            budget.max_events = v;
        }
        if let Some(v) = env_u64("SCALESIM_MAX_SIM_MS") {
            budget.max_sim_time = Some(SimDuration::from_millis(v));
        }
        if let Some(v) = env_u64("SCALESIM_MAX_HOST_MS") {
            budget.max_host_ms = Some(v);
        }
        if let Some(v) = env_u64("SCALESIM_WATCHDOG_MS") {
            budget.watchdog_ms = Some(v);
        }
        budget
    }

    /// Checks the budget against a run's progress; `None` means in budget.
    #[must_use]
    pub fn check(
        &self,
        events_processed: u64,
        now: SimTime,
        host_elapsed_ms: u64,
    ) -> Option<AbortReason> {
        if events_processed >= self.max_events {
            return Some(AbortReason::MaxEvents(self.max_events));
        }
        if let Some(limit) = self.max_sim_time {
            if now.as_nanos() >= limit.as_nanos() {
                return Some(AbortReason::MaxSimTime(limit));
            }
        }
        if let Some(limit) = self.max_host_ms {
            if host_elapsed_ms >= limit {
                return Some(AbortReason::MaxHostMs(limit));
            }
        }
        None
    }
}

/// Why a run was truncated by its [`RunBudget`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbortReason {
    /// The event budget was exhausted.
    MaxEvents(u64),
    /// The simulated-time budget was exhausted.
    MaxSimTime(SimDuration),
    /// The host wall-clock budget was exhausted.
    MaxHostMs(u64),
    /// The sweep watchdog cancelled the run past its host deadline.
    Watchdog,
}

impl fmt::Display for AbortReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortReason::MaxEvents(n) => write!(f, "event budget exhausted ({n} events)"),
            AbortReason::MaxSimTime(d) => {
                write!(f, "sim-time budget exhausted ({} ns)", d.as_nanos())
            }
            AbortReason::MaxHostMs(ms) => {
                write!(f, "host-time budget exhausted ({ms} ms)")
            }
            AbortReason::Watchdog => f.write_str("watchdog cancelled run past host deadline"),
        }
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off() {
        assert!(ChaosConfig::default().is_off());
    }

    #[test]
    fn parse_full_spec() {
        let cfg = ChaosConfig::parse(
            "drop-wakeup=64, spurious=97,gc-stall=3,gc-stall-factor=2.5,memo=5,request-drop=11",
        )
        .unwrap();
        assert_eq!(cfg.drop_wakeup_period, 64);
        assert_eq!(cfg.spurious_wakeup_period, 97);
        assert_eq!(cfg.gc_stall_period, 3);
        assert!((cfg.gc_stall_factor - 2.5).abs() < 1e-12);
        assert_eq!(cfg.memo_corrupt_period, 5);
        assert_eq!(cfg.request_drop_period, 11);
        assert!(!cfg.is_off());
    }

    #[test]
    fn request_drop_is_an_independent_deterministic_stream() {
        let only_drop = ChaosConfig {
            request_drop_period: 4,
            ..ChaosConfig::default()
        };
        let both = ChaosConfig {
            request_drop_period: 4,
            gc_stall_period: 2,
            ..ChaosConfig::default()
        };
        let fires = |cfg: ChaosConfig, seed| {
            let mut plan = ChaosPlan::new(cfg, seed);
            (0..256)
                .map(|_| {
                    plan.fires(FaultClass::GcStall);
                    plan.fires(FaultClass::RequestDrop)
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(fires(only_drop, 42), fires(both, 42));
        assert_eq!(fires(both, 42), fires(both, 42));
        assert_ne!(fires(both, 42), fires(both, 43));
        assert_eq!(FaultClass::RequestDrop.to_string(), "request-drop");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ChaosConfig::parse("drop-wakeup").is_err());
        assert!(ChaosConfig::parse("drop-wakeup=x").is_err());
        assert!(ChaosConfig::parse("bogus=1").is_err());
        assert!(ChaosConfig::parse("gc-stall-factor=hot").is_err());
    }

    #[test]
    fn parse_empty_and_off_are_default() {
        assert!(ChaosConfig::parse("").unwrap().is_off());
        assert!(ChaosConfig::parse("off").unwrap().is_off());
    }

    #[test]
    fn plan_is_deterministic_per_seed() {
        let cfg = ChaosConfig {
            drop_wakeup_period: 7,
            spurious_wakeup_period: 5,
            ..ChaosConfig::default()
        };
        let sequence = |seed| {
            let mut plan = ChaosPlan::new(cfg, seed);
            (0..256)
                .map(|i| {
                    if i % 2 == 0 {
                        plan.fires(FaultClass::DropWakeup)
                    } else {
                        plan.fires(FaultClass::SpuriousWakeup)
                    }
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43));
    }

    #[test]
    fn plan_fires_roughly_at_period() {
        let cfg = ChaosConfig {
            gc_stall_period: 4,
            ..ChaosConfig::default()
        };
        let mut plan = ChaosPlan::new(cfg, 42);
        let fired = (0..4000)
            .filter(|_| plan.fires(FaultClass::GcStall))
            .count();
        assert!((500..2000).contains(&fired), "fired {fired} of 4000");
        assert_eq!(plan.injected(FaultClass::GcStall) as usize, fired);
        assert_eq!(plan.total_injected() as usize, fired);
    }

    #[test]
    fn disabled_class_never_fires_but_still_counts() {
        let mut plan = ChaosPlan::new(ChaosConfig::default(), 42);
        for _ in 0..100 {
            assert!(!plan.fires(FaultClass::DropWakeup));
        }
        assert_eq!(plan.injected(FaultClass::DropWakeup), 0);
    }

    #[test]
    fn classes_are_independent_streams() {
        // Enabling one class must not change another class's schedule.
        let only_drop = ChaosConfig {
            drop_wakeup_period: 3,
            ..ChaosConfig::default()
        };
        let both = ChaosConfig {
            drop_wakeup_period: 3,
            gc_stall_period: 2,
            ..ChaosConfig::default()
        };
        let drops = |cfg: ChaosConfig| {
            let mut plan = ChaosPlan::new(cfg, 7);
            (0..128)
                .map(|_| {
                    plan.fires(FaultClass::GcStall);
                    plan.fires(FaultClass::DropWakeup)
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(drops(only_drop), drops(both));
    }

    #[test]
    fn panic_at_event_matches_exactly() {
        let cfg = ChaosConfig {
            panic_at_event: 10,
            ..ChaosConfig::default()
        };
        let plan = ChaosPlan::new(cfg, 1);
        assert!(!plan.panics_at(9));
        assert!(plan.panics_at(10));
        assert!(!plan.panics_at(11));
        assert!(!ChaosPlan::new(ChaosConfig::default(), 1).panics_at(0));
    }

    #[test]
    fn budget_default_allows_ordinary_runs() {
        let b = RunBudget::default();
        assert_eq!(
            b.check(1_000_000, SimTime::ZERO + SimDuration::from_millis(50), 10),
            None
        );
    }

    #[test]
    fn budget_trips_on_each_axis() {
        let b = RunBudget {
            max_events: 100,
            max_sim_time: Some(SimDuration::from_millis(5)),
            max_host_ms: Some(1000),
            watchdog_ms: None,
        };
        assert_eq!(
            b.check(100, SimTime::ZERO, 0),
            Some(AbortReason::MaxEvents(100))
        );
        assert_eq!(
            b.check(1, SimTime::ZERO + SimDuration::from_millis(5), 0),
            Some(AbortReason::MaxSimTime(SimDuration::from_millis(5)))
        );
        assert_eq!(
            b.check(1, SimTime::ZERO, 1000),
            Some(AbortReason::MaxHostMs(1000))
        );
        assert_eq!(b.check(99, SimTime::ZERO, 999), None);
    }

    #[test]
    fn abort_reason_displays() {
        assert!(AbortReason::MaxEvents(5)
            .to_string()
            .contains("event budget"));
        assert!(AbortReason::MaxSimTime(SimDuration::from_millis(1))
            .to_string()
            .contains("sim-time"));
        assert!(AbortReason::MaxHostMs(9).to_string().contains("host-time"));
    }
}
