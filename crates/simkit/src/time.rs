//! Simulated time.
//!
//! All of `scalesim` runs on a single virtual clock measured in
//! **nanoseconds**. Two newtypes keep instants and durations apart:
//! [`SimTime`] is a point on the timeline, [`SimDuration`] is a span.
//! Mixing them up is a compile error, which matters in a simulator where
//! every second bug is a time-arithmetic bug.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated timeline, in nanoseconds since simulation
/// start.
///
/// `SimTime` is totally ordered and starts at [`SimTime::ZERO`]. Subtracting
/// two instants yields a [`SimDuration`].
///
/// # Examples
///
/// ```
/// use scalesim_simkit::{SimTime, SimDuration};
///
/// let t0 = SimTime::ZERO;
/// let t1 = t0 + SimDuration::from_micros(3);
/// assert_eq!(t1 - t0, SimDuration::from_nanos(3_000));
/// assert!(t1 > t0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use scalesim_simkit::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 2_500_000);
/// assert_eq!(d.as_secs_f64(), 0.0025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulated timeline.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far"
    /// sentinel for deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after simulation start.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating to zero if `earlier`
    /// is actually later (never panics, unlike `Sub`).
    #[must_use]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// `self + d`, saturating at [`SimTime::MAX`] instead of overflowing.
    #[must_use]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    #[must_use]
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from a float number of seconds, rounding to the
    /// nearest nanosecond and clamping negatives to zero.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Length in nanoseconds.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length in seconds, as a float (for reporting).
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Whether the span is empty.
    #[must_use]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, saturating at zero.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales the duration by a non-negative float factor, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or NaN.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(
            factor >= 0.0,
            "duration scale factor must be non-negative, got {factor}"
        );
        SimDuration((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_nanos(1).as_nanos(), 1);
    }

    #[test]
    fn time_and_duration_arithmetic_round_trips() {
        let t = SimTime::from_nanos(500);
        let d = SimDuration::from_nanos(200);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_nanos(10));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
    }

    #[test]
    #[should_panic(expected = "subtracting a later SimTime")]
    fn sub_earlier_from_later_panics() {
        let _ = SimTime::from_nanos(1) - SimTime::from_nanos(2);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(
            SimDuration::from_nanos(10).mul_f64(1.26),
            SimDuration::from_nanos(13)
        );
        assert_eq!(SimDuration::from_nanos(10).mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn mul_f64_rejects_negative() {
        let _ = SimDuration::from_nanos(10).mul_f64(-1.0);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-4.0), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(SimDuration::from_nanos(7).to_string(), "7ns");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7.000us");
        assert_eq!(SimDuration::from_millis(7).to_string(), "7.000ms");
        assert_eq!(SimDuration::from_secs(7).to_string(), "7.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total, SimDuration::from_nanos(6));
    }

    #[test]
    fn min_max_behave() {
        let a = SimDuration::from_nanos(3);
        let b = SimDuration::from_nanos(5);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn div_and_mul_by_scalar() {
        let d = SimDuration::from_nanos(100);
        assert_eq!(d * 3, SimDuration::from_nanos(300));
        assert_eq!(d / 4, SimDuration::from_nanos(25));
    }
}
