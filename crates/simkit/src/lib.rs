//! # scalesim-simkit
//!
//! The deterministic discrete-event foundation of the `scalesim` workspace.
//!
//! Everything in the simulated JVM — mutator threads, the OS scheduler,
//! monitors, the garbage collector — is driven by one [`EventQueue`] whose
//! clock is a [`SimTime`] in nanoseconds. Determinism is load-bearing:
//! a whole experiment is a pure function of its configuration and a master
//! seed, with per-entity random streams provided by [`RngFactory`] so that
//! changing one parameter does not perturb unrelated entities.
//!
//! ## Example
//!
//! ```
//! use scalesim_simkit::{EventQueue, RngFactory, SimDuration};
//! use rand::Rng;
//!
//! #[derive(Debug, PartialEq)]
//! enum Ev { Tick(u32) }
//!
//! let rngs = RngFactory::new(1);
//! let mut rng = rngs.stream("ticker", 0);
//! let mut q = EventQueue::new();
//! for i in 0..3 {
//!     q.schedule_after(SimDuration::from_nanos(rng.gen_range(1..100)), Ev::Tick(i));
//! }
//! let mut fired = 0;
//! while let Some((_t, Ev::Tick(_))) = q.pop() {
//!     fired += 1;
//! }
//! assert_eq!(fired, 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod baseline;
mod cancel;
pub mod chaos;
mod queue;
mod rng;
mod time;

pub use cancel::CancelToken;
pub use chaos::{AbortReason, ChaosConfig, ChaosPlan, FaultClass, RunBudget};
pub use queue::{EventId, EventQueue};
pub use rng::{splitmix64, RngFactory};
pub use time::{SimDuration, SimTime};
