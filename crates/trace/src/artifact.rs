//! Crash-safe artifact writes.
//!
//! Every machine-readable artifact the workspace emits (run manifests,
//! Chrome traces, benchmark reports, checkpoint segments) must never be
//! observable half-written: a killed process that leaves a truncated
//! `manifest.jsonl` would make `trace_check` — and a resumed sweep — fail
//! on an artifact the harness itself produced. [`write_atomic`] funnels
//! all of them through the classic write-to-temp-then-rename protocol.

use std::io;
use std::path::Path;

/// Writes `contents` to `path` atomically.
///
/// The bytes land in a hidden sibling temp file first
/// (`.<name>.tmp-<pid>`, same directory so the rename cannot cross a
/// filesystem), then replace `path` in one `rename` step. Readers
/// therefore see either the previous artifact or the complete new one,
/// never a torn mix. Parent directories are created as needed.
///
/// # Errors
///
/// Propagates the first I/O failure; on error the temp file is removed
/// on a best-effort basis and `path` is left untouched.
pub fn write_atomic(path: &Path, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(name);
    tmp_name.push(format!(".tmp-{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scalesim-artifact-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces_without_leftover_temp() {
        let dir = scratch("basic");
        let path = dir.join("nested").join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries, vec![std::ffi::OsString::from("out.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_path_without_file_name() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }
}
