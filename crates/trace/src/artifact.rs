//! Crash-safe artifact writes.
//!
//! Every machine-readable artifact the workspace emits (run manifests,
//! Chrome traces, benchmark reports, checkpoint segments) must never be
//! observable half-written: a killed process that leaves a truncated
//! `manifest.jsonl` would make `trace_check` — and a resumed sweep — fail
//! on an artifact the harness itself produced. [`write_atomic`] funnels
//! all of them through the classic write-to-temp-then-rename protocol,
//! with both the file contents and the directory entry fsynced — rename
//! alone survives a process crash but not a host crash, where a
//! renamed-but-unsynced entry can come back pointing at garbage (or
//! nothing).

use std::io::{self, Write};
use std::path::Path;

/// Fsyncs a directory so a rename performed inside it is durable across
/// a host crash, not just a process crash. (On Linux, directories are
/// opened read-only and fsynced like any other file descriptor.)
///
/// # Errors
///
/// Propagates open/fsync failures.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Writes `contents` to `path` atomically and durably.
///
/// The bytes land in a hidden sibling temp file first
/// (`.<name>.tmp-<pid>`, same directory so the rename cannot cross a
/// filesystem), are fsynced, then replace `path` in one `rename` step,
/// and the parent directory is fsynced so the rename itself survives a
/// host crash. Readers therefore see either the previous artifact or
/// the complete new one, never a torn mix — even across power loss.
/// Parent directories are created as needed.
///
/// # Errors
///
/// Propagates the first I/O failure; on error the temp file is removed
/// on a best-effort basis and `path` is left untouched.
pub fn write_atomic(path: &Path, contents: impl AsRef<[u8]>) -> io::Result<()> {
    let name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        std::fs::create_dir_all(dir)?;
    }
    let mut tmp_name = std::ffi::OsString::from(".");
    tmp_name.push(name);
    tmp_name.push(format!(".tmp-{}", std::process::id()));
    let tmp = path.with_file_name(tmp_name);
    let write_synced = |bytes: &[u8]| -> io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()
    };
    write_synced(contents.as_ref()).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })?;
    sync_dir(dir.unwrap_or_else(|| Path::new(".")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scalesim-artifact-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn writes_and_replaces_without_leftover_temp() {
        let dir = scratch("basic");
        let path = dir.join("nested").join("out.json");
        write_atomic(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        write_atomic(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        let entries: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries, vec![std::ffi::OsString::from("out.json")]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_path_without_file_name() {
        assert!(write_atomic(Path::new("/"), "x").is_err());
    }
}
