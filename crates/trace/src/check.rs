//! Std-only JSON parsing for CI validation of exported artifacts.
//!
//! The container builds fully offline, so there is no `jq`/`python`
//! guarantee in CI. This module carries a minimal, strict JSON parser —
//! order-preserving objects, no number cleverness — plus validators for
//! the two machine-readable artifacts this workspace emits: Chrome
//! trace-event exports ([`validate_chrome_trace`]) and run-manifest JSONL
//! lines ([`validate_manifest_line`]).

use std::collections::BTreeMap;

/// A parsed JSON value. Object keys keep their textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("json byte {}: {}", self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.error(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(JsonValue::Obj(pairs)),
                _ => {
                    return Err(self.error("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => {
                    return Err(self.error("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| self.error("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.error("bad \\u escape"))?;
                        self.pos += 4;
                        // Surrogates are not paired here; the exporter
                        // never emits them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.error("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.error("raw control byte in string")),
                Some(b) => {
                    // Re-assemble multi-byte UTF-8 by copying raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| self.error("invalid UTF-8 in string"))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        raw.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.error(&format!("bad number `{raw}`")))
    }
}

/// Parses one JSON document; trailing garbage is an error.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first problem.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing data after document"));
    }
    Ok(value)
}

/// Summary of a validated Chrome trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCheck {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete spans (`ph:"X"`).
    pub spans: usize,
    /// Instant markers (`ph:"I"`).
    pub instants: usize,
    /// Counter samples (`ph:"C"`).
    pub counters: usize,
    /// Metadata records (`ph:"M"`).
    pub metadata: usize,
    /// Distinct span/instant names seen, for coverage assertions.
    pub names: usize,
}

/// Parses and structurally validates a Chrome trace-event export.
///
/// Every entry of `traceEvents` must be an object carrying a string `ph`
/// and numeric `pid`/`tid`; non-metadata entries must also carry a
/// numeric `ts`, and spans a numeric `dur`.
///
/// # Errors
///
/// Returns a description of the first malformed entry (or a JSON syntax
/// error from [`parse_json`]).
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = parse_json(text)?;
    let events = doc.get("traceEvents").ok_or("missing traceEvents")?.clone();
    let JsonValue::Arr(items) = events else {
        return Err("traceEvents is not an array".to_owned());
    };
    let mut check = TraceCheck {
        events: items.len(),
        ..TraceCheck::default()
    };
    let mut names: BTreeMap<String, usize> = BTreeMap::new();
    for (i, item) in items.iter().enumerate() {
        let ph = item
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing string `ph`"))?;
        for key in ["pid", "tid"] {
            if item.get(key).and_then(JsonValue::as_num).is_none() {
                return Err(format!("event {i}: missing numeric `{key}`"));
            }
        }
        if ph != "M" {
            if item.get("ts").and_then(JsonValue::as_num).is_none() {
                return Err(format!("event {i}: missing numeric `ts`"));
            }
            if let Some(name) = item.get("name").and_then(JsonValue::as_str) {
                *names.entry(name.to_owned()).or_insert(0) += 1;
            }
        }
        match ph {
            "X" => {
                if item.get("dur").and_then(JsonValue::as_num).is_none() {
                    return Err(format!("event {i}: span missing numeric `dur`"));
                }
                check.spans += 1;
            }
            "I" => check.instants += 1,
            "C" => check.counters += 1,
            "M" => check.metadata += 1,
            other => return Err(format!("event {i}: unexpected ph `{other}`")),
        }
    }
    check.names = names.len();
    Ok(check)
}

/// Keys every run-manifest JSONL line must carry.
pub const MANIFEST_REQUIRED_KEYS: [&str; 6] =
    ["app", "threads", "seed", "outcome", "host_ns", "memo"];

/// Validates one run-manifest JSONL line.
///
/// # Errors
///
/// Returns a description of the first missing key or a JSON syntax error.
pub fn validate_manifest_line(line: &str) -> Result<(), String> {
    let doc = parse_json(line)?;
    if !matches!(doc, JsonValue::Obj(_)) {
        return Err("manifest line is not an object".to_owned());
    }
    for key in MANIFEST_REQUIRED_KEYS {
        if doc.get(key).is_none() {
            return Err(format!("manifest line missing `{key}`"));
        }
    }
    Ok(())
}

/// Summary of a validated `analytics.json` artifact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AnalyticsCheck {
    /// Workload entries in the artifact.
    pub workloads: usize,
    /// Whether the artifact says every workload matched the paper's
    /// scalable / non-scalable split.
    pub all_match_paper: bool,
    /// The embedded 16-hex-digit fingerprint.
    pub fingerprint: String,
    /// `(app, class)` per workload, in artifact order — CI smokes
    /// assert classification stability against these.
    pub classes: Vec<(String, String)>,
}

/// Parses and structurally validates an `analytics.json` artifact.
///
/// Checks the schema version, the fingerprint shape, and that every
/// workload entry carries its classification, USL parameters
/// (sigma/kappa plus the predicted collapse point), time-attribution
/// breakdown, and hold/wait percentile blocks.
///
/// # Errors
///
/// Returns a description of the first structural problem (or a JSON
/// syntax error from [`parse_json`]).
pub fn validate_analytics(text: &str) -> Result<AnalyticsCheck, String> {
    let doc = parse_json(text.trim_end())?;
    if !matches!(doc, JsonValue::Obj(_)) {
        return Err("analytics artifact is not an object".to_owned());
    }
    if doc.get("v").and_then(JsonValue::as_num) != Some(1.0) {
        return Err("analytics artifact missing schema version `v` = 1".to_owned());
    }
    let fingerprint = doc
        .get("fingerprint")
        .and_then(JsonValue::as_str)
        .ok_or("missing string `fingerprint`")?;
    if fingerprint.len() != 16 || !fingerprint.bytes().all(|b| b.is_ascii_hexdigit()) {
        return Err(format!("malformed fingerprint `{fingerprint}`"));
    }
    let all_match_paper = match doc.get("all_match_paper") {
        Some(JsonValue::Bool(b)) => *b,
        _ => return Err("missing boolean `all_match_paper`".to_owned()),
    };
    let Some(JsonValue::Arr(entries)) = doc.get("workloads") else {
        return Err("missing array `workloads`".to_owned());
    };
    let mut classes = Vec::new();
    for (i, w) in entries.iter().enumerate() {
        let app = w
            .get("app")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("workload {i}: missing string `app`"))?;
        let class = w
            .get("class")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("workload {i}: missing string `class`"))?;
        for key in [
            "expected",
            "points",
            "usl",
            "attribution",
            "hold_ns",
            "wait_ns",
        ] {
            if w.get(key).is_none() {
                return Err(format!("workload {i} ({app}): missing `{key}`"));
            }
        }
        if class != "unclassified" {
            for key in ["sigma", "kappa", "collapse_point"] {
                if w.get("usl").and_then(|u| u.get(key)).is_none() {
                    return Err(format!("workload {i} ({app}): usl missing `{key}`"));
                }
            }
        }
        for block in ["hold_ns", "wait_ns"] {
            for key in ["count", "p50", "p95", "p99", "p999"] {
                if w.get(block)
                    .and_then(|b| b.get(key))
                    .and_then(JsonValue::as_num)
                    .is_none()
                {
                    return Err(format!(
                        "workload {i} ({app}): {block} missing numeric `{key}`"
                    ));
                }
            }
        }
        classes.push((app.to_owned(), class.to_owned()));
    }
    Ok(AnalyticsCheck {
        workloads: entries.len(),
        all_match_paper,
        fingerprint: fingerprint.to_owned(),
        classes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse_json(r#"{"a":[1,-2.5,true,null,"x\n"],"b":{"c":"d"}}"#).unwrap();
        assert_eq!(
            doc.get("a").unwrap(),
            &JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(-2.5),
                JsonValue::Bool(true),
                JsonValue::Null,
                JsonValue::Str("x\n".to_owned()),
            ])
        );
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{").is_err());
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\" 1}").is_err());
        assert!(parse_json("123 45").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn unicode_and_escapes_decode() {
        let doc = parse_json(r#""café — ok""#).unwrap();
        assert_eq!(doc.as_str(), Some("café — ok"));
    }

    #[test]
    fn validates_a_real_export() {
        let mut tl = crate::Timeline::with_capacity(8);
        tl.span(
            crate::EventKind::GcMinor,
            0,
            scalesim_simkit::SimTime::from_nanos(5),
            scalesim_simkit::SimTime::from_nanos(10),
            1,
        );
        tl.instant(
            crate::EventKind::ChaosGcStall,
            0,
            scalesim_simkit::SimTime::from_nanos(7),
            2,
        );
        let check = validate_chrome_trace(&crate::to_chrome_json(&tl)).unwrap();
        assert_eq!(check.spans, 1);
        assert_eq!(check.instants, 1);
        assert!(check.metadata >= 2);
        assert_eq!(check.names, 2);
    }

    #[test]
    fn rejects_events_without_required_fields() {
        let bad = r#"{"traceEvents":[{"ph":"X","pid":1}]}"#;
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("tid"), "{err}");
        let bad_ts = r#"{"traceEvents":[{"ph":"I","pid":1,"tid":0}]}"#;
        assert!(validate_chrome_trace(bad_ts).unwrap_err().contains("ts"));
    }

    #[test]
    fn analytics_artifacts_validate() {
        let good = r#"{"v":1,"seed":42,"threads":[4,8],"workloads":[
            {"app":"sunflow","expected":"scalable","class":"scalable",
             "points":[[4,"100.0"]],
             "usl":{"lambda":"1.0","sigma":"0.1","kappa":"0.001",
                    "peak_concurrency":"30.0","collapse_point":"900.0",
                    "rms_residual":"0.0"},
             "attribution":{"threads":8,"running_ns":1,"wall_ns":2},
             "hold_ns":{"count":1,"p50":1,"p95":3,"p99":3,"p999":3},
             "wait_ns":{"count":0,"p50":0,"p95":0,"p99":0,"p999":0},
             "matches_paper":true}],
            "all_match_paper":true,"fingerprint":"0123456789abcdef"}"#;
        let check = validate_analytics(good).unwrap();
        assert_eq!(check.workloads, 1);
        assert!(check.all_match_paper);
        assert_eq!(check.fingerprint, "0123456789abcdef");
        assert_eq!(
            check.classes,
            vec![("sunflow".to_owned(), "scalable".to_owned())]
        );

        assert!(validate_analytics("[]").is_err());
        assert!(validate_analytics(r#"{"v":2}"#)
            .unwrap_err()
            .contains("schema"));
        let bad_fp = good.replace("0123456789abcdef", "zz");
        assert!(validate_analytics(&bad_fp)
            .unwrap_err()
            .contains("fingerprint"));
        let no_usl_key = good.replace("\"sigma\":\"0.1\",", "");
        assert!(validate_analytics(&no_usl_key)
            .unwrap_err()
            .contains("sigma"));
        let no_pct = good.replace("\"p95\":3,", "");
        assert!(validate_analytics(&no_pct).unwrap_err().contains("p95"));
    }

    #[test]
    fn manifest_lines_validate() {
        let good =
            r#"{"app":"xalan","threads":4,"seed":42,"outcome":"ok","host_ns":5,"memo":"miss"}"#;
        assert!(validate_manifest_line(good).is_ok());
        let missing = r#"{"app":"xalan","threads":4}"#;
        assert!(validate_manifest_line(missing)
            .unwrap_err()
            .contains("seed"));
        assert!(validate_manifest_line("[]").is_err());
    }
}
