//! The timeline event model: what a recorder can say and how it maps onto
//! the Chrome trace-event `pid`/`tid`/`ph` coordinate system.

use scalesim_simkit::{SimDuration, SimTime};

/// Which Chrome trace-event *phase* an [`EventKind`] renders as.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span (`ph = "X"`): has a duration.
    Span,
    /// An instant marker (`ph = "I"`): a point in time.
    Instant,
    /// A counter sample (`ph = "C"`): a point on a value track.
    CounterSample,
}

/// The process row a track belongs to in the exported trace.
///
/// Chrome/Perfetto group tracks by `pid`; scalesim uses one synthetic
/// process per subsystem so thread states, monitors and GC phases land in
/// separate collapsible groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Process {
    /// Mutator/helper thread state spans (`tid` = thread index).
    Threads,
    /// Monitor wait/hold spans (`tid` = monitor index).
    Monitors,
    /// GC phase spans and heap-pressure counters (`tid` = region).
    Gc,
    /// Runtime-level instants: chaos injections (`tid` = 0).
    Runtime,
    /// Server request-lifecycle instants: sheds, retries, timeouts
    /// (`tid` = request class index).
    Server,
}

impl Process {
    /// The synthetic `pid` used in the Chrome export.
    #[must_use]
    pub const fn pid(self) -> u32 {
        match self {
            Process::Threads => 1,
            Process::Monitors => 2,
            Process::Gc => 3,
            Process::Runtime => 4,
            Process::Server => 5,
        }
    }

    /// Human-readable process name for the export's metadata events.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Process::Threads => "threads",
            Process::Monitors => "monitors",
            Process::Gc => "gc",
            Process::Runtime => "runtime",
            Process::Server => "server",
        }
    }
}

/// Everything a [`TimelineEvent`](crate::TimelineEvent) can record.
///
/// The `arg` field of the event is kind-specific and documented per
/// variant; `track` is the row within the kind's [`Process`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Thread span: on a core, executing mutator work. `arg` unused.
    ThreadRunning,
    /// Thread span: runnable, waiting for a core. `arg` unused.
    ThreadRunnable,
    /// Thread span: blocked on a monitor queue. `arg` unused.
    ThreadBlockedMonitor,
    /// Thread span: blocked with no work available. `arg` unused.
    ThreadBlockedStarved,
    /// Thread span: sleeping. `arg` unused.
    ThreadBlockedSleep,
    /// Thread span: suspended at a stop-the-world safepoint. `arg` unused.
    ThreadSafepoint,
    /// Monitor span: held from acquisition to release. `arg` = owning
    /// thread index (owner attribution).
    MonitorHold,
    /// Monitor span: a thread queued waiting for the monitor. `arg` = the
    /// waiting thread's index.
    MonitorWait,
    /// Monitor instant: a thread joined the monitor's wait queue. `arg` =
    /// the enqueued thread's index. Paired with a closing [`MonitorWait`]
    /// span by the audit pass; an enqueue without a close is a dangling
    /// wait.
    ///
    /// [`MonitorWait`]: EventKind::MonitorWait
    MonitorEnqueue,
    /// GC span: stop-the-world minor (nursery) collection. `arg` = bytes
    /// collected.
    GcMinor,
    /// GC span: per-heaplet local minor collection. `arg` = bytes
    /// collected.
    GcLocalMinor,
    /// GC span: stop-the-world full collection. `arg` = bytes collected.
    GcFull,
    /// GC span: concurrent old-gen cycle, initial-mark pause. `arg` =
    /// bytes under trace.
    GcConcMark,
    /// GC span: concurrent old-gen cycle, background marking work running
    /// alongside the mutators. `arg` unused.
    GcConcWork,
    /// GC span: concurrent old-gen cycle, remark pause. `arg` = bytes
    /// collected.
    GcConcRemark,
    /// Chaos instant: a monitor-release wakeup was dropped. `arg` = the
    /// thread whose wakeup was lost.
    ChaosDropWakeup,
    /// Chaos instant: a blocked thread was woken without the lock. `arg` =
    /// the spuriously-woken thread.
    ChaosSpuriousWakeup,
    /// Chaos instant: a GC pause was inflated by a stalled worker. `arg` =
    /// extra pause nanoseconds.
    ChaosGcStall,
    /// Chaos instant: an admitted server request was silently dropped.
    /// `arg` = the dropped request's id.
    ChaosRequestDrop,
    /// Server instant: a request attempt was shed at the door. `arg` =
    /// the request's id.
    ReqShed,
    /// Server instant: a client issued a retry after a timeout or shed.
    /// `arg` = the request's id.
    ReqRetry,
    /// Server instant: a client-side timeout fired before completion.
    /// `arg` = the request's id.
    ReqTimeout,
    /// Counter sample: heap bytes in use in a region (allocation
    /// pressure). `arg` = bytes.
    HeapUsed,
}

impl EventKind {
    /// Every kind, in export/declaration order.
    pub const ALL: [EventKind; 23] = [
        EventKind::ThreadRunning,
        EventKind::ThreadRunnable,
        EventKind::ThreadBlockedMonitor,
        EventKind::ThreadBlockedStarved,
        EventKind::ThreadBlockedSleep,
        EventKind::ThreadSafepoint,
        EventKind::MonitorHold,
        EventKind::MonitorWait,
        EventKind::MonitorEnqueue,
        EventKind::GcMinor,
        EventKind::GcLocalMinor,
        EventKind::GcFull,
        EventKind::GcConcMark,
        EventKind::GcConcWork,
        EventKind::GcConcRemark,
        EventKind::ChaosDropWakeup,
        EventKind::ChaosSpuriousWakeup,
        EventKind::ChaosGcStall,
        EventKind::ChaosRequestDrop,
        EventKind::ReqShed,
        EventKind::ReqRetry,
        EventKind::ReqTimeout,
        EventKind::HeapUsed,
    ];

    /// The Chrome trace-event phase this kind renders as.
    #[must_use]
    pub const fn phase(self) -> Phase {
        match self {
            EventKind::ThreadRunning
            | EventKind::ThreadRunnable
            | EventKind::ThreadBlockedMonitor
            | EventKind::ThreadBlockedStarved
            | EventKind::ThreadBlockedSleep
            | EventKind::ThreadSafepoint
            | EventKind::MonitorHold
            | EventKind::MonitorWait
            | EventKind::GcMinor
            | EventKind::GcLocalMinor
            | EventKind::GcFull
            | EventKind::GcConcMark
            | EventKind::GcConcWork
            | EventKind::GcConcRemark => Phase::Span,
            EventKind::MonitorEnqueue
            | EventKind::ChaosDropWakeup
            | EventKind::ChaosSpuriousWakeup
            | EventKind::ChaosGcStall
            | EventKind::ChaosRequestDrop
            | EventKind::ReqShed
            | EventKind::ReqRetry
            | EventKind::ReqTimeout => Phase::Instant,
            EventKind::HeapUsed => Phase::CounterSample,
        }
    }

    /// The process group this kind's tracks belong to.
    #[must_use]
    pub const fn process(self) -> Process {
        match self {
            EventKind::ThreadRunning
            | EventKind::ThreadRunnable
            | EventKind::ThreadBlockedMonitor
            | EventKind::ThreadBlockedStarved
            | EventKind::ThreadBlockedSleep
            | EventKind::ThreadSafepoint => Process::Threads,
            EventKind::MonitorHold | EventKind::MonitorWait | EventKind::MonitorEnqueue => {
                Process::Monitors
            }
            EventKind::GcMinor
            | EventKind::GcLocalMinor
            | EventKind::GcFull
            | EventKind::GcConcMark
            | EventKind::GcConcWork
            | EventKind::GcConcRemark
            | EventKind::HeapUsed => Process::Gc,
            EventKind::ChaosDropWakeup
            | EventKind::ChaosSpuriousWakeup
            | EventKind::ChaosGcStall
            | EventKind::ChaosRequestDrop => Process::Runtime,
            EventKind::ReqShed | EventKind::ReqRetry | EventKind::ReqTimeout => Process::Server,
        }
    }

    /// Stable event name, used in both the Chrome and text exports.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            EventKind::ThreadRunning => "running",
            EventKind::ThreadRunnable => "runnable",
            EventKind::ThreadBlockedMonitor => "blocked-monitor",
            EventKind::ThreadBlockedStarved => "blocked-starved",
            EventKind::ThreadBlockedSleep => "blocked-sleep",
            EventKind::ThreadSafepoint => "safepoint",
            EventKind::MonitorHold => "hold",
            EventKind::MonitorWait => "wait",
            EventKind::MonitorEnqueue => "enqueue",
            EventKind::GcMinor => "minor-gc",
            EventKind::GcLocalMinor => "local-minor-gc",
            EventKind::GcFull => "full-gc",
            EventKind::GcConcMark => "conc-initial-mark",
            EventKind::GcConcWork => "conc-mark-work",
            EventKind::GcConcRemark => "conc-remark",
            EventKind::ChaosDropWakeup => "chaos:drop-wakeup",
            EventKind::ChaosSpuriousWakeup => "chaos:spurious-wakeup",
            EventKind::ChaosGcStall => "chaos:gc-stall",
            EventKind::ChaosRequestDrop => "chaos:request-drop",
            EventKind::ReqShed => "req-shed",
            EventKind::ReqRetry => "req-retry",
            EventKind::ReqTimeout => "req-timeout",
            EventKind::HeapUsed => "heap-used",
        }
    }

    /// Export category, one per kind family (Chrome's `cat` field).
    #[must_use]
    pub const fn category(self) -> &'static str {
        match self.process() {
            Process::Threads => "thread-state",
            Process::Monitors => "monitor",
            Process::Gc => match self.phase() {
                Phase::CounterSample => "heap",
                _ => "gc",
            },
            Process::Runtime => "chaos",
            Process::Server => "server",
        }
    }

    /// Inverse of [`EventKind::name`], for the text-format parser.
    #[must_use]
    pub fn from_name(name: &str) -> Option<EventKind> {
        EventKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// One recorded timeline event.
///
/// `at` is the start time (spans) or the timestamp (instants / counter
/// samples); `dur` is zero for non-spans. Events are plain `Copy` data so
/// ring-buffer retention and merging never allocate per event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// What happened.
    pub kind: EventKind,
    /// Row within the kind's process group (thread / monitor / region).
    pub track: u32,
    /// Start (spans) or timestamp (instants, counter samples).
    pub at: SimTime,
    /// Span length; [`SimDuration::ZERO`] for instants and samples.
    pub dur: SimDuration,
    /// Kind-specific argument (owner thread, bytes, sample value, …).
    pub arg: u64,
}

impl TimelineEvent {
    /// The instant the event ends (`at + dur`; equals `at` for non-spans).
    #[must_use]
    pub fn end(&self) -> SimTime {
        self.at.saturating_add(self.dur)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_for_every_kind() {
        for kind in EventKind::ALL {
            assert_eq!(EventKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn names_are_unique() {
        for (i, a) in EventKind::ALL.iter().enumerate() {
            for b in &EventKind::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn phases_partition_the_catalog() {
        let spans = EventKind::ALL
            .iter()
            .filter(|k| k.phase() == Phase::Span)
            .count();
        let instants = EventKind::ALL
            .iter()
            .filter(|k| k.phase() == Phase::Instant)
            .count();
        let samples = EventKind::ALL
            .iter()
            .filter(|k| k.phase() == Phase::CounterSample)
            .count();
        assert_eq!(spans + instants + samples, EventKind::ALL.len());
        assert!(spans > 0 && instants > 0 && samples > 0);
    }

    #[test]
    fn pids_are_distinct_per_process() {
        let pids = [
            Process::Threads.pid(),
            Process::Monitors.pid(),
            Process::Gc.pid(),
            Process::Runtime.pid(),
            Process::Server.pid(),
        ];
        for (i, a) in pids.iter().enumerate() {
            for b in &pids[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn span_end_is_start_plus_duration() {
        let ev = TimelineEvent {
            kind: EventKind::GcMinor,
            track: 0,
            at: SimTime::from_nanos(10),
            dur: SimDuration::from_nanos(5),
            arg: 0,
        };
        assert_eq!(ev.end(), SimTime::from_nanos(15));
    }
}
