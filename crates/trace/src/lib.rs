//! # scalesim-trace
//!
//! Unified observability for the simulator: deterministic timeline traces,
//! an always-on counters registry, and std-only exporters.
//!
//! The paper's contribution *is* its measurement infrastructure — DTrace
//! lock probes, Elephant-Tracks object traces, `-verbose:gc` decomposition.
//! This crate gives the simulated runtime the equivalent layer:
//!
//! * [`Timeline`] — a ring-buffered recorder of spans, instant markers and
//!   counter samples stamped in **simulated** time. Every subsystem (the
//!   scheduler, the lock table, the collector, the runtime itself) owns one
//!   recorder; the runtime merges them into a single deterministic timeline
//!   at the end of a run. Same `(config, seed)` ⇒ byte-identical trace.
//! * [`to_chrome_json`] — a Chrome trace-event / Perfetto JSON exporter
//!   (load the output at <https://ui.perfetto.dev>), plus a compact text
//!   round-trip format ([`format_timeline`] / [`parse_timeline`]) in the
//!   style of `objtrace::format_trace`.
//! * [`Counters`] — fixed-slot monotonic counters and gauges
//!   ([`CounterId`]), O(1) to increment and always on, unifying the tallies
//!   that were previously scattered across `LockReport`, `HeapStats`,
//!   `StateTimes` and sweep internals.
//! * [`check`] — a minimal std-only JSON parser used by CI to validate
//!   exported traces and run manifests without external tooling.
//! * [`write_atomic`] — the shared write-to-temp-then-rename helper every
//!   artifact goes through, so a killed process never leaves a truncated
//!   file behind.
//!
//! Recording is opt-in per run via [`TraceConfig`] (or the
//! `SCALESIM_TRACE=<path>` environment variable); when disabled every
//! recording call is a single-branch no-op so the tracing plumbing stays
//! out of the simulation hot path.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod artifact;
pub mod check;
mod chrome;
mod config;
mod counters;
mod event;
mod text;
mod timeline;

pub use artifact::{sync_dir, write_atomic};
pub use chrome::to_chrome_json;
pub use config::TraceConfig;
pub use counters::{CounterId, Counters, COUNTER_SLOTS};
pub use event::{EventKind, Phase, Process, TimelineEvent};
pub use text::{format_timeline, parse_timeline, ParseTimelineError};
pub use timeline::Timeline;
