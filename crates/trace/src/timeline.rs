//! The ring-buffered span/instant recorder.
//!
//! Each subsystem (scheduler, lock table, collector, runtime) owns one
//! [`Timeline`]; recording is a bounds-checked array write, and a disabled
//! recorder reduces every call to a single branch. At the end of a run the
//! runtime merges the per-subsystem recorders into one timeline ordered by
//! `(simulated time, subsystem rank, emission order)` — a pure function of
//! the recorded events, so equal runs merge to byte-identical traces.

use crate::event::{EventKind, Phase, TimelineEvent};
use scalesim_simkit::{SimDuration, SimTime};

/// A deterministic, bounded recorder of [`TimelineEvent`]s.
///
/// Retention is *keep-latest*: once `capacity` events are held, each new
/// event overwrites the oldest and bumps the dropped count. Chronological
/// export order is preserved across wrap-around.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline {
    enabled: bool,
    capacity: usize,
    events: Vec<TimelineEvent>,
    /// Index of the oldest retained event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl Default for Timeline {
    fn default() -> Self {
        Timeline::disabled()
    }
}

impl Timeline {
    /// A recorder that ignores every event (the tracing-off fast path).
    #[must_use]
    pub fn disabled() -> Self {
        Timeline {
            enabled: false,
            capacity: 0,
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// A live recorder retaining at most `capacity` events (min 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Timeline {
            enabled: true,
            capacity: capacity.max(1),
            events: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Whether this recorder keeps events at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Number of events currently retained.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by ring retention since recording started.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, ev: TimelineEvent) {
        if !self.enabled {
            return;
        }
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Records a complete span covering `[start, end]`.
    ///
    /// Zero-length spans are suppressed — they carry no information and a
    /// stop-the-world shift can legitimately produce them in bulk.
    pub fn span(&mut self, kind: EventKind, track: u32, start: SimTime, end: SimTime, arg: u64) {
        if !self.enabled || end <= start {
            return;
        }
        debug_assert_eq!(kind.phase(), Phase::Span, "{kind:?} is not a span kind");
        self.push(TimelineEvent {
            kind,
            track,
            at: start,
            dur: end.saturating_since(start),
            arg,
        });
    }

    /// Records an instant marker at `at`.
    pub fn instant(&mut self, kind: EventKind, track: u32, at: SimTime, arg: u64) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(
            kind.phase(),
            Phase::Instant,
            "{kind:?} is not an instant kind"
        );
        self.push(TimelineEvent {
            kind,
            track,
            at,
            dur: SimDuration::ZERO,
            arg,
        });
    }

    /// Records one point on a counter track (`arg` carries the value).
    pub fn sample(&mut self, kind: EventKind, track: u32, at: SimTime, value: u64) {
        if !self.enabled {
            return;
        }
        debug_assert_eq!(
            kind.phase(),
            Phase::CounterSample,
            "{kind:?} is not a counter kind"
        );
        self.push(TimelineEvent {
            kind,
            track,
            at,
            dur: SimDuration::ZERO,
            arg: value,
        });
    }

    /// Retained events in chronological *emission* order (ring rotation
    /// already applied).
    pub fn events(&self) -> impl Iterator<Item = &TimelineEvent> {
        let (tail, front) = self.events.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// The raw recorder state: `(enabled, capacity, events, head, dropped)`.
    ///
    /// `events` is the backing storage in *ring* order (not rotated);
    /// together with `head` this captures the recorder exactly, so a
    /// rebuild via [`Timeline::from_raw_parts`] is `Debug`-identical to
    /// the original. Ordinary consumers want [`Timeline::events`].
    #[must_use]
    pub fn raw_parts(&self) -> (bool, usize, Vec<TimelineEvent>, usize, u64) {
        (
            self.enabled,
            self.capacity,
            self.events.clone(),
            self.head,
            self.dropped,
        )
    }

    /// Rebuilds a recorder from [`Timeline::raw_parts`] output.
    ///
    /// The parts are trusted as-is; this is a persistence hook, not a
    /// public constructor for new recordings.
    #[must_use]
    pub fn from_raw_parts(
        enabled: bool,
        capacity: usize,
        events: Vec<TimelineEvent>,
        head: usize,
        dropped: u64,
    ) -> Self {
        Timeline {
            enabled,
            capacity,
            events,
            head,
            dropped,
        }
    }

    /// Merges per-subsystem recorders into one timeline.
    ///
    /// Events are ordered by `(start time, recorder rank, emission order)`
    /// — rank is the position in `parts` — which is deterministic for a
    /// deterministic simulation. The merged recorder is enabled iff any
    /// part was, holds every retained event, and accumulates the parts'
    /// dropped counts.
    #[must_use]
    pub fn merge(parts: Vec<Timeline>) -> Timeline {
        let enabled = parts.iter().any(Timeline::is_enabled);
        let dropped = parts.iter().map(Timeline::dropped).sum();
        let mut tagged: Vec<(u64, usize, TimelineEvent)> = Vec::new();
        for (rank, part) in parts.iter().enumerate() {
            tagged.extend(part.events().map(|&e| (e.at.as_nanos(), rank, e)));
        }
        // Stable sort: emission order within one recorder breaks the
        // remaining (time, rank) ties.
        tagged.sort_by_key(|&(at, rank, _)| (at, rank));
        let events: Vec<TimelineEvent> = tagged.into_iter().map(|(_, _, e)| e).collect();
        Timeline {
            enabled,
            capacity: events.len().max(1),
            events,
            head: 0,
            dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut tl = Timeline::disabled();
        tl.span(EventKind::GcMinor, 0, t(0), t(5), 1);
        tl.instant(EventKind::ChaosGcStall, 0, t(1), 2);
        tl.sample(EventKind::HeapUsed, 0, t(2), 3);
        assert!(tl.is_empty());
        assert!(!tl.is_enabled());
        assert_eq!(tl.dropped(), 0);
    }

    #[test]
    fn zero_length_spans_are_suppressed() {
        let mut tl = Timeline::with_capacity(8);
        tl.span(EventKind::ThreadRunning, 0, t(5), t(5), 0);
        assert!(tl.is_empty());
        tl.span(EventKind::ThreadRunning, 0, t(5), t(6), 0);
        assert_eq!(tl.len(), 1);
    }

    #[test]
    fn ring_keeps_the_latest_events_in_order() {
        let mut tl = Timeline::with_capacity(3);
        for i in 0..5u64 {
            tl.instant(EventKind::ChaosGcStall, 0, t(i), i);
        }
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.dropped(), 2);
        let args: Vec<u64> = tl.events().map(|e| e.arg).collect();
        assert_eq!(args, vec![2, 3, 4]);
    }

    #[test]
    fn merge_orders_by_time_then_rank_then_emission() {
        let mut a = Timeline::with_capacity(8);
        a.instant(EventKind::ChaosDropWakeup, 0, t(10), 1);
        a.instant(EventKind::ChaosDropWakeup, 0, t(10), 2);
        let mut b = Timeline::with_capacity(8);
        b.instant(EventKind::ChaosGcStall, 0, t(5), 3);
        b.instant(EventKind::ChaosGcStall, 0, t(10), 4);
        let merged = Timeline::merge(vec![a, b]);
        let args: Vec<u64> = merged.events().map(|e| e.arg).collect();
        // t=5 first; at t=10 rank 0 (a) precedes rank 1 (b), and within a
        // the emission order 1, 2 is preserved.
        assert_eq!(args, vec![3, 1, 2, 4]);
        assert!(merged.is_enabled());
    }

    #[test]
    fn raw_parts_round_trip_is_debug_identical() {
        let mut tl = Timeline::with_capacity(3);
        for i in 0..5u64 {
            tl.instant(EventKind::ChaosGcStall, 0, t(i), i);
        }
        // The ring has wrapped, so head != 0 and storage order differs
        // from emission order — the round trip must preserve both.
        let (enabled, capacity, events, head, dropped) = tl.raw_parts();
        assert_ne!(head, 0);
        let back = Timeline::from_raw_parts(enabled, capacity, events, head, dropped);
        assert_eq!(tl, back);
        assert_eq!(format!("{tl:?}"), format!("{back:?}"));
        let args: Vec<u64> = back.events().map(|e| e.arg).collect();
        assert_eq!(args, vec![2, 3, 4]);
    }

    #[test]
    fn merge_of_disabled_parts_is_disabled_and_empty() {
        let merged = Timeline::merge(vec![Timeline::disabled(), Timeline::disabled()]);
        assert!(!merged.is_enabled());
        assert!(merged.is_empty());
    }

    #[test]
    fn merge_sums_dropped_counts() {
        let mut a = Timeline::with_capacity(1);
        a.instant(EventKind::ChaosGcStall, 0, t(1), 0);
        a.instant(EventKind::ChaosGcStall, 0, t(2), 0);
        let merged = Timeline::merge(vec![a, Timeline::disabled()]);
        assert_eq!(merged.dropped(), 1);
        assert_eq!(merged.len(), 1);
    }
}
