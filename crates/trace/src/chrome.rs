//! Chrome trace-event / Perfetto JSON export.
//!
//! The output follows the Trace Event Format ("JSON Object Format"
//! flavor) and loads directly at <https://ui.perfetto.dev> or
//! `chrome://tracing`: complete spans (`ph:"X"`), instant markers
//! (`ph:"I"`), counter samples (`ph:"C"`), and `ph:"M"` metadata naming
//! the per-subsystem process groups and tracks.
//!
//! The serializer is std-only and **byte-deterministic**: timestamps are
//! simulated nanoseconds rendered as exact microsecond decimals (never
//! `f64`-formatted), objects use fixed key order, and tracks are listed in
//! sorted order — so equal timelines export to equal bytes.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::event::{Phase, Process, TimelineEvent};
use crate::timeline::Timeline;
use scalesim_simkit::{SimDuration, SimTime};

/// Renders simulated nanoseconds as the exact microsecond decimal Chrome
/// expects in `ts`/`dur`, without any float formatting.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn ts_micros(at: SimTime) -> String {
    micros(at.as_nanos())
}

fn dur_micros(dur: SimDuration) -> String {
    micros(dur.as_nanos())
}

fn track_name(process: Process, track: u32) -> String {
    match process {
        Process::Threads => format!("thread{track}"),
        Process::Monitors => format!("monitor{track}"),
        Process::Gc => format!("gc-region{track}"),
        Process::Runtime => "chaos".to_owned(),
        Process::Server => format!("class{track}"),
    }
}

fn push_event(out: &mut String, ev: &TimelineEvent) {
    let process = ev.kind.process();
    let pid = process.pid();
    let name = ev.kind.name();
    let cat = ev.kind.category();
    let ts = ts_micros(ev.at);
    match ev.kind.phase() {
        Phase::Span => {
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\
                 \"name\":\"{name}\",\"cat\":\"{cat}\",\"args\":{{\"arg\":{arg}}}}}",
                tid = ev.track,
                dur = dur_micros(ev.dur),
                arg = ev.arg,
            );
        }
        Phase::Instant => {
            let _ = write!(
                out,
                "{{\"ph\":\"I\",\"s\":\"t\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                 \"name\":\"{name}\",\"cat\":\"{cat}\",\"args\":{{\"arg\":{arg}}}}}",
                tid = ev.track,
                arg = ev.arg,
            );
        }
        Phase::CounterSample => {
            let _ = write!(
                out,
                "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\
                 \"name\":\"{name}\",\"cat\":\"{cat}\",\"args\":{{\"value\":{value}}}}}",
                tid = ev.track,
                value = ev.arg,
            );
        }
    }
}

/// Serializes a timeline as Chrome trace-event JSON.
///
/// Load the result at <https://ui.perfetto.dev>. The export is a pure
/// function of the timeline contents: the same recorded events always
/// produce the same bytes.
#[must_use]
pub fn to_chrome_json(timeline: &Timeline) -> String {
    // Collect every (process, track) pair once, sorted, for metadata.
    let mut tracks: BTreeSet<(Process, u32)> = BTreeSet::new();
    for ev in timeline.events() {
        tracks.insert((ev.kind.process(), ev.track));
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut named: BTreeSet<Process> = BTreeSet::new();
    for &(process, track) in &tracks {
        if named.insert(process) {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
                 \"args\":{{\"name\":\"{pname}\"}}}}",
                pid = process.pid(),
                pname = process.name(),
            );
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{track},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{tname}\"}}}}",
            pid = process.pid(),
            tname = track_name(process, track),
        );
    }
    for ev in timeline.events() {
        if !first {
            out.push(',');
        }
        first = false;
        push_event(&mut out, ev);
    }
    let _ = write!(
        out,
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"droppedEvents\":\"{}\"}}}}",
        timeline.dropped()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::with_capacity(16);
        tl.span(EventKind::ThreadRunning, 2, t(1_000), t(4_500), 0);
        tl.span(EventKind::MonitorHold, 0, t(2_000), t(3_000), 2);
        tl.instant(EventKind::ChaosGcStall, 0, t(2_500), 77);
        tl.sample(EventKind::HeapUsed, 0, t(3_000), 4096);
        tl
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(
            to_chrome_json(&sample_timeline()),
            to_chrome_json(&sample_timeline())
        );
    }

    #[test]
    fn export_contains_required_fields_and_exact_timestamps() {
        let json = to_chrome_json(&sample_timeline());
        for needle in [
            "\"ph\":\"X\"",
            "\"ph\":\"I\"",
            "\"ph\":\"C\"",
            "\"ph\":\"M\"",
            "\"pid\":1",
            "\"tid\":2",
            // 1000 ns = 1.000 us, 3500 ns span = 3.500 us.
            "\"ts\":1.000",
            "\"dur\":3.500",
            "\"name\":\"running\"",
            "\"name\":\"hold\"",
            "\"name\":\"chaos:gc-stall\"",
            "\"name\":\"heap-used\"",
            "\"name\":\"process_name\"",
            "\"name\":\"thread_name\"",
            "\"droppedEvents\":\"0\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn empty_timeline_exports_an_empty_event_array() {
        let json = to_chrome_json(&Timeline::disabled());
        assert!(json.starts_with("{\"traceEvents\":[]"));
    }

    #[test]
    fn micros_renders_sub_microsecond_exactly() {
        assert_eq!(micros(0), "0.000");
        assert_eq!(micros(1), "0.001");
        assert_eq!(micros(999), "0.999");
        assert_eq!(micros(13_439_563), "13439.563");
    }
}
