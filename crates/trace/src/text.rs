//! Compact line-oriented timeline format with a strict parser.
//!
//! The style mirrors `objtrace::format_trace`: one event per line, `#`
//! comments, and a parser that reports the offending line on error so a
//! timeline can round-trip through version control or hand editing.
//!
//! ```text
//! # scalesim timeline v1
//! S running 3 1000 3500 0        <- span:    kind track start-ns dur-ns arg
//! I chaos:gc-stall 0 2500 77     <- instant: kind track at-ns arg
//! C heap-used 0 3000 4096        <- sample:  kind track at-ns value
//! ```

use std::fmt;
use std::fmt::Write as _;

use crate::event::{EventKind, Phase, TimelineEvent};
use crate::timeline::Timeline;
use scalesim_simkit::{SimDuration, SimTime};

/// A parse failure, carrying the 1-based line number and a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTimelineError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseTimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "timeline line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTimelineError {}

/// Serializes a timeline in the compact text format.
///
/// The header records the dropped-event count as a comment; events follow
/// in the timeline's chronological emission order.
#[must_use]
pub fn format_timeline(timeline: &Timeline) -> String {
    let mut out = String::new();
    out.push_str("# scalesim timeline v1\n");
    let _ = writeln!(out, "# dropped={}", timeline.dropped());
    for ev in timeline.events() {
        let tag = match ev.kind.phase() {
            Phase::Span => 'S',
            Phase::Instant => 'I',
            Phase::CounterSample => 'C',
        };
        match ev.kind.phase() {
            Phase::Span => {
                let _ = writeln!(
                    out,
                    "{tag} {} {} {} {} {}",
                    ev.kind.name(),
                    ev.track,
                    ev.at.as_nanos(),
                    ev.dur.as_nanos(),
                    ev.arg
                );
            }
            Phase::Instant | Phase::CounterSample => {
                let _ = writeln!(
                    out,
                    "{tag} {} {} {} {}",
                    ev.kind.name(),
                    ev.track,
                    ev.at.as_nanos(),
                    ev.arg
                );
            }
        }
    }
    out
}

fn field<T: std::str::FromStr>(
    parts: &mut std::str::SplitWhitespace<'_>,
    what: &str,
    line: usize,
) -> Result<T, ParseTimelineError> {
    let raw = parts.next().ok_or_else(|| ParseTimelineError {
        line,
        message: format!("missing {what}"),
    })?;
    raw.parse().map_err(|_| ParseTimelineError {
        line,
        message: format!("bad {what} `{raw}`"),
    })
}

/// Parses the compact text format back into events.
///
/// Blank lines and `#` comments are ignored. The parser is strict: every
/// record must have exactly the arity of its tag, the kind name must be
/// known, and the tag must match the kind's phase (a span kind cannot
/// appear on an `I` line).
///
/// # Errors
///
/// Returns a [`ParseTimelineError`] naming the first offending line.
pub fn parse_timeline(text: &str) -> Result<Vec<TimelineEvent>, ParseTimelineError> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let tag = parts.next().expect("non-empty line has a first token");
        let expected_phase = match tag {
            "S" => Phase::Span,
            "I" => Phase::Instant,
            "C" => Phase::CounterSample,
            other => {
                return Err(ParseTimelineError {
                    line,
                    message: format!("unknown record tag `{other}`"),
                })
            }
        };
        let name = parts.next().ok_or_else(|| ParseTimelineError {
            line,
            message: "missing event kind".to_owned(),
        })?;
        let kind = EventKind::from_name(name).ok_or_else(|| ParseTimelineError {
            line,
            message: format!("unknown event kind `{name}`"),
        })?;
        if kind.phase() != expected_phase {
            return Err(ParseTimelineError {
                line,
                message: format!("kind `{name}` cannot appear on a `{tag}` record"),
            });
        }
        let track: u32 = field(&mut parts, "track", line)?;
        let at: u64 = field(&mut parts, "timestamp", line)?;
        let dur: u64 = if expected_phase == Phase::Span {
            field(&mut parts, "duration", line)?
        } else {
            0
        };
        let arg: u64 = field(&mut parts, "argument", line)?;
        if let Some(extra) = parts.next() {
            return Err(ParseTimelineError {
                line,
                message: format!("trailing field `{extra}`"),
            });
        }
        events.push(TimelineEvent {
            kind,
            track,
            at: SimTime::from_nanos(at),
            dur: SimDuration::from_nanos(dur),
            arg,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::with_capacity(16);
        tl.span(EventKind::ThreadRunning, 2, t(1_000), t(4_500), 0);
        tl.span(EventKind::MonitorWait, 1, t(2_000), t(3_000), 5);
        tl.instant(EventKind::ChaosDropWakeup, 0, t(2_500), 3);
        tl.sample(EventKind::HeapUsed, 0, t(3_000), 4096);
        tl
    }

    #[test]
    fn format_parse_round_trips() {
        let tl = sample_timeline();
        let text = format_timeline(&tl);
        let parsed = parse_timeline(&text).unwrap();
        let original: Vec<TimelineEvent> = tl.events().copied().collect();
        assert_eq!(parsed, original);
    }

    #[test]
    fn comments_and_blanks_are_ignored() {
        let parsed = parse_timeline("# header\n\n  \nI chaos:gc-stall 0 5 9\n").unwrap();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].arg, 9);
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_timeline("I chaos:gc-stall 0 5 9\nX what 0 0 0\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown record tag"));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn phase_mismatch_is_rejected() {
        let err = parse_timeline("I running 0 5 9\n").unwrap_err();
        assert!(err.message.contains("cannot appear"), "{err}");
    }

    #[test]
    fn arity_is_strict() {
        assert!(parse_timeline("S running 0 5 9\n").is_err()); // missing arg
        assert!(parse_timeline("I chaos:gc-stall 0 5 9 9\n").is_err()); // extra
        assert!(parse_timeline("C heap-used 0 notanumber 9\n").is_err());
        assert!(parse_timeline("C nope 0 5 9\n").is_err());
    }
}
