//! The always-on counters registry.
//!
//! A [`Counters`] is a fixed array of `u64` slots indexed by [`CounterId`]
//! — incrementing is one array add, cheap enough to stay on even in the
//! simulation hot path. It unifies the tallies that were previously
//! scattered across `LockReport`, `HeapStats`, `StateTimes` and the sweep
//! harness into one machine-readable catalog carried by every `RunReport`.
//!
//! Most slots are *monotonic counters* incremented live at the runtime's
//! existing hooks; a few are *gauges* ([`CounterId::is_gauge`]) set once at
//! report-assembly time from subsystem logs (GC collection counts, events
//! processed, trace-ring drops). Both kinds are deterministic functions of
//! `(config, seed)`.

use std::fmt;

/// Number of slots in a [`Counters`] registry.
pub const COUNTER_SLOTS: usize = 22;

/// A fixed slot in the counters registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterId {
    /// Objects allocated by mutators.
    Allocations,
    /// Bytes allocated by mutators.
    AllocBytes,
    /// Objects whose death was observed by the tracer hooks.
    ObjectDeaths,
    /// Monitor acquisition attempts (immediate or contended).
    LockAcquires,
    /// Monitor acquisition attempts that had to queue.
    LockContentions,
    /// Thread dispatches onto a core.
    Dispatches,
    /// Quantum-expiry preemptions.
    Preemptions,
    /// Stop-the-world pauses applied (minor, full, and concurrent-cycle
    /// initial/remark pauses all count).
    StwPauses,
    /// Invariant-monitor sweeps executed (periodic and at safepoints).
    MonitorScans,
    /// Chaos faults injected by the run's `ChaosPlan`.
    ChaosInjections,
    /// Gauge: minor collections, from the GC log.
    MinorGcs,
    /// Gauge: per-heaplet local minor collections, from the GC log.
    LocalMinorGcs,
    /// Gauge: full collections, from the GC log.
    FullGcs,
    /// Gauge: concurrent old-gen phases (initial mark + remark entries).
    ConcGcPhases,
    /// Gauge: events the engine processed.
    EventsProcessed,
    /// Gauge: timeline events evicted by ring retention.
    TimelineDropped,
    /// Server request arrivals (first attempts and retries both count).
    ReqArrivals,
    /// Server requests completed within their client's deadline (goodput).
    ReqGoodput,
    /// Server request attempts shed at the door (queue full, admission
    /// cap, deadline shed, or degraded-mode class shedding).
    ReqSheds,
    /// Server request attempts whose client-side timeout fired first.
    ReqTimeouts,
    /// Client retries issued after a timeout or shed.
    ReqRetries,
    /// Gauge: request attempts still unsettled when the run ended.
    ReqInFlight,
}

impl CounterId {
    /// Every slot, in registry order.
    pub const ALL: [CounterId; COUNTER_SLOTS] = [
        CounterId::Allocations,
        CounterId::AllocBytes,
        CounterId::ObjectDeaths,
        CounterId::LockAcquires,
        CounterId::LockContentions,
        CounterId::Dispatches,
        CounterId::Preemptions,
        CounterId::StwPauses,
        CounterId::MonitorScans,
        CounterId::ChaosInjections,
        CounterId::MinorGcs,
        CounterId::LocalMinorGcs,
        CounterId::FullGcs,
        CounterId::ConcGcPhases,
        CounterId::EventsProcessed,
        CounterId::TimelineDropped,
        CounterId::ReqArrivals,
        CounterId::ReqGoodput,
        CounterId::ReqSheds,
        CounterId::ReqTimeouts,
        CounterId::ReqRetries,
        CounterId::ReqInFlight,
    ];

    /// The slot's array index.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            CounterId::Allocations => 0,
            CounterId::AllocBytes => 1,
            CounterId::ObjectDeaths => 2,
            CounterId::LockAcquires => 3,
            CounterId::LockContentions => 4,
            CounterId::Dispatches => 5,
            CounterId::Preemptions => 6,
            CounterId::StwPauses => 7,
            CounterId::MonitorScans => 8,
            CounterId::ChaosInjections => 9,
            CounterId::MinorGcs => 10,
            CounterId::LocalMinorGcs => 11,
            CounterId::FullGcs => 12,
            CounterId::ConcGcPhases => 13,
            CounterId::EventsProcessed => 14,
            CounterId::TimelineDropped => 15,
            CounterId::ReqArrivals => 16,
            CounterId::ReqGoodput => 17,
            CounterId::ReqSheds => 18,
            CounterId::ReqTimeouts => 19,
            CounterId::ReqRetries => 20,
            CounterId::ReqInFlight => 21,
        }
    }

    /// Stable name used in manifests and debug output.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CounterId::Allocations => "allocations",
            CounterId::AllocBytes => "alloc-bytes",
            CounterId::ObjectDeaths => "object-deaths",
            CounterId::LockAcquires => "lock-acquires",
            CounterId::LockContentions => "lock-contentions",
            CounterId::Dispatches => "dispatches",
            CounterId::Preemptions => "preemptions",
            CounterId::StwPauses => "stw-pauses",
            CounterId::MonitorScans => "monitor-scans",
            CounterId::ChaosInjections => "chaos-injections",
            CounterId::MinorGcs => "minor-gcs",
            CounterId::LocalMinorGcs => "local-minor-gcs",
            CounterId::FullGcs => "full-gcs",
            CounterId::ConcGcPhases => "conc-gc-phases",
            CounterId::EventsProcessed => "events-processed",
            CounterId::TimelineDropped => "timeline-dropped",
            CounterId::ReqArrivals => "req-arrivals",
            CounterId::ReqGoodput => "req-goodput",
            CounterId::ReqSheds => "req-sheds",
            CounterId::ReqTimeouts => "req-timeouts",
            CounterId::ReqRetries => "req-retries",
            CounterId::ReqInFlight => "req-in-flight",
        }
    }

    /// True for slots set from subsystem logs at report assembly rather
    /// than incremented live.
    #[must_use]
    pub const fn is_gauge(self) -> bool {
        matches!(
            self,
            CounterId::MinorGcs
                | CounterId::LocalMinorGcs
                | CounterId::FullGcs
                | CounterId::ConcGcPhases
                | CounterId::EventsProcessed
                | CounterId::TimelineDropped
                | CounterId::ReqInFlight
        )
    }
}

/// The fixed-slot registry carried by every run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counters {
    slots: [u64; COUNTER_SLOTS],
}

impl Counters {
    /// An all-zero registry.
    #[must_use]
    pub fn new() -> Self {
        Counters::default()
    }

    /// Adds one to a slot (O(1), the hot-path operation).
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.slots[id.index()] += 1;
    }

    /// Adds `n` to a slot.
    #[inline]
    pub fn add(&mut self, id: CounterId, n: u64) {
        self.slots[id.index()] += n;
    }

    /// Overwrites a slot (gauges at report assembly).
    pub fn set(&mut self, id: CounterId, value: u64) {
        self.slots[id.index()] = value;
    }

    /// Reads a slot.
    #[must_use]
    pub fn get(&self, id: CounterId) -> u64 {
        self.slots[id.index()]
    }

    /// Iterates `(id, value)` pairs in registry order.
    pub fn iter(&self) -> impl Iterator<Item = (CounterId, u64)> + '_ {
        CounterId::ALL.iter().map(|&id| (id, self.get(id)))
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (id, value) in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{}={value}", id.name())?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_a_bijection_onto_the_slots() {
        let mut seen = [false; COUNTER_SLOTS];
        for id in CounterId::ALL {
            assert!(!seen[id.index()], "{id:?} shares an index");
            seen[id.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_are_unique() {
        for (i, a) in CounterId::ALL.iter().enumerate() {
            for b in &CounterId::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn inc_add_set_get_round_trip() {
        let mut c = Counters::new();
        c.inc(CounterId::Allocations);
        c.inc(CounterId::Allocations);
        c.add(CounterId::AllocBytes, 128);
        c.set(CounterId::EventsProcessed, 7);
        assert_eq!(c.get(CounterId::Allocations), 2);
        assert_eq!(c.get(CounterId::AllocBytes), 128);
        assert_eq!(c.get(CounterId::EventsProcessed), 7);
        assert_eq!(c.get(CounterId::FullGcs), 0);
    }

    #[test]
    fn display_lists_every_slot_once() {
        let text = Counters::new().to_string();
        for id in CounterId::ALL {
            assert!(
                text.contains(&format!("{}=0", id.name())),
                "missing {}",
                id.name()
            );
        }
        assert_eq!(text.split(' ').count(), COUNTER_SLOTS);
    }
}
