//! Per-run tracing configuration.

use crate::timeline::Timeline;

/// Default ring capacity per subsystem recorder (events).
///
/// Four recorders (scheduler, locks, GC, runtime) at this size bound a
/// fully-traced run to a few hundred MB of `Copy` events in the worst
/// case while keeping every event of the paper-scale runs the examples
/// and tests trace.
pub const DEFAULT_RING_CAPACITY: usize = 1 << 20;

/// Whether and how a run records a timeline trace.
///
/// Part of `JvmConfig`, so the trace settings participate in run identity
/// the same way the chaos plan and budget do. Tracing is observational
/// only: enabling it never changes simulation behavior, and the same
/// `(config, seed)` yields a byte-identical trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceConfig {
    /// Record a timeline during the run.
    pub enabled: bool,
    /// Ring-buffer capacity per subsystem recorder (keep-latest).
    pub capacity: usize,
    /// If set, the runtime writes the Chrome trace-event JSON export here
    /// at the end of the run (the `SCALESIM_TRACE=<path>` contract; with
    /// several runs in one process, the last run wins).
    pub path: Option<String>,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::off()
    }
}

impl TraceConfig {
    /// Tracing disabled (the default; recording calls become no-ops).
    #[must_use]
    pub fn off() -> Self {
        TraceConfig {
            enabled: false,
            capacity: DEFAULT_RING_CAPACITY,
            path: None,
        }
    }

    /// Tracing enabled with the default ring capacity and no export path.
    #[must_use]
    pub fn on() -> Self {
        TraceConfig {
            enabled: true,
            capacity: DEFAULT_RING_CAPACITY,
            path: None,
        }
    }

    /// Sets the per-recorder ring capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity.max(1);
        self
    }

    /// Enables tracing and writes the Chrome export to `path` after the
    /// run.
    #[must_use]
    pub fn with_path(mut self, path: impl Into<String>) -> Self {
        self.enabled = true;
        self.path = Some(path.into());
        self
    }

    /// Builds the config from the environment.
    ///
    /// `SCALESIM_TRACE=<path>` enables tracing and exports to `<path>`
    /// (`0` / `off` / empty keep it disabled); `SCALESIM_TRACE_EVENTS=<n>`
    /// overrides the ring capacity.
    #[must_use]
    pub fn from_env() -> Self {
        let mut cfg = TraceConfig::off();
        if let Ok(path) = std::env::var("SCALESIM_TRACE") {
            let trimmed = path.trim();
            if !trimmed.is_empty() && trimmed != "0" && trimmed != "off" {
                cfg = cfg.with_path(trimmed);
            }
        }
        if let Some(n) = std::env::var("SCALESIM_TRACE_EVENTS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cfg = cfg.with_capacity(n);
        }
        cfg
    }

    /// A fresh recorder honoring this config, for one subsystem.
    #[must_use]
    pub fn recorder(&self) -> Timeline {
        if self.enabled {
            Timeline::with_capacity(self.capacity)
        } else {
            Timeline::disabled()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_off_with_sane_capacity() {
        let cfg = TraceConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.capacity, DEFAULT_RING_CAPACITY);
        assert!(cfg.path.is_none());
        assert!(!cfg.recorder().is_enabled());
    }

    #[test]
    fn with_path_enables() {
        let cfg = TraceConfig::off().with_path("/tmp/t.json");
        assert!(cfg.enabled);
        assert_eq!(cfg.path.as_deref(), Some("/tmp/t.json"));
        assert!(cfg.recorder().is_enabled());
    }

    #[test]
    fn capacity_is_clamped_to_one() {
        assert_eq!(TraceConfig::on().with_capacity(0).capacity, 1);
    }
}
