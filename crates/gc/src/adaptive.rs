//! Adaptive nursery sizing — HotSpot's `AdaptiveSizePolicy`.
//!
//! The paper's collector is the throughput-oriented parallel collector,
//! which by default resizes the young generation to balance a *pause
//! goal* against throughput: pauses above the goal shrink the nursery
//! (smaller survivor sets per collection), comfortable pauses grow it
//! back (fewer collections). [`AdaptiveSizer`] reproduces that feedback
//! loop; the `ext-ergo` extension experiment evaluates it.

use scalesim_simkit::SimDuration;

/// Feedback controller for one nursery region's capacity.
///
/// # Examples
///
/// ```
/// use scalesim_gc::AdaptiveSizer;
/// use scalesim_simkit::SimDuration;
///
/// let sizer = AdaptiveSizer::new(SimDuration::from_millis(1));
/// // a 3 ms pause against a 1 ms goal (no floor) shrinks the nursery
/// let next = sizer.next_capacity(8 << 20, SimDuration::from_millis(3), SimDuration::ZERO);
/// assert!(next < 8 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveSizer {
    pause_goal: SimDuration,
    shrink_factor: f64,
    grow_factor: f64,
}

impl AdaptiveSizer {
    /// Creates a sizer with HotSpot-like adjustment factors (shrink to
    /// 80 % on overshoot, grow by 20 % when pauses sit below half the
    /// goal).
    ///
    /// # Panics
    ///
    /// Panics if `pause_goal` is zero.
    #[must_use]
    pub fn new(pause_goal: SimDuration) -> Self {
        assert!(!pause_goal.is_zero(), "pause goal must be positive");
        AdaptiveSizer {
            pause_goal,
            shrink_factor: 0.8,
            grow_factor: 1.2,
        }
    }

    /// The configured pause goal.
    #[must_use]
    pub fn pause_goal(&self) -> SimDuration {
        self.pause_goal
    }

    /// Overrides the adjustment factors.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < shrink < 1 < grow`.
    #[must_use]
    pub fn with_factors(mut self, shrink: f64, grow: f64) -> Self {
        assert!(shrink > 0.0 && shrink < 1.0, "shrink must be in (0,1)");
        assert!(grow > 1.0, "grow must exceed 1");
        self.shrink_factor = shrink;
        self.grow_factor = grow;
        self
    }

    /// The nursery capacity to use after observing `pause` on a region of
    /// `capacity` bytes, given the collection's irreducible `floor`
    /// (fixed overhead + time-to-safepoint, from
    /// [`GcCostModel::pause_floor_ns`]).
    ///
    /// Only the copy component above the floor responds to nursery size,
    /// so the controller compares it against the goal's headroom above
    /// the same floor: shrink on overshoot, grow when comfortably under,
    /// and **hold** when the goal is unachievable (at or below the floor)
    /// rather than shrinking uselessly into a collection storm.
    ///
    /// [`GcCostModel::pause_floor_ns`]: crate::GcCostModel::pause_floor_ns
    #[must_use]
    pub fn next_capacity(&self, capacity: u64, pause: SimDuration, floor: SimDuration) -> u64 {
        let budget = self.pause_goal.saturating_sub(floor);
        if budget.is_zero() {
            return capacity; // goal unachievable: shrinking cannot help
        }
        let copy = pause.saturating_sub(floor);
        if copy > budget {
            (capacity as f64 * self.shrink_factor) as u64
        } else if copy.as_nanos() * 2 < budget.as_nanos() {
            (capacity as f64 * self.grow_factor) as u64
        } else {
            capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn overshoot_shrinks() {
        let s = AdaptiveSizer::new(ms(1));
        assert_eq!(s.next_capacity(1000, ms(2), SimDuration::ZERO), 800);
    }

    #[test]
    fn comfortable_pause_grows() {
        let s = AdaptiveSizer::new(ms(10));
        assert_eq!(s.next_capacity(1000, ms(1), SimDuration::ZERO), 1200);
    }

    #[test]
    fn near_goal_holds() {
        let s = AdaptiveSizer::new(ms(10));
        assert_eq!(s.next_capacity(1000, ms(7), SimDuration::ZERO), 1000);
        assert_eq!(s.next_capacity(1000, ms(10), SimDuration::ZERO), 1000);
    }

    #[test]
    fn unachievable_goal_holds_instead_of_storming() {
        // floor above the goal: shrinking cannot reach the goal, so the
        // sizer must not destroy throughput trying
        let s = AdaptiveSizer::new(ms(1));
        assert_eq!(s.next_capacity(1000, ms(5), ms(2)), 1000);
        assert_eq!(s.next_capacity(1000, ms(5), ms(1)), 1000);
    }

    #[test]
    fn floor_is_subtracted_from_both_sides() {
        // goal 3ms, floor 2ms -> budget 1ms; pause 3.5ms -> copy 1.5ms
        let s = AdaptiveSizer::new(ms(3));
        assert_eq!(s.next_capacity(1000, ms(3) + ms(1) / 2, ms(2)), 800);
        // copy 0.4ms < budget/2 -> grow
        assert_eq!(
            s.next_capacity(1000, ms(2) + SimDuration::from_micros(400), ms(2)),
            1200
        );
    }

    #[test]
    fn custom_factors() {
        let s = AdaptiveSizer::new(ms(1)).with_factors(0.5, 2.0);
        assert_eq!(s.next_capacity(1000, ms(5), SimDuration::ZERO), 500);
        assert_eq!(
            s.next_capacity(1000, SimDuration::from_micros(100), SimDuration::ZERO),
            2000
        );
    }

    #[test]
    #[should_panic(expected = "pause goal must be positive")]
    fn zero_goal_panics() {
        let _ = AdaptiveSizer::new(SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "shrink must be in (0,1)")]
    fn bad_shrink_panics() {
        let _ = AdaptiveSizer::new(ms(1)).with_factors(1.5, 2.0);
    }

    #[test]
    fn accessor() {
        assert_eq!(AdaptiveSizer::new(ms(3)).pause_goal(), ms(3));
    }
}
