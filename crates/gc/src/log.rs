//! The GC event log — the simulated `-verbose:gc`.

use std::fmt;
use std::fmt::Write as _;

use scalesim_metrics::Summary;
use scalesim_simkit::{SimDuration, SimTime};

/// Kind of collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GcKind {
    /// Stop-the-world copying collection of one nursery region.
    Minor,
    /// Thread-local copying collection of one heaplet (compartmentalized
    /// heap mode): only the owning thread pauses.
    LocalMinor,
    /// Mark-compact collection of the mature space.
    Full,
    /// A mostly-concurrent old-generation cycle: the recorded pause is
    /// only the stop-the-world part (initial mark + remark); marking and
    /// sweeping ran concurrently on a background thread.
    ConcurrentOld,
}

/// One stop-the-world collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GcEvent {
    /// Minor or full.
    pub kind: GcKind,
    /// When the pause began (pre-shift simulated time).
    pub at: SimTime,
    /// Pause duration.
    pub pause: SimDuration,
    /// Nursery region collected (minor only; 0 for full collections).
    pub region: usize,
    /// Bytes reclaimed.
    pub collected_bytes: u64,
    /// Bytes that survived (copied or kept live).
    pub survived_bytes: u64,
    /// Bytes promoted to the mature space (minor only).
    pub promoted_bytes: u64,
}

/// Append-only log of every collection in a run.
///
/// # Examples
///
/// ```
/// use scalesim_gc::{GcEvent, GcKind, GcLog};
/// use scalesim_simkit::{SimDuration, SimTime};
///
/// let mut log = GcLog::new();
/// log.push(GcEvent {
///     kind: GcKind::Minor, at: SimTime::ZERO, pause: SimDuration::from_millis(3),
///     region: 0, collected_bytes: 900, survived_bytes: 100, promoted_bytes: 0,
/// });
/// assert_eq!(log.collections(), 1);
/// assert_eq!(log.total_pause(), SimDuration::from_millis(3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GcLog {
    events: Vec<GcEvent>,
}

impl GcLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        GcLog::default()
    }

    /// Appends an event.
    pub fn push(&mut self, event: GcEvent) {
        self.events.push(event);
    }

    /// All events, in time order.
    #[must_use]
    pub fn events(&self) -> &[GcEvent] {
        &self.events
    }

    /// Total number of collections.
    #[must_use]
    pub fn collections(&self) -> usize {
        self.events.len()
    }

    /// Number of collections of one kind.
    #[must_use]
    pub fn count(&self, kind: GcKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Sum of all pauses (the run's **GC time** in the paper's
    /// mutator/GC decomposition).
    #[must_use]
    pub fn total_pause(&self) -> SimDuration {
        self.events.iter().map(|e| e.pause).sum()
    }

    /// Sum of pauses of one kind.
    #[must_use]
    pub fn pause_of(&self, kind: GcKind) -> SimDuration {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.pause)
            .sum()
    }

    /// Summary statistics over pause durations (seconds), or `None` when
    /// no collections ran. Use for pause percentiles in reports.
    #[must_use]
    pub fn pause_summary(&self) -> Option<Summary> {
        if self.events.is_empty() {
            return None;
        }
        let secs: Vec<f64> = self.events.iter().map(|e| e.pause.as_secs_f64()).collect();
        Some(Summary::from_samples(&secs))
    }

    /// Renders the log in a `-verbose:gc`-style text form, one line per
    /// collection:
    ///
    /// ```text
    /// [GC (Allocation Failure) region0 921600B->102400B, 0.003122s]
    /// [Full GC 1048576B->524288B, 0.010000s]
    /// ```
    #[must_use]
    pub fn to_verbose_gc(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            let before = e.survived_bytes + e.collected_bytes;
            match e.kind {
                GcKind::Minor => writeln!(
                    out,
                    "[GC (Allocation Failure) region{} {}B->{}B, {:.6}s]",
                    e.region,
                    before,
                    e.survived_bytes,
                    e.pause.as_secs_f64()
                ),
                GcKind::LocalMinor => writeln!(
                    out,
                    "[GC (Local, Allocation Failure) region{} {}B->{}B, {:.6}s]",
                    e.region,
                    before,
                    e.survived_bytes,
                    e.pause.as_secs_f64()
                ),
                GcKind::Full => writeln!(
                    out,
                    "[Full GC {}B->{}B, {:.6}s]",
                    before,
                    e.survived_bytes,
                    e.pause.as_secs_f64()
                ),
                GcKind::ConcurrentOld => writeln!(
                    out,
                    "[Concurrent old gen {}B->{}B, stw {:.6}s]",
                    before,
                    e.survived_bytes,
                    e.pause.as_secs_f64()
                ),
            }
            .expect("string write");
        }
        out
    }

    /// The longest single pause, or zero when no collections ran.
    #[must_use]
    pub fn max_pause(&self) -> SimDuration {
        self.events
            .iter()
            .map(|e| e.pause)
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Total bytes promoted to the mature generation.
    #[must_use]
    pub fn promoted_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.promoted_bytes).sum()
    }

    /// Total bytes that survived collections.
    #[must_use]
    pub fn survived_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.survived_bytes).sum()
    }

    /// Total bytes reclaimed.
    #[must_use]
    pub fn collected_bytes(&self) -> u64 {
        self.events.iter().map(|e| e.collected_bytes).sum()
    }

    /// Mean nursery survival rate across (local or global) minor
    /// collections (`survived / (survived + collected)`), or `None`
    /// without minors.
    #[must_use]
    pub fn minor_survival_rate(&self) -> Option<f64> {
        let (mut survived, mut total) = (0u64, 0u64);
        for e in self
            .events
            .iter()
            .filter(|e| matches!(e.kind, GcKind::Minor | GcKind::LocalMinor))
        {
            survived += e.survived_bytes;
            total += e.survived_bytes + e.collected_bytes;
        }
        (total > 0).then(|| survived as f64 / total as f64)
    }
}

impl fmt::Display for GcLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gc: {} minor + {} local + {} full, total pause {}",
            self.count(GcKind::Minor),
            self.count(GcKind::LocalMinor),
            self.count(GcKind::Full),
            self.total_pause()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: GcKind, pause_ms: u64, collected: u64, survived: u64, promoted: u64) -> GcEvent {
        GcEvent {
            kind,
            at: SimTime::ZERO,
            pause: SimDuration::from_millis(pause_ms),
            region: 0,
            collected_bytes: collected,
            survived_bytes: survived,
            promoted_bytes: promoted,
        }
    }

    #[test]
    fn totals_accumulate() {
        let mut log = GcLog::new();
        log.push(ev(GcKind::Minor, 2, 900, 100, 40));
        log.push(ev(GcKind::Minor, 3, 800, 200, 0));
        log.push(ev(GcKind::Full, 10, 500, 300, 0));
        assert_eq!(log.collections(), 3);
        assert_eq!(log.count(GcKind::Minor), 2);
        assert_eq!(log.count(GcKind::Full), 1);
        assert_eq!(log.total_pause(), SimDuration::from_millis(15));
        assert_eq!(log.pause_of(GcKind::Full), SimDuration::from_millis(10));
        assert_eq!(log.promoted_bytes(), 40);
        assert_eq!(log.max_pause(), SimDuration::from_millis(10));
        assert_eq!(log.collected_bytes(), 2200);
        assert_eq!(log.survived_bytes(), 600);
    }

    #[test]
    fn survival_rate_over_minors_only() {
        let mut log = GcLog::new();
        assert_eq!(log.minor_survival_rate(), None);
        log.push(ev(GcKind::Minor, 1, 900, 100, 0));
        log.push(ev(GcKind::Full, 1, 0, 12345, 0)); // ignored
        assert!((log.minor_survival_rate().unwrap() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn pause_summary_gives_percentiles() {
        let mut log = GcLog::new();
        assert!(log.pause_summary().is_none());
        for ms_n in [1u64, 2, 3, 4] {
            log.push(ev(GcKind::Minor, ms_n, 0, 0, 0));
        }
        let s = log.pause_summary().unwrap();
        assert!((s.mean() - 0.0025).abs() < 1e-9);
        assert!((s.percentile(100.0) - 0.004).abs() < 1e-12);
    }

    #[test]
    fn verbose_gc_lines_match_kinds() {
        let mut log = GcLog::new();
        log.push(ev(GcKind::Minor, 3, 900, 100, 0));
        log.push(ev(GcKind::LocalMinor, 1, 90, 10, 0));
        log.push(ev(GcKind::Full, 10, 500, 300, 0));
        let text = log.to_verbose_gc();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("[GC (Allocation Failure) region0 1000B->100B"));
        assert!(lines[1].contains("(Local"));
        assert!(lines[2].starts_with("[Full GC 800B->300B"));
    }

    #[test]
    fn display_counts_kinds() {
        let mut log = GcLog::new();
        log.push(ev(GcKind::Minor, 1, 1, 0, 0));
        assert!(log.to_string().contains("1 minor + 0 local + 0 full"));
    }
}
