//! The stop-the-world generational collector.
//!
//! [`Collector::collect_minor`] reproduces HotSpot Parallel Scavenge's
//! policy shape: live nursery objects are evacuated — kept in the region
//! while they fit the survivor space and are younger than the tenuring
//! threshold, promoted to the mature space otherwise. Promotion pressure
//! and mature occupancy can escalate into a full mark-compact collection
//! within the same pause, which is how the paper's "more full GC
//! invocations as the mature region is filled up more quickly" (§III-B)
//! materializes in the model.

use scalesim_heap::Heap;
use scalesim_simkit::{SimDuration, SimTime};
use scalesim_trace::{EventKind, Timeline};

use crate::config::GcCostModel;
use crate::log::{GcEvent, GcKind, GcLog};

/// Outcome of a thread-local heaplet collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalGcOutcome {
    /// Pause absorbed by the owning thread alone (other threads keep
    /// running).
    pub local_pause: SimDuration,
    /// Stop-the-world pause from an escalated full collection; zero when
    /// no escalation happened.
    pub stw_pause: SimDuration,
}

/// The simulated parallel collector: policy + cost model + log.
///
/// # Examples
///
/// ```
/// use scalesim_gc::{Collector, GcCostModel};
/// use scalesim_heap::{AllocResult, Heap, HeapConfig, NurseryLayout};
/// use scalesim_sched::ThreadId;
/// use scalesim_simkit::SimTime;
///
/// let mut heap = Heap::new(HeapConfig::new(3 << 20, 1.0 / 3.0, NurseryLayout::Shared));
/// let mut gc = Collector::new(GcCostModel::hotspot_like(4, 1.0));
///
/// // Fill the nursery with objects that die immediately...
/// while let AllocResult::Ok(obj) = heap.alloc(ThreadId::new(0), 4096) {
///     heap.kill(obj);
/// }
/// let pause = gc.collect_minor(&mut heap, 0, 4, SimTime::ZERO);
/// assert!(pause.as_nanos() > 0);
/// assert_eq!(heap.region_used(0), 0, "everything was dead");
/// ```
#[derive(Debug)]
pub struct Collector {
    model: GcCostModel,
    log: GcLog,
    occupancy_escalation: bool,
    /// Timeline recorder for GC phase spans (disabled by default).
    timeline: Timeline,
}

impl Collector {
    /// Creates a collector with the given cost model.
    #[must_use]
    pub fn new(model: GcCostModel) -> Self {
        Collector {
            model,
            log: GcLog::new(),
            occupancy_escalation: true,
            timeline: Timeline::disabled(),
        }
    }

    /// Installs a timeline recorder; every collection then records a phase
    /// span alongside its log event.
    pub fn set_timeline(&mut self, timeline: Timeline) {
        self.timeline = timeline;
    }

    /// Removes the recorder (leaving a disabled one) and returns it.
    pub fn take_timeline(&mut self) -> Timeline {
        std::mem::take(&mut self.timeline)
    }

    /// Disables the occupancy-triggered full-collection escalation inside
    /// minor collections. Used by the mostly-concurrent old-generation
    /// mode, where the runtime starts concurrent cycles instead;
    /// promotion-failure escalation (the "concurrent mode failure"
    /// fallback) always remains active.
    pub fn set_occupancy_escalation(&mut self, on: bool) {
        self.occupancy_escalation = on;
    }

    /// The cost model in use.
    #[must_use]
    pub fn model(&self) -> &GcCostModel {
        &self.model
    }

    /// The collection log so far.
    #[must_use]
    pub fn log(&self) -> &GcLog {
        &self.log
    }

    /// Consumes the collector, returning its log.
    #[must_use]
    pub fn into_log(self) -> GcLog {
        self.log
    }

    /// Runs a minor (copying) collection of one nursery region, stopping
    /// `mutator_threads` threads. Returns the total pause, which includes
    /// any full collection escalated into this pause.
    pub fn collect_minor(
        &mut self,
        heap: &mut Heap,
        region: usize,
        mutator_threads: usize,
        at: SimTime,
    ) -> SimDuration {
        let pre_used = heap.region_used(region);
        let survivor_cap =
            (heap.region_capacity(region) as f64 * heap.config().survivor_fraction()) as u64;
        let tenure = heap.config().tenure_threshold();

        let mut escalation = SimDuration::ZERO;
        let mut kept_bytes = 0u64;
        let mut promoted_bytes = 0u64;
        for obj in heap.nursery_live(region) {
            heap.age_survivor(obj);
            let rec = *heap.object(obj);
            let tenured = rec.age >= tenure || kept_bytes + rec.size > survivor_cap;
            if tenured {
                if heap.mature_used() + rec.size > heap.mature_capacity() {
                    // Promotion failure: escalate to a full collection
                    // within the same pause, then retry the promotion.
                    escalation += self.collect_full(heap, mutator_threads, at);
                }
                heap.promote(obj);
                promoted_bytes += rec.size;
            } else {
                kept_bytes += rec.size;
            }
        }
        heap.reset_region_to_survivors(region);

        let survived = kept_bytes + promoted_bytes;
        let pause =
            SimDuration::from_nanos(self.model.minor_pause_ns(survived, mutator_threads) as u64);
        self.log.push(GcEvent {
            kind: GcKind::Minor,
            at,
            pause,
            region,
            collected_bytes: pre_used - survived,
            survived_bytes: survived,
            promoted_bytes,
        });
        self.timeline.span(
            EventKind::GcMinor,
            region as u32,
            at,
            at.saturating_add(pause),
            pre_used - survived,
        );

        // Occupancy-triggered full collection piggybacks on the pause.
        let mut total = pause + escalation;
        if self.occupancy_escalation
            && heap.mature_used() as f64
                > self.model.full_gc_trigger * heap.mature_capacity() as f64
        {
            total += self.collect_full(heap, mutator_threads, at);
        }
        total
    }

    /// Whether mature occupancy calls for an old-generation collection.
    #[must_use]
    pub fn wants_old_gen_collection(&self, heap: &Heap) -> bool {
        heap.mature_used() as f64 > self.model.full_gc_trigger * heap.mature_capacity() as f64
    }

    /// Whether mature occupancy calls for *starting a concurrent cycle*
    /// — uses the earlier [`GcCostModel::concurrent_trigger`] threshold so
    /// the cycle finishes before promotions exhaust the headroom.
    #[must_use]
    pub fn wants_concurrent_cycle(&self, heap: &Heap) -> bool {
        heap.mature_used() as f64 > self.model.concurrent_trigger * heap.mature_capacity() as f64
    }

    /// Begins a mostly-concurrent old-generation cycle: logs the
    /// initial-mark STW pause (one [`GcKind::ConcurrentOld`] event, like
    /// a CMS-initial-mark line) and returns it together with the CPU work
    /// the background thread must perform. Call
    /// [`finish_concurrent_cycle`](Self::finish_concurrent_cycle) when
    /// that work completes. Each cycle therefore contributes *two*
    /// `ConcurrentOld` events to the log.
    #[must_use]
    pub fn begin_concurrent_cycle(
        &mut self,
        heap: &Heap,
        mutator_threads: usize,
        at: SimTime,
    ) -> (SimDuration, SimDuration) {
        let live: u64 = heap
            .mature_live()
            .iter()
            .map(|&o| heap.object(o).size)
            .sum();
        let initial =
            SimDuration::from_nanos(self.model.concurrent_initial_mark_ns(mutator_threads) as u64);
        let work = SimDuration::from_nanos(self.model.concurrent_background_ns(live) as u64);
        self.log.push(GcEvent {
            kind: GcKind::ConcurrentOld,
            at,
            pause: initial,
            region: 0,
            collected_bytes: 0,
            survived_bytes: live,
            promoted_bytes: 0,
        });
        self.timeline.span(
            EventKind::GcConcMark,
            0,
            at,
            at.saturating_add(initial),
            live,
        );
        self.timeline.span(
            EventKind::GcConcWork,
            0,
            at.saturating_add(initial),
            at.saturating_add(initial).saturating_add(work),
            live,
        );
        (initial, work)
    }

    /// Finishes a concurrent cycle: sweeps the mature space and logs the
    /// remark STW pause (the cycle's second [`GcKind::ConcurrentOld`]
    /// event, like a CMS-remark line); returns the remark pause to apply.
    pub fn finish_concurrent_cycle(
        &mut self,
        heap: &mut Heap,
        mutator_threads: usize,
        at: SimTime,
    ) -> SimDuration {
        let pre = heap.mature_used();
        let live: u64 = heap
            .mature_live()
            .iter()
            .map(|&o| heap.object(o).size)
            .sum();
        heap.compact_mature();
        let remark =
            SimDuration::from_nanos(self.model.concurrent_remark_ns(live, mutator_threads) as u64);
        self.log.push(GcEvent {
            kind: GcKind::ConcurrentOld,
            at,
            pause: remark,
            region: 0,
            collected_bytes: pre - live,
            survived_bytes: live,
            promoted_bytes: 0,
        });
        self.timeline.span(
            EventKind::GcConcRemark,
            0,
            at,
            at.saturating_add(remark),
            pre - live,
        );
        remark
    }

    /// Runs a *thread-local* collection of one heaplet (compartmentalized
    /// heap mode, paper §IV suggestion 2). The survivor policy is the same
    /// as [`collect_minor`](Self::collect_minor), but only the owning
    /// thread pauses: no safepoint rendezvous, single-threaded copying.
    /// A promotion failure or mature-occupancy trigger still escalates to
    /// a global stop-the-world full collection, reported separately.
    pub fn collect_minor_local(
        &mut self,
        heap: &mut Heap,
        region: usize,
        mutator_threads: usize,
        at: SimTime,
    ) -> LocalGcOutcome {
        let pre_used = heap.region_used(region);
        let survivor_cap =
            (heap.region_capacity(region) as f64 * heap.config().survivor_fraction()) as u64;
        let tenure = heap.config().tenure_threshold();

        let mut stw_pause = SimDuration::ZERO;
        let mut kept_bytes = 0u64;
        let mut promoted_bytes = 0u64;
        for obj in heap.nursery_live(region) {
            heap.age_survivor(obj);
            let rec = *heap.object(obj);
            let tenured = rec.age >= tenure || kept_bytes + rec.size > survivor_cap;
            if tenured {
                if heap.mature_used() + rec.size > heap.mature_capacity() {
                    stw_pause += self.collect_full(heap, mutator_threads, at);
                }
                heap.promote(obj);
                promoted_bytes += rec.size;
            } else {
                kept_bytes += rec.size;
            }
        }
        heap.reset_region_to_survivors(region);

        let survived = kept_bytes + promoted_bytes;
        let local_pause = SimDuration::from_nanos(self.model.local_minor_pause_ns(survived) as u64);
        self.log.push(GcEvent {
            kind: GcKind::LocalMinor,
            at,
            pause: local_pause,
            region,
            collected_bytes: pre_used - survived,
            survived_bytes: survived,
            promoted_bytes,
        });
        self.timeline.span(
            EventKind::GcLocalMinor,
            region as u32,
            at,
            at.saturating_add(local_pause),
            pre_used - survived,
        );

        if heap.mature_used() as f64 > self.model.full_gc_trigger * heap.mature_capacity() as f64 {
            stw_pause += self.collect_full(heap, mutator_threads, at);
        }
        LocalGcOutcome {
            local_pause,
            stw_pause,
        }
    }

    /// Runs a full mark-compact collection of the mature space. Returns
    /// the pause.
    pub fn collect_full(
        &mut self,
        heap: &mut Heap,
        mutator_threads: usize,
        at: SimTime,
    ) -> SimDuration {
        let pre = heap.mature_used();
        let live_bytes: u64 = heap
            .mature_live()
            .iter()
            .map(|&o| heap.object(o).size)
            .sum();
        heap.compact_mature();
        debug_assert_eq!(heap.mature_used(), live_bytes);

        let pause =
            SimDuration::from_nanos(self.model.full_pause_ns(live_bytes, mutator_threads) as u64);
        self.log.push(GcEvent {
            kind: GcKind::Full,
            at,
            pause,
            region: 0,
            collected_bytes: pre - live_bytes,
            survived_bytes: live_bytes,
            promoted_bytes: 0,
        });
        self.timeline.span(
            EventKind::GcFull,
            0,
            at,
            at.saturating_add(pause),
            pre - live_bytes,
        );
        pause
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_heap::{AllocResult, HeapConfig, NurseryLayout, Space};
    use scalesim_sched::ThreadId;

    fn tid(n: usize) -> ThreadId {
        ThreadId::new(n)
    }

    fn ok(r: AllocResult) -> scalesim_heap::ObjectId {
        match r {
            AllocResult::Ok(id) => id,
            AllocResult::NurseryFull { .. } => panic!("nursery full"),
        }
    }

    /// 30 KiB nursery, 60 KiB mature, survivors 10% (3 KiB), tenure at 2.
    fn heap() -> Heap {
        Heap::new(HeapConfig::new(90 << 10, 1.0 / 3.0, NurseryLayout::Shared))
    }

    fn gc() -> Collector {
        Collector::new(GcCostModel::hotspot_like(4, 1.0))
    }

    #[test]
    fn dead_objects_are_collected_live_survive() {
        let (mut h, mut c) = (heap(), gc());
        let dead = ok(h.alloc(tid(0), 1024));
        let live = ok(h.alloc(tid(0), 512));
        h.kill(dead);
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        assert!(h.is_live(live));
        assert_eq!(h.region_used(0), 512);
        let e = c.log().events()[0];
        assert_eq!(e.collected_bytes, 1024);
        assert_eq!(e.survived_bytes, 512);
        assert_eq!(e.promoted_bytes, 0);
    }

    #[test]
    fn survivors_age_and_tenure_after_threshold() {
        let (mut h, mut c) = (heap(), gc());
        let obj = ok(h.alloc(tid(0), 512));
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        assert_eq!(h.object(obj).age, 1);
        assert!(matches!(h.object(obj).space, Space::Nursery { .. }));
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        assert_eq!(h.object(obj).age, 2);
        assert_eq!(h.object(obj).space, Space::Mature, "tenured at age 2");
        assert_eq!(h.mature_used(), 512);
        assert_eq!(c.log().promoted_bytes(), 512);
    }

    #[test]
    fn survivor_overflow_promotes_directly() {
        let (mut h, mut c) = (heap(), gc());
        // survivor cap = 3 KiB; 5 KiB of live data overflows it
        let objs: Vec<_> = (0..5).map(|_| ok(h.alloc(tid(0), 1024))).collect();
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        let promoted = objs
            .iter()
            .filter(|&&o| h.object(o).space == Space::Mature)
            .count();
        assert_eq!(promoted, 2, "the overflow beyond 3 KiB promotes");
        assert_eq!(h.region_used(0), 3 * 1024);
    }

    #[test]
    fn full_gc_reclaims_dead_mature_space() {
        let (mut h, mut c) = (heap(), gc());
        let a = ok(h.alloc(tid(0), 2048));
        let b = ok(h.alloc(tid(0), 1024));
        h.promote(a);
        h.promote(b);
        h.kill(a);
        let pause = c.collect_full(&mut h, 1, SimTime::ZERO);
        assert!(pause.as_nanos() > 0);
        assert_eq!(h.mature_used(), 1024);
        let e = c.log().events()[0];
        assert_eq!(e.kind, GcKind::Full);
        assert_eq!(e.collected_bytes, 2048);
    }

    #[test]
    fn occupancy_trigger_escalates_to_full() {
        // tiny mature space: 60 KiB; trigger at 90% = 54 KiB
        let (mut h, mut c) = (heap(), gc());
        // Promote 55 KiB of dead-on-arrival data to the mature space.
        for _ in 0..55 {
            let o = ok(h.alloc(tid(0), 1024));
            h.promote(o);
            h.kill(o);
            h.reset_region_to_survivors(0); // eden bytes moved out
        }
        assert!(h.mature_used() > 54 << 10);
        // a minor GC (even with an empty nursery) notices and runs a full
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        assert_eq!(c.log().count(GcKind::Full), 1);
        assert_eq!(h.mature_used(), 0);
    }

    #[test]
    fn promotion_failure_escalates_within_pause() {
        let (mut h, mut c) = (heap(), gc());
        // Fill mature with dead objects to 59 KiB so the next promotion
        // cannot fit without a full collection.
        for _ in 0..59 {
            let o = ok(h.alloc(tid(0), 1024));
            h.promote(o);
            h.kill(o);
            h.reset_region_to_survivors(0); // eden bytes moved out
        }
        // 4 KiB of live nursery data; survivor cap 3 KiB forces promotion.
        let objs: Vec<_> = (0..4).map(|_| ok(h.alloc(tid(0), 1024))).collect();
        let pause = c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        assert!(pause.as_nanos() > 0);
        assert_eq!(c.log().count(GcKind::Full), 1, "escalated");
        assert!(objs.iter().all(|&o| h.is_live(o)));
    }

    #[test]
    fn pause_scales_with_survivors() {
        let (mut h1, mut c1) = (heap(), gc());
        let (mut h2, mut c2) = (heap(), gc());
        ok(h1.alloc(tid(0), 1024));
        let p_small = c1.collect_minor(&mut h1, 0, 1, SimTime::ZERO);
        for _ in 0..3 {
            ok(h2.alloc(tid(0), 1024));
        }
        let p_big = c2.collect_minor(&mut h2, 0, 1, SimTime::ZERO);
        assert!(p_big > p_small);
    }

    #[test]
    fn concurrent_cycle_sweeps_with_small_stw_pauses() {
        let (mut h, mut c) = (heap(), gc());
        // 10 KiB mature, 4 KiB of it dead
        for i in 0..10 {
            let o = ok(h.alloc(tid(0), 1024));
            h.promote(o);
            if i < 4 {
                h.kill(o);
            }
            h.reset_region_to_survivors(0);
        }
        let (initial, work) = c.begin_concurrent_cycle(&h, 8, SimTime::ZERO);
        assert!(work.as_nanos() > 0);
        let remark = c.finish_concurrent_cycle(&mut h, 8, SimTime::ZERO);
        assert_eq!(h.mature_used(), 6 * 1024);
        assert_eq!(c.log().count(GcKind::ConcurrentOld), 2, "two STW phases");
        let e = c.log().events()[1];
        assert_eq!(e.kind, GcKind::ConcurrentOld);
        assert_eq!(e.collected_bytes, 4 * 1024);
        // each individual STW pause stays below one full STW collection
        // of the same data (with large live sets the gap is enormous;
        // with tiny ones only the per-pause bound holds)
        let full_equiv = c.model().full_pause_ns(6 * 1024, 8) as u64;
        assert!(initial.as_nanos() < full_equiv);
        assert!(remark.as_nanos() < full_equiv);
        // and the copy-proportional share shrinks 20x (0.05 factor)
        let big_live = 64 << 20;
        let remark_copy =
            c.model().concurrent_remark_ns(big_live, 0) - c.model().concurrent_remark_ns(0, 0);
        let full_copy = c.model().full_pause_ns(big_live, 0) - c.model().full_pause_ns(0, 0);
        assert!(remark_copy * 10.0 < full_copy);
    }

    #[test]
    fn occupancy_escalation_can_be_disabled() {
        let (mut h, mut c) = (heap(), gc());
        c.set_occupancy_escalation(false);
        for _ in 0..55 {
            let o = ok(h.alloc(tid(0), 1024));
            h.promote(o);
            h.kill(o);
            h.reset_region_to_survivors(0);
        }
        assert!(c.wants_old_gen_collection(&h));
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        assert_eq!(c.log().count(GcKind::Full), 0, "no STW full escalation");
        assert!(c.wants_old_gen_collection(&h), "still pending");
    }

    #[test]
    fn timeline_records_gc_phase_spans() {
        let (mut h, mut c) = (heap(), gc());
        c.set_timeline(Timeline::with_capacity(32));
        let dead = ok(h.alloc(tid(0), 1024));
        h.kill(dead);
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        let o = ok(h.alloc(tid(0), 2048));
        h.promote(o);
        h.kill(o);
        c.collect_full(&mut h, 1, SimTime::from_nanos(500));

        let tl = c.take_timeline();
        let events: Vec<_> = tl.events().copied().collect();
        let minor = events
            .iter()
            .find(|e| e.kind == EventKind::GcMinor)
            .expect("minor span");
        assert_eq!(minor.at, SimTime::ZERO);
        assert_eq!(minor.arg, 1024, "collected bytes attributed");
        assert!(!minor.dur.is_zero());
        let full = events
            .iter()
            .find(|e| e.kind == EventKind::GcFull)
            .expect("full span");
        assert_eq!(full.at, SimTime::from_nanos(500));
        assert_eq!(full.arg, 2048);
        // The recorder left behind is disabled.
        assert_eq!(c.take_timeline().len(), 0);
    }

    #[test]
    fn into_log_hands_over_everything() {
        let (mut h, mut c) = (heap(), gc());
        ok(h.alloc(tid(0), 64));
        c.collect_minor(&mut h, 0, 1, SimTime::ZERO);
        let log = c.into_log();
        assert_eq!(log.collections(), 1);
    }
}
