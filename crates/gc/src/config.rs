//! Collector cost model configuration.
//!
//! The paper's JVM is OpenJDK 1.7 HotSpot with the **stop-the-world,
//! throughput-oriented parallel collector** (§II-B). Its pause cost is
//! modelled from first principles:
//!
//! * a fixed per-pause overhead (bringing the VM to a stop, bookkeeping),
//! * a time-to-safepoint term linear in the number of mutator threads,
//! * copy/mark/compact work linear in surviving bytes, divided by the
//!   *effective* number of parallel GC workers, and scaled by the mean
//!   NUMA factor of the enabled cores (remote copies cost more),
//! * a worker-synchronization term that erodes parallel efficiency as
//!   workers grow (the classic `w / (1 + α(w-1))` model).

/// Cost model for the simulated parallel collector.
///
/// # Examples
///
/// ```
/// use scalesim_gc::GcCostModel;
///
/// let m = GcCostModel::hotspot_like(8, 1.0);
/// assert!(m.effective_workers() > 1.0);
/// assert!(m.effective_workers() < 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcCostModel {
    /// Number of parallel GC worker threads (HotSpot defaults to the core
    /// count).
    pub workers: usize,
    /// Per-worker synchronization-overhead coefficient α in the
    /// `w / (1 + α(w-1))` effective-parallelism model.
    pub worker_sync_alpha: f64,
    /// Mean NUMA access-cost multiplier for the enabled cores (from
    /// [`MachineTopology::mean_numa_factor`]).
    ///
    /// [`MachineTopology::mean_numa_factor`]:
    ///     scalesim_machine::MachineTopology::mean_numa_factor
    pub numa_factor: f64,
    /// Nanoseconds to copy one surviving byte (single worker, local).
    pub copy_ns_per_byte: f64,
    /// Nanoseconds to mark one live mature byte in a full collection.
    pub mark_ns_per_byte: f64,
    /// Nanoseconds to compact one live mature byte in a full collection.
    pub compact_ns_per_byte: f64,
    /// Fixed overhead per pause, in nanoseconds.
    pub fixed_pause_ns: f64,
    /// Time-to-safepoint cost per mutator thread, in nanoseconds.
    pub safepoint_ns_per_thread: f64,
    /// Full collection triggers when mature occupancy exceeds this
    /// fraction of mature capacity.
    pub full_gc_trigger: f64,
    /// Occupancy fraction at which a *mostly-concurrent* old-generation
    /// cycle starts. Lower than [`full_gc_trigger`](Self::full_gc_trigger)
    /// because promotions continue while the cycle runs (HotSpot's
    /// `CMSInitiatingOccupancyFraction`).
    pub concurrent_trigger: f64,
    /// Fixed overhead of a *thread-local* heaplet collection, in
    /// nanoseconds — no global rendezvous, so far below
    /// [`fixed_pause_ns`](Self::fixed_pause_ns).
    pub local_fixed_pause_ns: f64,
}

impl GcCostModel {
    /// A HotSpot-Parallel-Scavenge-like cost model for `workers` GC
    /// threads on cores with the given mean NUMA factor.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `numa_factor < 1.0`.
    #[must_use]
    pub fn hotspot_like(workers: usize, numa_factor: f64) -> Self {
        assert!(workers >= 1, "need at least one GC worker");
        assert!(numa_factor >= 1.0, "NUMA factor cannot be below 1.0");
        GcCostModel {
            workers,
            worker_sync_alpha: 0.03,
            numa_factor,
            copy_ns_per_byte: 1.0,
            mark_ns_per_byte: 0.5,
            compact_ns_per_byte: 1.0,
            fixed_pause_ns: 150_000.0,         // 150 us VM-stop overhead
            safepoint_ns_per_thread: 15_000.0, // 15 us per mutator thread
            full_gc_trigger: 0.9,
            concurrent_trigger: 0.7,        // start cycles with headroom
            local_fixed_pause_ns: 15_000.0, // 15 us, owner thread only
        }
    }

    /// Effective parallel workers after synchronization overhead:
    /// `w / (1 + α(w-1))`.
    #[must_use]
    pub fn effective_workers(&self) -> f64 {
        let w = self.workers as f64;
        w / (1.0 + self.worker_sync_alpha * (w - 1.0))
    }

    /// Pause nanoseconds for a minor collection that evacuates
    /// `survived_bytes`, with `mutator_threads` threads to stop.
    #[must_use]
    pub fn minor_pause_ns(&self, survived_bytes: u64, mutator_threads: usize) -> f64 {
        self.fixed_pause_ns
            + self.safepoint_ns_per_thread * mutator_threads as f64
            + self.copy_ns_per_byte * survived_bytes as f64 * self.numa_factor
                / self.effective_workers()
    }

    /// The irreducible part of a stop-the-world minor pause — fixed
    /// overhead plus time-to-safepoint — which no amount of nursery
    /// shrinking can remove. Adaptive sizing treats pause goals at or
    /// below this floor as unachievable.
    #[must_use]
    pub fn pause_floor_ns(&self, mutator_threads: usize) -> f64 {
        self.fixed_pause_ns + self.safepoint_ns_per_thread * mutator_threads as f64
    }

    /// Pause nanoseconds for a *thread-local* heaplet collection: no
    /// global safepoint, single-threaded copying by the owning thread at
    /// local-memory cost.
    #[must_use]
    pub fn local_minor_pause_ns(&self, survived_bytes: u64) -> f64 {
        self.local_fixed_pause_ns + self.copy_ns_per_byte * survived_bytes as f64
    }

    /// STW pause of a concurrent cycle's *initial mark* (root scan only).
    #[must_use]
    pub fn concurrent_initial_mark_ns(&self, mutator_threads: usize) -> f64 {
        self.fixed_pause_ns / 3.0 + self.safepoint_ns_per_thread * mutator_threads as f64
    }

    /// STW pause of a concurrent cycle's *remark* (re-scan of mutations,
    /// ~5 % of a full mark, parallelized).
    #[must_use]
    pub fn concurrent_remark_ns(&self, live_mature_bytes: u64, mutator_threads: usize) -> f64 {
        self.fixed_pause_ns / 3.0
            + self.safepoint_ns_per_thread * mutator_threads as f64
            + 0.05 * self.mark_ns_per_byte * live_mature_bytes as f64 / self.effective_workers()
    }

    /// CPU work of the concurrent phase (single background thread marking
    /// and sweeping the live mature bytes at local cost).
    #[must_use]
    pub fn concurrent_background_ns(&self, live_mature_bytes: u64) -> f64 {
        (self.mark_ns_per_byte + self.compact_ns_per_byte) * live_mature_bytes as f64
    }

    /// Pause nanoseconds for a full collection over `live_mature_bytes`,
    /// with `mutator_threads` threads to stop.
    #[must_use]
    pub fn full_pause_ns(&self, live_mature_bytes: u64, mutator_threads: usize) -> f64 {
        self.fixed_pause_ns
            + self.safepoint_ns_per_thread * mutator_threads as f64
            + (self.mark_ns_per_byte + self.compact_ns_per_byte)
                * live_mature_bytes as f64
                * self.numa_factor
                / self.effective_workers()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_workers_saturate() {
        let m1 = GcCostModel::hotspot_like(1, 1.0);
        assert!((m1.effective_workers() - 1.0).abs() < 1e-12);
        let m48 = GcCostModel::hotspot_like(48, 1.0);
        assert!(m48.effective_workers() > 15.0);
        assert!(m48.effective_workers() < 48.0);
        let m12 = GcCostModel::hotspot_like(12, 1.0);
        assert!(
            m48.effective_workers() > m12.effective_workers(),
            "more workers still help, just sublinearly"
        );
    }

    #[test]
    fn minor_pause_grows_with_survivors_and_threads() {
        let m = GcCostModel::hotspot_like(8, 1.0);
        let small = m.minor_pause_ns(1 << 20, 8);
        let big = m.minor_pause_ns(8 << 20, 8);
        assert!(big > small);
        let more_threads = m.minor_pause_ns(1 << 20, 48);
        assert!(more_threads > small);
    }

    #[test]
    fn numa_scales_copy_work_only() {
        let local = GcCostModel::hotspot_like(8, 1.0);
        let remote = GcCostModel::hotspot_like(8, 1.5);
        let l = local.minor_pause_ns(1 << 20, 0) - local.fixed_pause_ns;
        let r = remote.minor_pause_ns(1 << 20, 0) - remote.fixed_pause_ns;
        assert!((r / l - 1.5).abs() < 1e-9);
    }

    #[test]
    fn full_pause_costs_mark_plus_compact() {
        let m = GcCostModel::hotspot_like(1, 1.0);
        let ns = m.full_pause_ns(1000, 0) - m.fixed_pause_ns;
        assert!((ns - 1500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one GC worker")]
    fn zero_workers_panics() {
        let _ = GcCostModel::hotspot_like(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "NUMA factor")]
    fn sub_local_numa_panics() {
        let _ = GcCostModel::hotspot_like(1, 0.9);
    }
}
