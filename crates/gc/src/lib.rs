//! # scalesim-gc
//!
//! Stop-the-world generational parallel collector model — the simulated
//! counterpart of the paper's "throughput-oriented parallel garbage
//! collector" (OpenJDK 1.7 HotSpot Parallel Scavenge, §II-B).
//!
//! The collector has three parts:
//!
//! * [`GcCostModel`] — pause-time model: fixed overhead, time-to-safepoint
//!   linear in mutator threads, copy/mark/compact work linear in surviving
//!   bytes, parallel GC workers with synchronization losses, and a NUMA
//!   multiplier from the machine topology.
//! * [`Collector`] — the policy: copying nursery evacuation with survivor
//!   spaces and tenuring, promotion-failure and occupancy escalation to
//!   full mark-compact collections.
//! * [`GcLog`] — the simulated `-verbose:gc` stream the experiments read
//!   GC time from (Figure 2's GC component).
//!
//! Because pause cost is driven by *surviving bytes*, the paper's causal
//! chain — thread scaling → longer object lifespans → more nursery
//! survivors → more copying and more full collections → rising GC time —
//! emerges from the simulation rather than being hard-coded.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod adaptive;
mod collector;
mod config;
mod log;

pub use adaptive::AdaptiveSizer;
pub use collector::{Collector, LocalGcOutcome};
pub use config::GcCostModel;
pub use log::{GcEvent, GcKind, GcLog};
