//! End-to-end campaign crash test: three worker processes drain one
//! sweep over a shared directory, one is SIGKILLed mid-flight, and the
//! merged output must still be byte-identical to a single-process run.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Duration;

const BIN: &str = env!("CARGO_BIN_EXE_scalesim-experiments");
const SWEEP_ARGS: &[&str] = &["--scale", "0.02", "--seed", "7", "--threads", "2,4"];
/// Short TTL so the finisher reclaims the killed worker's leases fast.
const TTL_MS: &str = "300";

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "scalesim-campaign-it-{}-{name}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// `campaign scaletable --dir <dir> <SWEEP_ARGS> <extra...>` as a
/// foreground run, returning its exit code.
fn campaign_cmd(dir: &Path, extra: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.arg("campaign")
        .arg("scaletable")
        .arg("--dir")
        .arg(dir)
        .args(SWEEP_ARGS)
        .args(extra)
        .env("SCALESIM_LEASE_TTL_MS", TTL_MS)
        .stdout(Stdio::null());
    cmd
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Zeroes the host-wall field, the one legitimately host-dependent
/// manifest value (merged manifests come pre-zeroed).
fn zero_host_ns(manifest: &str) -> String {
    let mut out = String::with_capacity(manifest.len());
    for line in manifest.lines() {
        let mut rest = line;
        while let Some(at) = rest.find("\"host_ns\":") {
            let (head, tail) = rest.split_at(at + "\"host_ns\":".len());
            out.push_str(head);
            out.push('0');
            rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
        }
        out.push_str(rest);
        out.push('\n');
    }
    out
}

#[test]
fn sigkilled_worker_still_merges_byte_identical() {
    let golden_out = scratch("golden");
    let camp_dir = scratch("dir");
    let merged_out = scratch("merged");

    // Golden: the ordinary single-process artifact.
    let status = Command::new(BIN)
        .arg("scaletable")
        .args(SWEEP_ARGS)
        .arg("--out")
        .arg(&golden_out)
        .stdout(Stdio::null())
        .status()
        .unwrap();
    assert!(status.success(), "golden run failed: {status}");

    // Three raw worker processes share the campaign directory.
    let mut workers: Vec<_> = (1..=3u32)
        .map(|id| {
            campaign_cmd(&camp_dir, &[])
                .env("SCALESIM_CAMPAIGN_ROLE", "worker")
                .env("SCALESIM_CAMPAIGN_WORKER_ID", id.to_string())
                .stderr(Stdio::null())
                .spawn()
                .unwrap()
        })
        .collect();

    // SIGKILL the first worker mid-drain: no destructors, no flushes —
    // whatever it held (leases, a torn segment tail) must be repaired
    // by the survivors and the merge.
    std::thread::sleep(Duration::from_millis(25));
    let victim = &mut workers[0];
    match victim.try_wait().unwrap() {
        Some(_) => {} // already done — the kill scenario degenerates to a clean run
        None => victim.kill().unwrap(),
    }
    for w in &mut workers {
        let _ = w.wait().unwrap();
    }

    // Deterministic crash artifacts on top of whatever the kill left:
    // a segment from a "dead worker" holding one corrupt record and a
    // torn tail (no trailing newline, truncated mid-record). The merge
    // must scrub both without contaminating the output.
    std::fs::write(
        camp_dir.join("seg-w9-p99999.jsonl"),
        "deadbeef {\"v\":1,\"key\":\"0000000000000000\",\"garbage\":true}\n12345678 {\"v\":1,\"ke",
    )
    .unwrap();

    // Finisher: no child workers, drain leftovers in-process, merge,
    // emit. Must succeed cleanly despite the kill.
    let status = campaign_cmd(&camp_dir, &["--workers", "0", "--out"])
        .arg(&merged_out)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "finisher failed: {status}");

    // The merged table is byte-identical to the single-process run.
    let golden_csv = read(&golden_out.join("scaletable.csv"));
    let merged_csv = read(&merged_out.join("scaletable.csv"));
    assert_eq!(golden_csv, merged_csv, "merged CSV diverged from golden");

    // So is the manifest, once the golden side's host-wall times are
    // zeroed the way the merge zeroes its own.
    let golden_manifest = zero_host_ns(&read(&golden_out.join("manifest.jsonl")));
    let merged_manifest = read(&merged_out.join("manifest.jsonl"));
    assert_eq!(
        golden_manifest, merged_manifest,
        "merged manifest diverged from golden"
    );

    // Every unit settled: done markers for all 12 units (6 apps x 2
    // thread counts) and no leases left behind.
    let done = std::fs::read_dir(camp_dir.join("done"))
        .unwrap()
        .flatten()
        .filter(|e| !e.file_name().to_string_lossy().starts_with('.'))
        .count();
    assert_eq!(done, 12, "expected one done marker per unit");
    let leases: Vec<String> = std::fs::read_dir(camp_dir.join("leases"))
        .unwrap()
        .flatten()
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".lease"))
        .collect();
    assert!(
        leases.is_empty(),
        "stale leases survived the merge: {leases:?}"
    );

    // Worker-count invariance: a fresh single-worker campaign produces
    // the same bytes (manifests compare directly — both sides zeroed).
    let camp_dir2 = scratch("dir2");
    let merged_out2 = scratch("merged2");
    let status = campaign_cmd(&camp_dir2, &["--workers", "1", "--out"])
        .arg(&merged_out2)
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(0), "1-worker campaign failed: {status}");
    assert_eq!(merged_csv, read(&merged_out2.join("scaletable.csv")));
    assert_eq!(merged_manifest, read(&merged_out2.join("manifest.jsonl")));

    for dir in [golden_out, camp_dir, merged_out, camp_dir2, merged_out2] {
        let _ = std::fs::remove_dir_all(dir);
    }
}

#[test]
fn campaign_rejects_mismatched_spec_directories() {
    let dir = scratch("mismatch");
    let status = campaign_cmd(&dir, &["--workers", "0"]).status().unwrap();
    assert_eq!(status.code(), Some(0));
    // Same directory, different seed: refused as a config error.
    let status = Command::new(BIN)
        .args([
            "campaign",
            "scaletable",
            "--dir",
            dir.to_str().unwrap(),
            "--scale",
            "0.02",
            "--seed",
            "8",
            "--threads",
            "2,4",
            "--workers",
            "0",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .unwrap();
    assert_eq!(status.code(), Some(3), "spec mismatch must exit 3");
    let _ = std::fs::remove_dir_all(dir);
}
