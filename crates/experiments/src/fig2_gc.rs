//! Figure 2: distribution of mutator and GC times for the three scalable
//! applications as threads scale.
//!
//! Paper expectations (§III-C): "GC overhead keeps increasing as we
//! increase the number of threads" while, ignoring GC, "the mutator time
//! would continue to be reduced as we scaled up the numbers of threads
//! and cores all the way to 48".

use scalesim_core::{RunOutcome, SimError};
use scalesim_gc::GcKind;
use scalesim_metrics::{fmt_pct, Series, Table};
use scalesim_simkit::SimDuration;
use scalesim_workloads::scalable_apps;

use crate::params::ExpParams;
use crate::sweep::{grid_specs, outcome_cell, run_all};

/// One bar of Figure 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2Row {
    /// Application name.
    pub app: String,
    /// Thread (= core) count.
    pub threads: usize,
    /// Wall time minus GC pauses.
    pub mutator: SimDuration,
    /// Total stop-the-world pause time.
    pub gc: SimDuration,
    /// Minor collections.
    pub minor: usize,
    /// Full collections.
    pub full: usize,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

impl Fig2Row {
    /// GC's share of total execution.
    #[must_use]
    pub fn gc_share(&self) -> f64 {
        let total = (self.mutator + self.gc).as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.gc.as_secs_f64() / total
        }
    }
}

/// The full Figure 2 dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fig2 {
    /// One row per (scalable app × thread count).
    pub rows: Vec<Fig2Row>,
}

impl Fig2 {
    /// Rows for one app, in thread order.
    #[must_use]
    pub fn rows_of(&self, app: &str) -> Vec<&Fig2Row> {
        self.rows.iter().filter(|r| r.app == app).collect()
    }

    /// GC time vs. threads for one app.
    #[must_use]
    pub fn gc_series(&self, app: &str) -> Series {
        let mut s = Series::new(format!("{app}-gc"));
        for r in self.rows_of(app) {
            s.push(r.threads as f64, r.gc.as_secs_f64());
        }
        s
    }

    /// Mutator time vs. threads for one app.
    #[must_use]
    pub fn mutator_series(&self, app: &str) -> Series {
        let mut s = Series::new(format!("{app}-mutator"));
        for r in self.rows_of(app) {
            s.push(r.threads as f64, r.mutator.as_secs_f64());
        }
        s
    }

    /// GC share vs. threads for one app.
    #[must_use]
    pub fn gc_share_series(&self, app: &str) -> Series {
        let mut s = Series::new(format!("{app}-gc-share"));
        for r in self.rows_of(app) {
            s.push(r.threads as f64, r.gc_share());
        }
        s
    }

    /// The application names present, in first-seen order.
    #[must_use]
    pub fn apps(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for r in &self.rows {
            if !names.contains(&r.app) {
                names.push(r.app.clone());
            }
        }
        names
    }

    /// Renders the figure as a table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "app", "threads", "mutator", "gc", "gc share", "minor", "full", "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                r.threads.to_string(),
                r.mutator.to_string(),
                r.gc.to_string(),
                fmt_pct(r.gc_share()),
                r.minor.to_string(),
                r.full.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs the Figure 2 sweep: the three scalable apps at every thread
/// count.
///
/// # Errors
///
/// Currently infallible (the sweep quarantines failing runs), but shares
/// the drivers' common `Result` signature.
pub fn run_fig2(params: &ExpParams) -> Result<Fig2, SimError> {
    let apps = scalable_apps();
    let specs = grid_specs(&apps, params);
    let reports = run_all(&specs);
    let rows = reports
        .iter()
        .map(|r| Fig2Row {
            app: r.app.clone(),
            threads: r.threads,
            mutator: r.mutator_wall(),
            gc: r.gc_time,
            minor: r.gc.count(GcKind::Minor),
            full: r.gc.count(GcKind::Full),
            outcome: r.outcome.clone(),
        })
        .collect();
    Ok(Fig2 { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 16])
    }

    #[test]
    fn covers_three_scalable_apps() {
        let f = run_fig2(&tiny()).unwrap();
        assert_eq!(f.apps(), vec!["sunflow", "lusearch", "xalan"]);
        assert_eq!(f.rows.len(), 6);
        assert_eq!(f.rows_of("xalan").len(), 2);
    }

    #[test]
    fn series_extraction() {
        let f = run_fig2(&tiny()).unwrap();
        let gc = f.gc_series("xalan");
        assert_eq!(gc.len(), 2);
        let m = f.mutator_series("xalan");
        assert!(m.first_y().unwrap() > 0.0);
        let share = f.gc_share_series("xalan");
        assert!(share
            .points()
            .iter()
            .all(|&(_, y)| (0.0..=1.0).contains(&y)));
    }

    #[test]
    fn table_shape() {
        let f = run_fig2(&tiny()).unwrap();
        assert_eq!(f.table().num_rows(), 6);
    }

    #[test]
    fn gc_share_handles_zero() {
        let r = Fig2Row {
            app: "x".into(),
            threads: 1,
            mutator: SimDuration::ZERO,
            gc: SimDuration::ZERO,
            minor: 0,
            full: 0,
            outcome: RunOutcome::Ok,
        };
        assert_eq!(r.gc_share(), 0.0);
    }
}
