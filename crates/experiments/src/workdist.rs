//! Workload distribution across threads (§III, opening paragraph).
//!
//! "The non-scalable applications employ only a small number of threads
//! to perform the work. For example, jython mainly uses three to four
//! threads to do most of the work even when we set the number [of]
//! mutator threads to be larger than 16. On the other hand, xalan,
//! lusearch, and sunflow show nearly a uniform distribution of workload
//! among threads."

use scalesim_core::{RunOutcome, SimError};
use scalesim_metrics::{fmt2, Table};
use scalesim_workloads::{all_apps, AppModel, ScalabilityClass};

use crate::params::ExpParams;
use crate::sweep::{grid_specs, outcome_cell, run_all};

/// Work-distribution measurements for one (app, thread count) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkdistRow {
    /// Application name.
    pub app: String,
    /// Paper classification.
    pub expected: ScalabilityClass,
    /// Configured threads.
    pub threads: usize,
    /// Coefficient of variation of per-thread item counts (0 = perfectly
    /// uniform).
    pub cv: f64,
    /// Smallest number of threads covering 90 % of completed items.
    pub threads_for_90pct: usize,
    /// Largest single thread share of the work.
    pub max_share: f64,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The full workload-distribution study.
#[derive(Debug, Clone, PartialEq)]
pub struct Workdist {
    /// One row per (app × thread count).
    pub rows: Vec<WorkdistRow>,
}

impl Workdist {
    /// Rows for one app.
    #[must_use]
    pub fn rows_of(&self, app: &str) -> Vec<&WorkdistRow> {
        self.rows.iter().filter(|r| r.app == app).collect()
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "app",
            "class",
            "threads",
            "cv",
            "threads for 90% work",
            "max share",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                r.expected.label().to_owned(),
                r.threads.to_string(),
                fmt2(r.cv),
                r.threads_for_90pct.to_string(),
                fmt2(r.max_share),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs the workload-distribution sweep over all apps.
///
/// # Errors
///
/// Currently infallible (the sweep quarantines failing runs), but shares
/// the drivers' common `Result` signature.
pub fn run_workdist(params: &ExpParams) -> Result<Workdist, SimError> {
    let apps = all_apps();
    let specs = grid_specs(&apps, params);
    let reports = run_all(&specs);
    let rows = reports
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let app = &apps[i / params.thread_counts.len()];
            let shares = r.work_shares();
            // A quarantined stub carries no per-thread data; summarizing it
            // would panic, so its row reports zeroed distribution stats.
            let cv = if r.per_thread.is_empty() {
                0.0
            } else {
                r.work_distribution().coefficient_of_variation()
            };
            WorkdistRow {
                app: r.app.clone(),
                expected: app.class(),
                threads: r.threads,
                cv,
                threads_for_90pct: r.threads_for_90pct_work(),
                max_share: shares.iter().copied().fold(0.0, f64::max),
                outcome: r.outcome.clone(),
            }
        })
        .collect();
    Ok(Workdist { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jython_concentrates_and_xalan_spreads() {
        let params = ExpParams::quick().with_scale(0.01).with_threads(vec![16]);
        let w = run_workdist(&params).unwrap();
        assert_eq!(w.rows.len(), 6);

        let jython = &w.rows_of("jython")[0];
        assert!(jython.threads_for_90pct <= 4, "{jython:?}");
        assert!(jython.cv > 0.5, "{jython:?}");

        let xalan = &w.rows_of("xalan")[0];
        assert!(xalan.threads_for_90pct >= 12, "{xalan:?}");
        assert!(xalan.cv < 0.3, "{xalan:?}");

        let t = w.table();
        assert_eq!(t.num_rows(), 6);
    }
}
