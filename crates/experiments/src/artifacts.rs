//! Artifact dispatch: one place mapping artifact ids to rendered tables.
//!
//! Both the CLI driver and the campaign merge pass go through
//! [`artifact_tables`], so a merged campaign renders its final tables
//! with exactly the code a single-process run uses — the byte-identity
//! guarantee of `campaign` rests on this sharing.

use scalesim_core::SimError;
use scalesim_metrics::Table;

use crate::ablation::{run_biased_sched, run_heaplets};
use crate::ext_locks::run_lock_algorithms;
use crate::extensions::{
    run_concurrent_old_gen, run_ergonomics, run_gc_workers, run_heap_size, run_lock_sharding,
    run_numa_placement, run_oversubscription,
};
use crate::fig1_lifespan::{run_fig1c, run_fig1d};
use crate::fig1_locks::run_fig1_locks;
use crate::fig2_gc::run_fig2;
use crate::params::ExpParams;
use crate::scalability::run_scalability;
use crate::server::run_server_study;
use crate::topo::run_topology;
use crate::workdist::run_workdist;

/// Every artifact id `all` expands to, in execution order. `fig1b` is
/// omitted because it renders the same table as `fig1a`.
pub const ALL_ARTIFACTS: &[&str] = &[
    "workdist",
    "scaletable",
    "fig1a",
    "fig1c",
    "fig1d",
    "fig2",
    "abl-sched",
    "abl-heap",
    "ext-ergo",
    "ext-numa",
    "ext-sharding",
    "ext-gcworkers",
    "ext-oversub",
    "ext-heapsize",
    "ext-concurrent",
    "ext-topo",
    "ext-server",
    "ext-locks",
];

/// One rendered table of an artifact: the CSV base name, the banner
/// title, and the table itself.
#[derive(Debug, Clone)]
pub struct ArtifactTable {
    /// CSV base name (`<name>.csv` under `--out`).
    pub name: String,
    /// Human-readable banner printed above the table.
    pub title: String,
    /// The rendered table.
    pub table: Table,
}

fn one(
    name: &str,
    title: &str,
    table: Result<Table, SimError>,
) -> Result<Vec<ArtifactTable>, SimError> {
    Ok(vec![ArtifactTable {
        name: name.to_owned(),
        title: title.to_owned(),
        table: table?,
    }])
}

/// Runs one artifact and renders its tables. Returns `None` for an
/// unknown artifact id (`all` is a CLI-level loop, not an artifact).
///
/// # Errors
///
/// The inner result propagates any [`SimError`] from the driver.
#[allow(clippy::too_many_lines)]
pub fn artifact_tables(
    artifact: &str,
    p: &ExpParams,
) -> Option<Result<Vec<ArtifactTable>, SimError>> {
    let tables = match artifact {
        "workdist" => one(
            "workdist",
            "Workload distribution across threads (paper SIII)",
            run_workdist(p).map(|s| s.table()),
        ),
        "scaletable" => one(
            "scaletable",
            "Scalability classification (paper SII-C)",
            run_scalability(p).map(|s| s.table()),
        ),
        "fig1a" | "fig1b" => one(
            "fig1_locks",
            "Fig 1a/1b: lock acquisitions & contentions vs threads",
            run_fig1_locks(p).map(|s| s.table()),
        ),
        "fig1c" => one(
            "fig1c",
            "Fig 1c: eclipse object-lifespan CDF",
            run_fig1c(p).map(|s| s.table()),
        ),
        "fig1d" => one(
            "fig1d",
            "Fig 1d: xalan object-lifespan CDF",
            run_fig1d(p).map(|s| s.table()),
        ),
        "fig2" => one(
            "fig2",
            "Fig 2: mutator vs GC time decomposition (scalable apps)",
            run_fig2(p).map(|s| s.table()),
        ),
        "abl-sched" => one(
            "abl_sched",
            "Ablation: biased (cohort) scheduling on xalan (paper SIV.1)",
            run_biased_sched("xalan", p).map(|s| s.table()),
        ),
        "abl-heap" => one(
            "abl_heap",
            "Ablation: compartmentalized heaplets on xalan (paper SIV.2)",
            run_heaplets("xalan", p).map(|s| s.table()),
        ),
        "ext-ergo" => one(
            "ext_ergo",
            "Extension: adaptive nursery sizing on xalan (HotSpot ergonomics)",
            run_ergonomics("xalan", p).map(|s| s.table()),
        ),
        "ext-numa" => one(
            "ext_numa",
            "Extension: NUMA placement sensitivity on xalan",
            run_numa_placement("xalan", p).map(|s| s.table()),
        ),
        "ext-sharding" => one(
            "ext_sharding",
            "Extension: sharding xalan's dtm-cache lock",
            run_lock_sharding("xalan", 1, p).map(|s| s.table()),
        ),
        "ext-gcworkers" => one(
            "ext_gcworkers",
            "Extension: parallel GC worker scaling on xalan",
            run_gc_workers("xalan", p).map(|s| s.table()),
        ),
        "ext-oversub" => one(
            "ext_oversub",
            "Extension: oversubscription (threads beyond 48 cores) on xalan",
            run_oversubscription("xalan", p).map(|s| s.table()),
        ),
        "ext-heapsize" => one(
            "ext_heapsize",
            "Extension: trace-replay heap-size sweep on xalan (3x-min-heap rule)",
            run_heap_size("xalan", p).map(|s| s.table()),
        ),
        "ext-concurrent" => one(
            "ext_concurrent",
            "Extension: mostly-concurrent old generation on xalan",
            run_concurrent_old_gen("xalan", p).map(|s| s.table()),
        ),
        "ext-topo" => one(
            "ext_topo",
            "Extension: machine-topology sweep on xalan (AMD / Xeon / SPARC-T3)",
            run_topology("xalan", p).map(|s| s.table()),
        ),
        "ext-server" => one(
            "ext_server",
            "Extension: server request workloads with overload control (metastable failure)",
            run_server_study(p).map(|s| s.table()),
        ),
        "ext-locks" => one(
            "ext_locks",
            "Extension: lock algorithms (fifo / mcs / malthusian) across all apps",
            run_lock_algorithms(p).map(|s| s.table()),
        ),
        _ => return None,
    };
    Some(tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 16])
    }

    #[test]
    fn unknown_and_meta_ids_are_none() {
        let p = tiny();
        assert!(artifact_tables("nope", &p).is_none());
        assert!(artifact_tables("all", &p).is_none());
        assert!(artifact_tables("repro", &p).is_none());
        assert!(artifact_tables("campaign", &p).is_none());
    }

    #[test]
    fn every_listed_artifact_dispatches() {
        let p = tiny();
        for id in ALL_ARTIFACTS {
            assert!(artifact_tables(id, &p).is_some(), "{id} not dispatched");
        }
    }

    #[test]
    fn fig1a_and_fig1b_render_the_same_table() {
        let p = tiny();
        let a = artifact_tables("fig1a", &p).unwrap().unwrap();
        let b = artifact_tables("fig1b", &p).unwrap().unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].name, "fig1_locks");
        assert_eq!(a[0].table.to_csv(), b[0].table.to_csv());
    }

    #[test]
    fn topo_artifact_renders() {
        let t = artifact_tables("ext-topo", &tiny()).unwrap().unwrap();
        assert_eq!(t[0].name, "ext_topo");
        assert_eq!(t[0].table.num_rows(), 3 * 2);
    }
}
