//! Shared experiment parameters.

/// Parameters shared by every experiment driver.
///
/// `scale` multiplies each benchmark's standard work size: `1.0`
/// regenerates the paper-sized runs, smaller values give CI-sized runs
/// with the same qualitative shapes.
///
/// # Examples
///
/// ```
/// use scalesim_experiments::ExpParams;
///
/// let quick = ExpParams::quick();
/// assert!(quick.scale < 1.0);
/// assert!(!quick.thread_counts.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ExpParams {
    /// Workload scale factor (1.0 = paper-sized).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Thread counts to sweep (the paper uses 4..48 with cores =
    /// threads).
    pub thread_counts: Vec<usize>,
}

impl Default for ExpParams {
    fn default() -> Self {
        ExpParams {
            scale: 1.0,
            seed: 42,
            thread_counts: vec![4, 8, 16, 32, 48],
        }
    }
}

impl ExpParams {
    /// Paper-sized parameters.
    #[must_use]
    pub fn paper() -> Self {
        ExpParams::default()
    }

    /// CI-sized parameters: 5 % of standard work, fewer sweep points.
    #[must_use]
    pub fn quick() -> Self {
        ExpParams {
            scale: 0.05,
            seed: 42,
            thread_counts: vec![4, 16, 48],
        }
    }

    /// Returns a copy with a different scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    #[must_use]
    pub fn with_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        self.scale = scale;
        self
    }

    /// Returns a copy with different thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or not strictly increasing.
    #[must_use]
    pub fn with_threads(mut self, threads: Vec<usize>) -> Self {
        assert!(!threads.is_empty(), "need at least one thread count");
        assert!(
            threads.windows(2).all(|w| w[0] < w[1]),
            "thread counts must be strictly increasing"
        );
        self.thread_counts = threads;
        self
    }

    /// The largest swept thread count.
    #[must_use]
    pub fn max_threads(&self) -> usize {
        *self.thread_counts.last().expect("non-empty by invariant")
    }

    /// The smallest swept thread count.
    #[must_use]
    pub fn min_threads(&self) -> usize {
        self.thread_counts[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_shaped() {
        let p = ExpParams::default();
        assert_eq!(p.scale, 1.0);
        assert_eq!(p.thread_counts, vec![4, 8, 16, 32, 48]);
        assert_eq!(p.max_threads(), 48);
        assert_eq!(p.min_threads(), 4);
    }

    #[test]
    fn with_helpers_validate() {
        let p = ExpParams::default()
            .with_scale(0.1)
            .with_threads(vec![2, 4]);
        assert_eq!(p.scale, 0.1);
        assert_eq!(p.max_threads(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_threads_panic() {
        let _ = ExpParams::default().with_threads(vec![4, 2]);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        let _ = ExpParams::default().with_scale(0.0);
    }
}
