//! Parallel execution of independent simulation runs.
//!
//! A figure is a sweep over (application × thread count). Each run is an
//! independent, deterministic, single-threaded simulation, so the sweep
//! parallelizes embarrassingly across host cores with crossbeam's scoped
//! threads. Results come back in input order regardless of completion
//! order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use scalesim_core::{Jvm, JvmConfig, RunReport};
use scalesim_workloads::SyntheticApp;

/// One run request: an application and the VM configuration to run it
/// under.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The application (already scaled as desired).
    pub app: SyntheticApp,
    /// VM configuration.
    pub config: JvmConfig,
}

impl RunSpec {
    /// Convenience constructor for the common case: `app` at `threads`
    /// threads with cores following threads (the paper's methodology).
    #[must_use]
    pub fn new(app: SyntheticApp, threads: usize, seed: u64) -> Self {
        RunSpec {
            app,
            config: JvmConfig::builder().threads(threads).seed(seed).build(),
        }
    }

    /// Executes this run.
    #[must_use]
    pub fn run(&self) -> RunReport {
        Jvm::new(self.config.clone()).run(&self.app)
    }
}

/// Executes all runs, using up to `available_parallelism` host threads,
/// and returns reports in input order.
///
/// # Panics
///
/// Panics if any individual simulation panics (the panic is propagated).
#[must_use]
pub fn run_all(specs: &[RunSpec]) -> Vec<RunReport> {
    if specs.is_empty() {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(specs.len());
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunReport>>> =
        specs.iter().map(|_| Mutex::new(None)).collect();

    crossbeam::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= specs.len() {
                    break;
                }
                let report = specs[i].run();
                *results[i].lock().expect("result slot poisoned") = Some(report);
            });
        }
    })
    .expect("a simulation worker panicked");

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker completed without storing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_workloads::{sunflow, xalan};

    #[test]
    fn results_come_back_in_input_order() {
        let specs = vec![
            RunSpec::new(xalan().scaled(0.002), 2, 1),
            RunSpec::new(sunflow().scaled(0.002), 4, 1),
            RunSpec::new(xalan().scaled(0.002), 8, 1),
        ];
        let reports = run_all(&specs);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].app, "xalan");
        assert_eq!(reports[0].threads, 2);
        assert_eq!(reports[1].app, "sunflow");
        assert_eq!(reports[2].threads, 8);
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = RunSpec::new(xalan().scaled(0.002), 4, 7);
        let serial = spec.run();
        let parallel = run_all(&[spec])[0].clone();
        assert_eq!(serial.wall_time, parallel.wall_time);
        assert_eq!(serial.events_processed, parallel.events_processed);
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_all(&[]).is_empty());
    }
}
