//! Parallel, memoizing, crash-isolating execution of independent runs.
//!
//! A figure is a sweep over (application × thread count). Each run is an
//! independent, deterministic, single-threaded simulation, so the sweep
//! parallelizes embarrassingly across host cores with `std::thread::scope`.
//! Results come back in input order regardless of completion order.
//!
//! Two properties keep full-figure regeneration cheap:
//!
//! * **Memoization.** Runs are keyed by a hash of `(app spec, JvmConfig)`
//!   (the config includes the seed, the run budget, and the chaos plan).
//!   Since a run is a pure function of that key, drivers that re-simulate
//!   identical points — `fig1a`/`fig1b` and the scalability table sweep the
//!   same grid, ablations re-run baselines — share one [`RunReport`]
//!   through a process-wide cache. Each cached entry carries a content
//!   fingerprint that is re-verified on every lookup; a mismatched entry
//!   (bit rot, or deliberate [`FaultClass::MemoCorrupt`] injection) is
//!   evicted, logged in the failure digest, and the run re-simulated. Set
//!   `SCALESIM_NO_MEMO=1` to force re-simulation (benchmarks do).
//! * **Bounded fan-out.** Workers are capped at *physical* core count
//!   (SMT siblings share execution units, and oversubscribed fan-out is
//!   exactly the anti-pattern the paper's related work warns about), and
//!   each worker's result travels over a channel and is reordered by input
//!   index — no per-slot locks.
//!
//! The sweep is additionally **crash-isolating**: a run that panics or
//! returns [`SimError`](scalesim_core::SimError) is retried once and, if it
//! fails again, *quarantined* — the sweep continues and the failing point
//! is represented by a metric-less [`RunReport`] whose outcome is
//! [`Quarantined`](scalesim_core::RunOutcome::Quarantined). Quarantined
//! stubs are never memoized. Every quarantine and every memo eviction is
//! recorded; [`take_sweep_failures`] drains the digest.
//!
//! Two further self-healing layers ride on the same machinery:
//!
//! * **Checkpointing.** With a [`checkpoint`](crate::checkpoint) store
//!   active, every completed run is persisted as it finishes (from the
//!   worker thread, before its result is even reordered), and a resumed
//!   process replays the store into this cache so interrupted sweeps
//!   pick up where they stopped with byte-identical output.
//! * **Watchdog.** A spec whose [`RunBudget`](scalesim_simkit::RunBudget)
//!   carries `watchdog_ms` is executed under a monotonic-clock deadline:
//!   a dedicated watchdog thread scans per-worker deadline slots and
//!   cancels overdue runs cooperatively (the engine polls the token on
//!   its budget-check cadence). A cancelled run reports
//!   [`AbortReason::Watchdog`], counts as a failure, is retried once,
//!   and then quarantined — a hung point cannot stall its siblings.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

use scalesim_core::{Jvm, JvmConfig, RunOutcome, RunReport, SimError};
use scalesim_simkit::{AbortReason, CancelToken, ChaosPlan, FaultClass};
use scalesim_trace::CounterId;
use scalesim_workloads::{AppModel, SyntheticApp};

use crate::checkpoint;
use crate::params::ExpParams;

/// One run request: an application and the VM configuration to run it
/// under.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The application (already scaled as desired).
    pub app: SyntheticApp,
    /// VM configuration.
    pub config: JvmConfig,
}

impl RunSpec {
    /// Convenience constructor for the common case: `app` at `threads`
    /// threads with cores following threads (the paper's methodology).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero (the only way the default sweep
    /// configuration can fail validation).
    #[must_use]
    pub fn new(app: SyntheticApp, threads: usize, seed: u64) -> Self {
        RunSpec {
            app,
            config: JvmConfig::builder()
                .threads(threads)
                .seed(seed)
                .build()
                .expect("sweep config rejected"),
        }
    }

    /// Executes this run (bypassing the cache), recording host wall time
    /// in [`RunReport::host_ns`].
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the engine (invariant violation,
    /// deadlock). Budget-truncated runs are `Ok` with a truncated outcome.
    pub fn run(&self) -> Result<RunReport, SimError> {
        self.run_with_cancel(None)
    }

    /// Executes this run like [`RunSpec::run`], optionally attaching a
    /// cooperative cancellation token (the sweep watchdog's lever). The
    /// token lives outside [`JvmConfig`], so attaching one never
    /// changes the memo key or the simulated behavior of an
    /// uncancelled run.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from the engine. A cancelled run is
    /// `Ok` with a [`Watchdog`](scalesim_simkit::AbortReason::Watchdog)
    /// truncation.
    pub fn run_with_cancel(&self, cancel: Option<&CancelToken>) -> Result<RunReport, SimError> {
        let start = Instant::now();
        let mut jvm = Jvm::new(self.config.clone());
        if let Some(token) = cancel {
            jvm = jvm.with_cancel(token.clone());
        }
        let mut report = jvm.run(&self.app)?;
        report.host_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Ok(report)
    }

    /// The memoization key: a hash of the full `(app spec, config)` pair.
    ///
    /// Both types expose every simulation-relevant field through `Debug`
    /// (the config includes the master seed, run budget, chaos plan, and
    /// monitor flag), and a run is a pure function of them, so equal keys
    /// imply bit-identical reports.
    #[must_use]
    pub fn memo_key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{:?}|{:?}", self.app, self.config).hash(&mut h);
        h.finish()
    }

    fn describe(&self) -> String {
        format!(
            "app={} threads={} seed={}",
            self.app.name(),
            self.config.threads,
            self.config.seed
        )
    }
}

/// Table-cell rendering of a run outcome (`ok`, `trunc`, or `quar`).
pub(crate) fn outcome_cell(outcome: &scalesim_core::RunOutcome) -> String {
    if outcome.is_ok() {
        "ok".to_owned()
    } else {
        outcome.marker().to_owned()
    }
}

/// Appends a ` (trunc)` / ` (quar)` marker to a metric cell when the run
/// behind it did not complete normally, so degraded rows stay visible in
/// the text output instead of masquerading as measurements.
pub(crate) fn mark_cell(base: String, outcome: &scalesim_core::RunOutcome) -> String {
    if outcome.is_ok() {
        base
    } else {
        format!("{base} ({})", outcome.marker())
    }
}

/// Why a sweep point appears in the failure digest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepFailureKind {
    /// The run panicked or returned an error twice; a metric-less
    /// quarantined stub stands in for it.
    Quarantined,
    /// A memoized report failed its fingerprint check at lookup and was
    /// evicted (then re-simulated).
    MemoCorruption,
}

impl fmt::Display for SweepFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SweepFailureKind::Quarantined => "quarantined",
            SweepFailureKind::MemoCorruption => "memo-corruption",
        })
    }
}

/// One entry in the sweep failure digest.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// Which `(app, threads, seed)` point failed.
    pub spec: String,
    /// Failure class.
    pub kind: SweepFailureKind,
    /// Human-readable cause (panic payload, `SimError`, or eviction note).
    pub detail: String,
    /// The failing spec itself, so the failure shrinker
    /// ([`shrink_failure`](crate::shrink_failure)) can re-execute and
    /// minimize it after the sweep.
    pub run_spec: Option<RunSpec>,
}

impl fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.kind, self.spec, self.detail)
    }
}

/// The process-wide failure digest, appended by [`run_all`].
fn failures() -> &'static Mutex<Vec<SweepFailure>> {
    static FAILURES: OnceLock<Mutex<Vec<SweepFailure>>> = OnceLock::new();
    FAILURES.get_or_init(|| Mutex::new(Vec::new()))
}

fn record_failure(failure: SweepFailure) {
    eprintln!("sweep: {failure}");
    // Recover from poisoning: the digest is exactly the structure that
    // must keep working after another thread panicked mid-failure-path,
    // and `Vec::push` cannot leave it torn.
    failures()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(failure);
}

/// Drains and returns every failure recorded since the last call
/// (quarantined runs and evicted memo entries, in occurrence order).
#[must_use]
pub fn take_sweep_failures() -> Vec<SweepFailure> {
    std::mem::take(&mut *failures().lock().unwrap_or_else(PoisonError::into_inner))
}

/// One machine-readable record per sweep run: what executed, how it
/// ended, and the harness provenance (memo status, retries, eviction)
/// that the human-readable tables drop. [`run_all`] appends one per
/// input spec, in input order; [`take_run_manifests`] drains them and
/// the CLI writes them as one JSONL line each (`manifest.jsonl`).
#[derive(Debug, Clone)]
pub struct RunManifest {
    /// Application name.
    pub app: String,
    /// Configured mutator threads.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// `ok`, `trunc`, or `quar`.
    pub outcome: String,
    /// Truncation reason / quarantine cause; empty for clean runs.
    pub detail: String,
    /// Host-side wall nanoseconds of the simulation that produced the
    /// report (0 for quarantined stubs).
    pub host_ns: u64,
    /// Simulation events processed.
    pub events: u64,
    /// Simulated end-to-end time, nanoseconds.
    pub sim_wall_ns: u64,
    /// Simulated stop-the-world GC time, nanoseconds.
    pub gc_ns: u64,
    /// How the report was obtained: `hit` (memo), `miss` (simulated), or
    /// `off` (`SCALESIM_NO_MEMO=1`).
    pub memo: String,
    /// Crash-isolation retries this sweep spent on the point (0 or 1).
    pub retries: u32,
    /// A corrupt memo entry for this key was evicted during this sweep's
    /// lookup (the run was then re-simulated).
    pub memo_evicted: bool,
    /// Invariant-monitor full scans during the run.
    pub monitor_scans: u64,
    /// Retained timeline events (0 with tracing off).
    pub trace_events: u64,
    /// Timeline events dropped by ring retention.
    pub trace_dropped: u64,
    /// Server policy label ("naive", "robust", …); empty for batch runs.
    pub policy: String,
    /// Server p50 request latency, nanoseconds (0 for batch runs or a
    /// server run with no goodput).
    pub lat_p50_ns: u64,
    /// Server p99 request latency, nanoseconds.
    pub lat_p99_ns: u64,
    /// Server p99.9 request latency, nanoseconds.
    pub lat_p999_ns: u64,
    /// The server entered degraded mode (always false for batch runs).
    /// Surfaced so CI can exit 2 on a degraded service the way it does
    /// for quarantined runs.
    pub degraded: bool,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl RunManifest {
    /// Renders the manifest as one JSONL line (no trailing newline).
    /// Carries every key `scalesim_trace::check::MANIFEST_REQUIRED_KEYS`
    /// demands.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        format!(
            concat!(
                "{{\"app\":\"{}\",\"threads\":{},\"seed\":{},\"outcome\":\"{}\",",
                "\"detail\":\"{}\",\"host_ns\":{},\"events\":{},\"sim_wall_ns\":{},",
                "\"gc_ns\":{},\"memo\":\"{}\",\"retries\":{},\"memo_evicted\":{},",
                "\"monitor_scans\":{},\"trace_events\":{},\"trace_dropped\":{},",
                "\"policy\":\"{}\",\"lat_p50_ns\":{},\"lat_p99_ns\":{},",
                "\"lat_p999_ns\":{},\"degraded\":{}}}"
            ),
            json_escape(&self.app),
            self.threads,
            self.seed,
            json_escape(&self.outcome),
            json_escape(&self.detail),
            self.host_ns,
            self.events,
            self.sim_wall_ns,
            self.gc_ns,
            json_escape(&self.memo),
            self.retries,
            self.memo_evicted,
            self.monitor_scans,
            self.trace_events,
            self.trace_dropped,
            json_escape(&self.policy),
            self.lat_p50_ns,
            self.lat_p99_ns,
            self.lat_p999_ns,
            self.degraded,
        )
    }
}

/// The process-wide manifest log, appended by [`run_all`].
fn manifests() -> &'static Mutex<Vec<RunManifest>> {
    static MANIFESTS: OnceLock<Mutex<Vec<RunManifest>>> = OnceLock::new();
    MANIFESTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drains and returns every run manifest recorded since the last call
/// (one per sweep input, in sweep order).
#[must_use]
pub fn take_run_manifests() -> Vec<RunManifest> {
    std::mem::take(&mut *manifests().lock().unwrap_or_else(PoisonError::into_inner))
}

/// A cached report plus the content fingerprint taken when it was stored.
type CacheEntry = (Arc<RunReport>, u64);

/// The process-wide run cache, keyed by [`RunSpec::memo_key`].
fn cache() -> &'static Mutex<HashMap<u64, CacheEntry>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, CacheEntry>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Content fingerprint of a report (hash of its full `Debug` rendering).
pub(crate) fn fingerprint(report: &RunReport) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{report:?}").hash(&mut h);
    h.finish()
}

/// Inserts a report into the memo cache under `key` with an
/// already-computed fingerprint — the checkpoint layer's way of
/// replaying persisted runs so a resumed sweep serves them without
/// re-simulation.
pub(crate) fn seed_cache_entry(key: u64, report: RunReport, fp: u64) {
    cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, (Arc::new(report), fp));
}

/// Drops every memoized [`RunReport`] (used by benchmarks to measure cold
/// sweeps, and available to long-lived processes to bound memory).
pub fn clear_run_cache() {
    cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clear();
}

/// Number of memoized runs currently held.
#[must_use]
pub fn run_cache_size() -> usize {
    cache().lock().unwrap_or_else(PoisonError::into_inner).len()
}

/// Total simulated events across every memoized run.
///
/// Benchmarks divide this by the sweep's wall time to report engine
/// throughput: each cached report counts once no matter how many figure
/// drivers consumed it.
#[must_use]
pub fn cached_event_total() -> u64 {
    cache()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .values()
        .map(|(r, _)| r.events_processed)
        .sum()
}

fn memo_disabled() -> bool {
    std::env::var_os("SCALESIM_NO_MEMO").is_some_and(|v| v == "1")
}

/// The (application × thread count) grid every full-figure sweep
/// shares; drivers and the campaign unit enumeration build their specs
/// through this one function so the two can never drift apart.
pub(crate) fn grid_specs(apps: &[SyntheticApp], params: &ExpParams) -> Vec<RunSpec> {
    let mut specs = Vec::with_capacity(apps.len() * params.thread_counts.len());
    for app in apps {
        for &threads in &params.thread_counts {
            specs.push(RunSpec::new(app.scaled(params.scale), threads, params.seed));
        }
    }
    specs
}

/// Number of physical cores, falling back to logical parallelism where
/// the sysfs topology is unavailable. `SCALESIM_WORKERS` overrides both.
pub(crate) fn worker_budget() -> usize {
    if let Some(v) = std::env::var_os("SCALESIM_WORKERS") {
        if let Some(n) = v.to_str().and_then(|s| s.parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    let logical = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    physical_cores().map_or(logical, |p| p.min(logical))
}

/// Counts distinct `(package, core)` pairs from the Linux sysfs topology.
fn physical_cores() -> Option<usize> {
    let mut cores = HashSet::new();
    let cpus = std::fs::read_dir("/sys/devices/system/cpu").ok()?;
    for entry in cpus.flatten() {
        let name = entry.file_name();
        let name = name.to_str().unwrap_or("");
        if !name.starts_with("cpu") || !name[3..].bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let topo = entry.path().join("topology");
        let pkg = std::fs::read_to_string(topo.join("physical_package_id")).ok()?;
        let core = std::fs::read_to_string(topo.join("core_id")).ok()?;
        cores.insert((pkg.trim().to_owned(), core.trim().to_owned()));
    }
    (!cores.is_empty()).then_some(cores.len())
}

/// One execution attempt, with panics converted into described errors.
pub(crate) fn attempt(spec: &RunSpec, cancel: Option<&CancelToken>) -> Result<RunReport, String> {
    match catch_unwind(AssertUnwindSafe(|| spec.run_with_cancel(cancel))) {
        Ok(Ok(report)) => Ok(report),
        Ok(Err(err)) => Err(err.to_string()),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic payload>");
            Err(format!("panicked: {msg}"))
        }
    }
}

/// A worker's watchdog slot: the host deadline of its in-flight run and
/// the token that cancels it. `None` between runs and for runs without
/// a watchdog budget.
type WatchdogSlot = Mutex<Option<(Instant, CancelToken)>>;

/// One attempt under the worker's watchdog slot. Arms the slot before
/// the run, clears it after, and converts a watchdog truncation into an
/// `Err` so the ordinary retry-then-quarantine path handles hung runs.
fn guarded_attempt(spec: &RunSpec, slot: &WatchdogSlot) -> Result<RunReport, String> {
    let Some(ms) = spec.config.budget.watchdog_ms else {
        return attempt(spec, None);
    };
    let token = CancelToken::new();
    *slot.lock().unwrap_or_else(PoisonError::into_inner) =
        Some((Instant::now() + Duration::from_millis(ms), token.clone()));
    let result = attempt(spec, Some(&token));
    *slot.lock().unwrap_or_else(PoisonError::into_inner) = None;
    match result {
        Ok(report) if matches!(report.outcome, RunOutcome::Truncated(AbortReason::Watchdog)) => {
            Err(format!("watchdog: run exceeded host deadline of {ms} ms"))
        }
        other => other,
    }
}

/// Whether a completed report may be persisted to the checkpoint store
/// (or a campaign worker's segment).
/// Host-time-dependent truncations are excluded: they encode transient
/// host conditions, and replaying them would make a resumed sweep
/// diverge from an uninterrupted one.
pub(crate) fn checkpointable(report: &RunReport) -> bool {
    !matches!(
        report.outcome,
        RunOutcome::Truncated(AbortReason::Watchdog | AbortReason::MaxHostMs(_))
    )
}

/// Executes all runs and returns reports in input order.
///
/// Previously-cached runs are served from the memo (after a fingerprint
/// re-check); the remainder execute on up to [physical-core-count] worker
/// threads. Duplicate specs within one call are simulated once.
///
/// A run that panics or errors is retried once and then quarantined: its
/// slot is filled by a metric-less report with a
/// [`Quarantined`](scalesim_core::RunOutcome::Quarantined) outcome, the
/// sweep continues, and the event lands in the failure digest
/// ([`take_sweep_failures`]). The sweep itself never panics on a failing
/// run.
#[must_use]
pub fn run_all(specs: &[RunSpec]) -> Vec<RunReport> {
    if specs.is_empty() {
        return Vec::new();
    }
    let use_memo = !memo_disabled();
    let keys: Vec<u64> = specs.iter().map(RunSpec::memo_key).collect();

    // Resolve what is already known — verifying each entry's fingerprint
    // and evicting corrupt ones — then deduplicate the remainder. Keys
    // seeded by a checkpoint resume are claimed here (once, process-wide)
    // so their manifests report the provenance the original, uninterrupted
    // sweep would have: `memo:"miss"` plus the retries the run actually
    // cost when it first executed.
    let mut resolved: HashMap<u64, Arc<RunReport>> = HashMap::new();
    let mut evicted: HashSet<u64> = HashSet::new();
    let mut restored: HashMap<u64, u32> = HashMap::new();
    if use_memo {
        let mut cached = cache().lock().unwrap_or_else(PoisonError::into_inner);
        for (i, &k) in keys.iter().enumerate() {
            if resolved.contains_key(&k) {
                continue;
            }
            if let Some((r, stored_fp)) = cached.get(&k) {
                if fingerprint(r) == *stored_fp {
                    resolved.insert(k, Arc::clone(r));
                    if let Some(retries) = checkpoint::take_restored(k) {
                        restored.insert(k, retries);
                    }
                } else {
                    record_failure(SweepFailure {
                        spec: specs[i].describe(),
                        kind: SweepFailureKind::MemoCorruption,
                        detail: "cached report failed its fingerprint check; \
                                 evicted and re-simulated"
                            .to_owned(),
                        run_spec: Some(specs[i].clone()),
                    });
                    evicted.insert(k);
                    cached.remove(&k);
                    // An evicted entry's restored provenance is stale too.
                    let _ = checkpoint::take_restored(k);
                }
            }
        }
    }
    let memo_hits: HashSet<u64> = resolved.keys().copied().collect();
    let mut pending: Vec<usize> = Vec::new(); // indices into `specs`
    let mut queued: HashSet<u64> = HashSet::new();
    for (i, &k) in keys.iter().enumerate() {
        if !resolved.contains_key(&k) && queued.insert(k) {
            pending.push(i);
        }
    }

    let mut quarantined: HashSet<u64> = HashSet::new();
    let mut retries_by_key: HashMap<u64, u32> = HashMap::new();
    for (&k, &r) in &restored {
        if r > 0 {
            retries_by_key.insert(k, r);
        }
    }
    if !pending.is_empty() {
        let workers = worker_budget().min(pending.len());
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, Result<RunReport, String>, u32)>();

        // Watchdog scaffolding: one deadline slot per worker. The
        // watchdog thread only spawns when some pending spec carries a
        // host deadline; it scans the slots on a monotonic clock and
        // cancels overdue runs, then exits once every worker is done.
        let wd_slots: Vec<WatchdogSlot> = (0..workers).map(|_| Mutex::new(None)).collect();
        let min_watchdog_ms = pending
            .iter()
            .filter_map(|&i| specs[i].config.budget.watchdog_ms)
            .min();
        let active_workers = AtomicUsize::new(workers);

        std::thread::scope(|scope| {
            if let Some(ms) = min_watchdog_ms {
                let wd_slots = &wd_slots;
                let active_workers = &active_workers;
                let poll = Duration::from_millis((ms / 4).clamp(5, 50));
                scope.spawn(move || {
                    while active_workers.load(Ordering::Acquire) > 0 {
                        std::thread::sleep(poll);
                        let now = Instant::now();
                        for slot in wd_slots {
                            let guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
                            if let Some((deadline, token)) = guard.as_ref() {
                                if now >= *deadline {
                                    token.cancel();
                                }
                            }
                        }
                    }
                });
            }
            for slot in &wd_slots {
                let tx = tx.clone();
                let next = &next;
                let pending = &pending;
                let keys = &keys;
                let active_workers = &active_workers;
                scope.spawn(move || {
                    loop {
                        let n = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = pending.get(n) else { break };
                        // Crash isolation: one retry, then the failure
                        // travels back as data rather than tearing the
                        // sweep down.
                        let (outcome, retries) = match guarded_attempt(&specs[i], slot) {
                            Ok(report) => (Ok(report), 0),
                            Err(first) => match guarded_attempt(&specs[i], slot) {
                                Ok(report) => (Ok(report), 1),
                                Err(second) => {
                                    let msg = if first == second {
                                        format!("{first} (and again on retry)")
                                    } else {
                                        format!("{first}; retry: {second}")
                                    };
                                    (Err(msg), 1)
                                }
                            },
                        };
                        // Persist the completion before handing the result
                        // over: a crash after this point costs nothing on
                        // resume. The stored fingerprint is always the true
                        // one (chaos may corrupt the in-memory memo entry
                        // below, but never the durable record).
                        if use_memo {
                            if let Ok(report) = &outcome {
                                if checkpointable(report) {
                                    checkpoint::append_completed(
                                        keys[i],
                                        report,
                                        fingerprint(report),
                                        retries,
                                    );
                                }
                            }
                        }
                        // The receiver outlives the scope; a send cannot fail.
                        tx.send((i, outcome, retries))
                            .expect("result channel closed");
                    }
                    active_workers.fetch_sub(1, Ordering::Release);
                });
            }
        });
        drop(tx);

        // All workers have exited; drain the (buffered) channel.
        for (i, outcome, retries) in rx {
            let k = keys[i];
            if retries > 0 {
                retries_by_key.insert(k, retries);
            }
            match outcome {
                Ok(report) => {
                    resolved.insert(k, Arc::new(report));
                }
                Err(why) => {
                    record_failure(SweepFailure {
                        spec: specs[i].describe(),
                        kind: SweepFailureKind::Quarantined,
                        detail: why.clone(),
                        run_spec: Some(specs[i].clone()),
                    });
                    quarantined.insert(k);
                    let spec = &specs[i];
                    resolved.insert(
                        k,
                        Arc::new(RunReport::quarantined(
                            spec.app.name(),
                            spec.config.threads,
                            spec.config.cores(),
                            why.clone(),
                        )),
                    );
                }
            }
        }

        if use_memo {
            // Quarantined stubs are never memoized: a later sweep gets a
            // fresh chance at the point. Truncated runs are deterministic
            // (the budget is part of the key) and cache normally.
            let mut chaos = ChaosPlan::new(specs[0].config.chaos, specs[0].config.seed);
            let mut cached = cache().lock().unwrap_or_else(PoisonError::into_inner);
            for &i in &pending {
                let k = keys[i];
                if quarantined.contains(&k) {
                    continue;
                }
                if let Some(r) = resolved.get(&k) {
                    let mut fp = fingerprint(r);
                    if chaos.fires(FaultClass::MemoCorrupt) {
                        // Deliberate cache corruption: store a fingerprint
                        // that cannot match, so the next lookup must detect
                        // the entry, evict it, and re-simulate.
                        fp ^= 0x05ca_1ab1_e0dd_ba11;
                    }
                    cached.entry(k).or_insert_with(|| (Arc::clone(r), fp));
                }
            }
        }
    }

    // One manifest per input spec, in input order, carrying the harness
    // provenance the reports themselves cannot know.
    let new_manifests: Vec<RunManifest> = specs
        .iter()
        .zip(&keys)
        .map(|(spec, k)| {
            let r: &RunReport = resolved
                .get(k)
                .expect("every requested run resolved by cache, worker, or quarantine");
            let memo = if !use_memo {
                "off"
            } else if restored.contains_key(k) {
                // Checkpoint-restored: report what the uninterrupted
                // sweep would have said when it first ran the point.
                "miss"
            } else if memo_hits.contains(k) {
                "hit"
            } else {
                "miss"
            };
            RunManifest {
                app: spec.app.name().to_owned(),
                threads: spec.config.threads,
                seed: spec.config.seed,
                outcome: outcome_cell(&r.outcome),
                detail: if r.outcome.is_ok() {
                    String::new()
                } else {
                    r.outcome.to_string()
                },
                host_ns: r.host_ns,
                events: r.events_processed,
                sim_wall_ns: r.wall_time.as_nanos(),
                gc_ns: r.gc_time.as_nanos(),
                memo: memo.to_owned(),
                retries: retries_by_key.get(k).copied().unwrap_or(0),
                memo_evicted: evicted.contains(k),
                monitor_scans: r.counters.get(CounterId::MonitorScans),
                trace_events: r.timeline.len() as u64,
                trace_dropped: r.timeline.dropped(),
                policy: r
                    .server
                    .as_ref()
                    .map_or_else(String::new, |s| s.policy.clone()),
                lat_p50_ns: r
                    .server
                    .as_ref()
                    .and_then(|s| s.latency_p(0.50))
                    .unwrap_or(0),
                lat_p99_ns: r
                    .server
                    .as_ref()
                    .and_then(|s| s.latency_p(0.99))
                    .unwrap_or(0),
                lat_p999_ns: r
                    .server
                    .as_ref()
                    .and_then(|s| s.latency_p(0.999))
                    .unwrap_or(0),
                degraded: r.server.as_ref().is_some_and(|s| s.degraded),
            }
        })
        .collect();
    manifests()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .extend(new_manifests);

    keys.iter()
        .map(|k| {
            RunReport::clone(
                resolved
                    .get(k)
                    .expect("every requested run resolved by cache, worker, or quarantine"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_workloads::{sunflow, xalan};

    #[test]
    fn results_come_back_in_input_order() {
        let specs = vec![
            RunSpec::new(xalan().scaled(0.002), 2, 1),
            RunSpec::new(sunflow().scaled(0.002), 4, 1),
            RunSpec::new(xalan().scaled(0.002), 8, 1),
        ];
        let reports = run_all(&specs);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].app, "xalan");
        assert_eq!(reports[0].threads, 2);
        assert_eq!(reports[1].app, "sunflow");
        assert_eq!(reports[2].threads, 8);
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = RunSpec::new(xalan().scaled(0.002), 4, 7);
        let serial = spec.run().unwrap();
        let parallel = run_all(&[spec])[0].clone();
        assert_eq!(serial.wall_time, parallel.wall_time);
        assert_eq!(serial.events_processed, parallel.events_processed);
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_all(&[]).is_empty());
    }

    #[test]
    fn memo_keys_separate_app_threads_and_seed() {
        let base = RunSpec::new(xalan().scaled(0.002), 4, 7);
        assert_eq!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.002), 4, 7).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.002), 8, 7).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.002), 4, 8).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(sunflow().scaled(0.002), 4, 7).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.003), 4, 7).memo_key()
        );
    }

    #[test]
    fn memo_keys_separate_chaos_and_budget() {
        use scalesim_simkit::{ChaosConfig, RunBudget};
        let base = RunSpec::new(xalan().scaled(0.002), 4, 7);
        let mut chaotic = base.clone();
        chaotic.config.chaos = ChaosConfig {
            drop_wakeup_period: 64,
            ..ChaosConfig::default()
        };
        assert_ne!(base.memo_key(), chaotic.memo_key());
        let mut budgeted = base.clone();
        budgeted.config.budget = RunBudget {
            max_events: 1000,
            ..budgeted.config.budget
        };
        assert_ne!(base.memo_key(), budgeted.memo_key());
    }

    #[test]
    fn duplicate_specs_share_one_simulation() {
        let spec = RunSpec::new(sunflow().scaled(0.002), 3, 21);
        let reports = run_all(&[spec.clone(), spec.clone(), spec]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].wall_time, reports[1].wall_time);
        assert_eq!(reports[1].events_processed, reports[2].events_processed);
        // Deduplicated runs clone the same simulation, including its
        // host-side timing.
        assert_eq!(reports[0].host_ns, reports[1].host_ns);
    }

    #[test]
    fn memoized_rerun_matches_cold_run() {
        let spec = RunSpec::new(xalan().scaled(0.002), 5, 13);
        let cold = spec.run().unwrap();
        let first = run_all(std::slice::from_ref(&spec));
        let second = run_all(std::slice::from_ref(&spec)); // served by memo
        for r in [&first[0], &second[0]] {
            assert_eq!(r.wall_time, cold.wall_time);
            assert_eq!(r.events_processed, cold.events_processed);
            assert_eq!(r.gc_time, cold.gc_time);
        }
    }

    #[test]
    fn run_records_host_wall_time() {
        let report = RunSpec::new(xalan().scaled(0.002), 2, 5).run().unwrap();
        assert!(report.host_ns > 0);
    }

    #[test]
    fn cache_introspection_works() {
        clear_run_cache();
        let before = run_cache_size();
        let _ = run_all(&[RunSpec::new(sunflow().scaled(0.002), 2, 77)]);
        assert!(run_cache_size() > before || memo_disabled());
    }

    /// Serializes the tests that drain the process-wide failure digest.
    fn digest_guard() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        GUARD
            .get_or_init(|| Mutex::new(()))
            .lock()
            .expect("digest guard poisoned")
    }

    #[test]
    fn panicking_run_is_quarantined_without_aborting_the_sweep() {
        use scalesim_core::RunOutcome;
        use scalesim_simkit::ChaosConfig;
        let _guard = digest_guard();
        let _ = take_sweep_failures(); // isolate this test's digest
        let mut doomed = RunSpec::new(xalan().scaled(0.002), 2, 31);
        doomed.config.chaos = ChaosConfig {
            panic_at_event: 500,
            ..ChaosConfig::default()
        };
        let healthy = RunSpec::new(xalan().scaled(0.002), 4, 31);
        let reports = run_all(&[doomed.clone(), healthy]);
        assert_eq!(reports.len(), 2);
        assert!(
            matches!(reports[0].outcome, RunOutcome::Quarantined(_)),
            "{:?}",
            reports[0].outcome
        );
        assert!(reports[1].outcome.is_ok());
        assert_eq!(reports[1].threads, 4);
        let digest = take_sweep_failures();
        assert!(
            digest
                .iter()
                .any(|f| f.kind == SweepFailureKind::Quarantined
                    && f.detail.contains("deliberate panic")),
            "{digest:?}"
        );
        // Quarantined points are never memoized: a rerun attempts the
        // simulation afresh (and, with the same chaos plan, quarantines
        // again rather than serving a cached stub).
        assert!(!cache()
            .lock()
            .expect("run cache poisoned")
            .contains_key(&doomed.memo_key()));
        let _ = take_sweep_failures();
    }

    #[test]
    fn manifests_record_each_spec_with_provenance() {
        let _guard = digest_guard();
        let _ = take_run_manifests();
        let seed = 920_001;
        let specs = vec![
            RunSpec::new(xalan().scaled(0.002), 2, seed),
            RunSpec::new(sunflow().scaled(0.002), 3, seed),
        ];
        let _ = run_all(&specs);
        // Other tests' sweeps may interleave; keep only this test's seed.
        let mine: Vec<RunManifest> = take_run_manifests()
            .into_iter()
            .filter(|m| m.seed == seed)
            .collect();
        assert_eq!(mine.len(), 2);
        assert_eq!(mine[0].app, "xalan");
        assert_eq!(mine[0].threads, 2);
        assert_eq!(mine[1].app, "sunflow");
        assert_eq!(mine[0].outcome, "ok");
        assert!(mine[0].events > 0);
        assert_eq!(mine[0].retries, 0);
        assert!(!mine[0].memo_evicted);
        for m in &mine {
            scalesim_trace::check::validate_manifest_line(&m.to_json_line())
                .expect("manifest line validates");
        }
        // A repeat sweep is served by the memo and says so.
        let _ = run_all(&specs);
        let again: Vec<RunManifest> = take_run_manifests()
            .into_iter()
            .filter(|m| m.seed == seed)
            .collect();
        assert_eq!(again.len(), 2);
        if !memo_disabled() {
            assert!(again.iter().all(|m| m.memo == "hit"), "{again:?}");
        }
    }

    #[test]
    fn quarantined_point_lands_in_the_manifest() {
        use scalesim_simkit::ChaosConfig;
        let _guard = digest_guard();
        let _ = take_run_manifests();
        let _ = take_sweep_failures();
        let seed = 920_077;
        let mut doomed = RunSpec::new(xalan().scaled(0.002), 2, seed);
        doomed.config.chaos = ChaosConfig {
            panic_at_event: 400,
            ..ChaosConfig::default()
        };
        let _ = run_all(&[doomed]);
        let mine: Vec<RunManifest> = take_run_manifests()
            .into_iter()
            .filter(|m| m.seed == seed)
            .collect();
        assert_eq!(mine.len(), 1);
        assert_eq!(mine[0].outcome, "quar");
        assert_eq!(mine[0].retries, 1);
        assert!(mine[0].detail.contains("deliberate panic"), "{mine:?}");
        scalesim_trace::check::validate_manifest_line(&mine[0].to_json_line())
            .expect("quarantined manifest line validates");
        let _ = take_sweep_failures();
    }

    #[test]
    fn corrupted_memo_entry_is_evicted_and_rerun() {
        let _guard = digest_guard();
        let _ = take_sweep_failures();
        let spec = RunSpec::new(sunflow().scaled(0.002), 2, 91);
        let clean = run_all(std::slice::from_ref(&spec));
        if memo_disabled() {
            return;
        }
        // Corrupt the stored fingerprint by hand (what MemoCorrupt does
        // from inside the harness).
        {
            let mut cached = cache().lock().expect("run cache poisoned");
            let entry = cached.get_mut(&spec.memo_key()).expect("entry memoized");
            entry.1 ^= 1;
        }
        let healed = run_all(std::slice::from_ref(&spec));
        assert_eq!(clean[0].wall_time, healed[0].wall_time);
        assert_eq!(clean[0].events_processed, healed[0].events_processed);
        let digest = take_sweep_failures();
        assert!(
            digest
                .iter()
                .any(|f| f.kind == SweepFailureKind::MemoCorruption),
            "{digest:?}"
        );
        // The healed entry verifies again.
        let again = run_all(std::slice::from_ref(&spec));
        assert_eq!(again[0].wall_time, clean[0].wall_time);
        assert!(take_sweep_failures().is_empty());
    }
}
