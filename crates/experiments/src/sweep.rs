//! Parallel, memoizing execution of independent simulation runs.
//!
//! A figure is a sweep over (application × thread count). Each run is an
//! independent, deterministic, single-threaded simulation, so the sweep
//! parallelizes embarrassingly across host cores with `std::thread::scope`.
//! Results come back in input order regardless of completion order.
//!
//! Two properties keep full-figure regeneration cheap:
//!
//! * **Memoization.** Runs are keyed by a hash of `(app spec, JvmConfig)`
//!   (the config includes the seed). Since a run is a pure function of that
//!   key, drivers that re-simulate identical points — `fig1a`/`fig1b` and
//!   the scalability table sweep the same grid, ablations re-run baselines —
//!   share one [`RunReport`] through a process-wide cache. Set
//!   `SCALESIM_NO_MEMO=1` to force re-simulation (benchmarks do).
//! * **Bounded fan-out.** Workers are capped at *physical* core count
//!   (SMT siblings share execution units, and oversubscribed fan-out is
//!   exactly the anti-pattern the paper's related work warns about), and
//!   each worker's result travels over a channel and is reordered by input
//!   index — no per-slot locks.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::Instant;

use scalesim_core::{Jvm, JvmConfig, RunReport};
use scalesim_workloads::{AppModel, SyntheticApp};

/// One run request: an application and the VM configuration to run it
/// under.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// The application (already scaled as desired).
    pub app: SyntheticApp,
    /// VM configuration.
    pub config: JvmConfig,
}

impl RunSpec {
    /// Convenience constructor for the common case: `app` at `threads`
    /// threads with cores following threads (the paper's methodology).
    #[must_use]
    pub fn new(app: SyntheticApp, threads: usize, seed: u64) -> Self {
        RunSpec {
            app,
            config: JvmConfig::builder().threads(threads).seed(seed).build(),
        }
    }

    /// Executes this run (bypassing the cache), recording host wall time
    /// in [`RunReport::host_ns`].
    #[must_use]
    pub fn run(&self) -> RunReport {
        let start = Instant::now();
        let mut report = Jvm::new(self.config.clone()).run(&self.app);
        report.host_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        report
    }

    /// The memoization key: a hash of the full `(app spec, config)` pair.
    ///
    /// Both types expose every simulation-relevant field through `Debug`
    /// (the config includes the master seed), and a run is a pure function
    /// of them, so equal keys imply bit-identical reports.
    #[must_use]
    pub fn memo_key(&self) -> u64 {
        let mut h = DefaultHasher::new();
        format!("{:?}|{:?}", self.app, self.config).hash(&mut h);
        h.finish()
    }

    fn describe(&self) -> String {
        format!(
            "app={} threads={} seed={}",
            self.app.name(),
            self.config.threads,
            self.config.seed
        )
    }
}

/// The process-wide run cache, keyed by [`RunSpec::memo_key`].
fn cache() -> &'static Mutex<HashMap<u64, Arc<RunReport>>> {
    static CACHE: OnceLock<Mutex<HashMap<u64, Arc<RunReport>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops every memoized [`RunReport`] (used by benchmarks to measure cold
/// sweeps, and available to long-lived processes to bound memory).
pub fn clear_run_cache() {
    cache().lock().expect("run cache poisoned").clear();
}

/// Number of memoized runs currently held.
#[must_use]
pub fn run_cache_size() -> usize {
    cache().lock().expect("run cache poisoned").len()
}

/// Total simulated events across every memoized run.
///
/// Benchmarks divide this by the sweep's wall time to report engine
/// throughput: each cached report counts once no matter how many figure
/// drivers consumed it.
#[must_use]
pub fn cached_event_total() -> u64 {
    cache()
        .lock()
        .expect("run cache poisoned")
        .values()
        .map(|r| r.events_processed)
        .sum()
}

fn memo_disabled() -> bool {
    std::env::var_os("SCALESIM_NO_MEMO").is_some_and(|v| v == "1")
}

/// Number of physical cores, falling back to logical parallelism where
/// the sysfs topology is unavailable. `SCALESIM_WORKERS` overrides both.
fn worker_budget() -> usize {
    if let Some(v) = std::env::var_os("SCALESIM_WORKERS") {
        if let Some(n) = v.to_str().and_then(|s| s.parse::<usize>().ok()) {
            return n.max(1);
        }
    }
    let logical = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4);
    physical_cores().map_or(logical, |p| p.min(logical))
}

/// Counts distinct `(package, core)` pairs from the Linux sysfs topology.
fn physical_cores() -> Option<usize> {
    let mut cores = HashSet::new();
    let cpus = std::fs::read_dir("/sys/devices/system/cpu").ok()?;
    for entry in cpus.flatten() {
        let name = entry.file_name();
        let name = name.to_str().unwrap_or("");
        if !name.starts_with("cpu") || !name[3..].bytes().all(|b| b.is_ascii_digit()) {
            continue;
        }
        let topo = entry.path().join("topology");
        let pkg = std::fs::read_to_string(topo.join("physical_package_id")).ok()?;
        let core = std::fs::read_to_string(topo.join("core_id")).ok()?;
        cores.insert((pkg.trim().to_owned(), core.trim().to_owned()));
    }
    (!cores.is_empty()).then_some(cores.len())
}

/// Executes all runs and returns reports in input order.
///
/// Previously-cached runs are served from the memo; the remainder execute
/// on up to [physical-core-count] worker threads. Duplicate specs within
/// one call are simulated once.
///
/// # Panics
///
/// Panics if any individual simulation panics, identifying the failing
/// spec (app, threads, seed) in the message.
#[must_use]
pub fn run_all(specs: &[RunSpec]) -> Vec<RunReport> {
    if specs.is_empty() {
        return Vec::new();
    }
    let use_memo = !memo_disabled();
    let keys: Vec<u64> = specs.iter().map(RunSpec::memo_key).collect();

    // Resolve what is already known and deduplicate the remainder.
    let mut resolved: HashMap<u64, Arc<RunReport>> = HashMap::new();
    if use_memo {
        let cached = cache().lock().expect("run cache poisoned");
        for &k in &keys {
            if let Some(r) = cached.get(&k) {
                resolved.insert(k, Arc::clone(r));
            }
        }
    }
    let mut pending: Vec<usize> = Vec::new(); // indices into `specs`
    let mut queued: HashSet<u64> = HashSet::new();
    for (i, &k) in keys.iter().enumerate() {
        if !resolved.contains_key(&k) && queued.insert(k) {
            pending.push(i);
        }
    }

    if !pending.is_empty() {
        let workers = worker_budget().min(pending.len());
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(u64, Result<RunReport, String>)>();

        std::thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let pending = &pending;
                let keys = &keys;
                scope.spawn(move || loop {
                    let n = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&i) = pending.get(n) else { break };
                    let outcome =
                        catch_unwind(AssertUnwindSafe(|| specs[i].run())).map_err(|payload| {
                            let msg = payload
                                .downcast_ref::<String>()
                                .map(String::as_str)
                                .or_else(|| payload.downcast_ref::<&str>().copied())
                                .unwrap_or("<non-string panic payload>");
                            format!(
                                "simulation worker panicked ({}): {msg}",
                                specs[i].describe()
                            )
                        });
                    // The receiver outlives the scope; a send cannot fail.
                    tx.send((keys[i], outcome)).expect("result channel closed");
                });
            }
        });
        drop(tx);

        // All workers have exited; drain the (buffered) channel and fail
        // loudly on the first worker panic, re-raising its description.
        for (key, outcome) in rx {
            match outcome {
                Ok(report) => {
                    resolved.insert(key, Arc::new(report));
                }
                Err(described) => panic!("{described}"),
            }
        }

        if use_memo {
            let mut cached = cache().lock().expect("run cache poisoned");
            for &i in &pending {
                let k = keys[i];
                if let Some(r) = resolved.get(&k) {
                    cached.entry(k).or_insert_with(|| Arc::clone(r));
                }
            }
        }
    }

    keys.iter()
        .map(|k| {
            RunReport::clone(
                resolved
                    .get(k)
                    .expect("every requested run resolved by cache or worker"),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_workloads::{sunflow, xalan};

    #[test]
    fn results_come_back_in_input_order() {
        let specs = vec![
            RunSpec::new(xalan().scaled(0.002), 2, 1),
            RunSpec::new(sunflow().scaled(0.002), 4, 1),
            RunSpec::new(xalan().scaled(0.002), 8, 1),
        ];
        let reports = run_all(&specs);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].app, "xalan");
        assert_eq!(reports[0].threads, 2);
        assert_eq!(reports[1].app, "sunflow");
        assert_eq!(reports[2].threads, 8);
    }

    #[test]
    fn parallel_matches_serial() {
        let spec = RunSpec::new(xalan().scaled(0.002), 4, 7);
        let serial = spec.run();
        let parallel = run_all(&[spec])[0].clone();
        assert_eq!(serial.wall_time, parallel.wall_time);
        assert_eq!(serial.events_processed, parallel.events_processed);
    }

    #[test]
    fn empty_sweep_is_fine() {
        assert!(run_all(&[]).is_empty());
    }

    #[test]
    fn memo_keys_separate_app_threads_and_seed() {
        let base = RunSpec::new(xalan().scaled(0.002), 4, 7);
        assert_eq!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.002), 4, 7).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.002), 8, 7).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.002), 4, 8).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(sunflow().scaled(0.002), 4, 7).memo_key()
        );
        assert_ne!(
            base.memo_key(),
            RunSpec::new(xalan().scaled(0.003), 4, 7).memo_key()
        );
    }

    #[test]
    fn duplicate_specs_share_one_simulation() {
        let spec = RunSpec::new(sunflow().scaled(0.002), 3, 21);
        let reports = run_all(&[spec.clone(), spec.clone(), spec]);
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0].wall_time, reports[1].wall_time);
        assert_eq!(reports[1].events_processed, reports[2].events_processed);
        // Deduplicated runs clone the same simulation, including its
        // host-side timing.
        assert_eq!(reports[0].host_ns, reports[1].host_ns);
    }

    #[test]
    fn memoized_rerun_matches_cold_run() {
        let spec = RunSpec::new(xalan().scaled(0.002), 5, 13);
        let cold = spec.run();
        let first = run_all(std::slice::from_ref(&spec));
        let second = run_all(std::slice::from_ref(&spec)); // served by memo
        for r in [&first[0], &second[0]] {
            assert_eq!(r.wall_time, cold.wall_time);
            assert_eq!(r.events_processed, cold.events_processed);
            assert_eq!(r.gc_time, cold.gc_time);
        }
    }

    #[test]
    fn run_records_host_wall_time() {
        let report = RunSpec::new(xalan().scaled(0.002), 2, 5).run();
        assert!(report.host_ns > 0);
    }

    #[test]
    fn cache_introspection_works() {
        clear_run_cache();
        let before = run_cache_size();
        let _ = run_all(&[RunSpec::new(sunflow().scaled(0.002), 2, 77)]);
        assert!(run_cache_size() > before || memo_disabled());
    }
}
