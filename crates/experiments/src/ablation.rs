//! Ablations for the paper's two future-work proposals (§IV).
//!
//! 1. **Biased scheduling** — "worker threads are scheduled at the
//!    different phases of the execution to reduce competitions for heap
//!    and locks": cohort scheduling restricts which threads run
//!    concurrently, lowering the aggregate allocation rate each in-flight
//!    object is exposed to.
//! 2. **Compartmentalized heap** — "isolate objects from lifetime
//!    interference": per-thread nursery heaplets make an object's
//!    survival depend only on its own thread's allocation, not the
//!    VM-wide clock.
//!
//! Both are expected to reduce nursery survival and GC time at high
//! thread counts, potentially at some wall-time cost (biased scheduling
//! deliberately idles cores).

use scalesim_core::{JvmConfig, RunOutcome, RunReport, SimError};
use scalesim_metrics::{fmt2, fmt_pct, Table};
use scalesim_sched::SchedPolicy;
use scalesim_simkit::SimDuration;
use scalesim_workloads::app_by_name;

use crate::params::ExpParams;
use crate::sweep::{outcome_cell, run_all, RunSpec};

/// One measured configuration in an ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Application name.
    pub app: String,
    /// Thread count.
    pub threads: usize,
    /// Variant label (`baseline`, `biased-2`, `heaplets`, …).
    pub variant: String,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// Total GC pause time (for heaplets this sums *thread-local* pauses
    /// that overlap in wall time, so it can exceed its wall contribution).
    pub gc: SimDuration,
    /// Longest single pause.
    pub max_pause: SimDuration,
    /// Fraction of objects with lifespans below 1 KiB.
    pub frac_below_1k: f64,
    /// Mean nursery survival rate across minor collections.
    pub survival: f64,
    /// Bytes promoted to the mature generation.
    pub promoted: u64,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

impl AblationRow {
    fn from_report(variant: &str, r: &RunReport) -> Self {
        AblationRow {
            app: r.app.clone(),
            threads: r.threads,
            variant: variant.to_owned(),
            wall: r.wall_time,
            gc: r.gc_time,
            max_pause: r.gc.max_pause(),
            frac_below_1k: r.trace.fraction_below(1 << 10),
            survival: r.gc.minor_survival_rate().unwrap_or(0.0),
            promoted: r.gc.promoted_bytes(),
            outcome: r.outcome.clone(),
        }
    }
}

/// An ablation study: baseline vs. variants over a thread sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// All measured rows.
    pub rows: Vec<AblationRow>,
}

impl Ablation {
    /// The row for `(variant, threads)`.
    #[must_use]
    pub fn row(&self, variant: &str, threads: usize) -> Option<&AblationRow> {
        self.rows
            .iter()
            .find(|r| r.variant == variant && r.threads == threads)
    }

    /// `gc_variant / gc_baseline` at a thread count (`< 1.0` means the
    /// variant reduced GC time).
    #[must_use]
    pub fn gc_ratio(&self, variant: &str, threads: usize) -> Option<f64> {
        let v = self.row(variant, threads)?.gc.as_secs_f64();
        let b = self.row("baseline", threads)?.gc.as_secs_f64();
        (b > 0.0).then(|| v / b)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "app",
            "threads",
            "variant",
            "wall",
            "gc",
            "max pause",
            "<1KiB",
            "survival",
            "promoted",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                r.threads.to_string(),
                r.variant.clone(),
                r.wall.to_string(),
                r.gc.to_string(),
                r.max_pause.to_string(),
                fmt_pct(r.frac_below_1k),
                fmt2(r.survival * 100.0) + "%",
                r.promoted.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

fn run_variants(
    app: &str,
    params: &ExpParams,
    variants: &[(&str, JvmConfig)],
) -> Result<Ablation, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for &threads in &params.thread_counts {
        for (label, base) in variants {
            let mut config = base.clone();
            config.threads = threads;
            specs.push(RunSpec {
                app: model.scaled(params.scale),
                config,
            });
            labels.push(label.to_owned());
        }
    }
    let reports = run_all(&specs);
    Ok(Ablation {
        rows: labels
            .iter()
            .zip(reports.iter())
            .map(|(label, r)| AblationRow::from_report(label, r))
            .collect(),
    })
}

/// Ablation `abl-sched`: fair scheduling vs. biased cohort scheduling
/// (2 and 4 cohorts) on `app`.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_biased_sched(app: &str, params: &ExpParams) -> Result<Ablation, SimError> {
    let baseline = JvmConfig::builder().seed(params.seed).build()?;
    let biased2 = JvmConfig::builder()
        .seed(params.seed)
        .policy(SchedPolicy::Biased { cohorts: 2 })
        .build()?;
    let biased4 = JvmConfig::builder()
        .seed(params.seed)
        .policy(SchedPolicy::Biased { cohorts: 4 })
        .build()?;
    run_variants(
        app,
        params,
        &[
            ("baseline", baseline),
            ("biased-2", biased2),
            ("biased-4", biased4),
        ],
    )
}

/// Ablation `abl-heap`: shared nursery vs. per-thread heaplets on `app`.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_heaplets(app: &str, params: &ExpParams) -> Result<Ablation, SimError> {
    let baseline = JvmConfig::builder().seed(params.seed).build()?;
    let heaplets = JvmConfig::builder()
        .seed(params.seed)
        .heaplets(true)
        .build()?;
    run_variants(
        app,
        params,
        &[("baseline", baseline), ("heaplets", heaplets)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick().with_scale(0.01).with_threads(vec![8])
    }

    #[test]
    fn biased_study_produces_three_variants() {
        let a = run_biased_sched("xalan", &tiny()).unwrap();
        assert_eq!(a.rows.len(), 3);
        assert!(a.row("baseline", 8).is_some());
        assert!(a.row("biased-2", 8).is_some());
        assert!(a.row("biased-4", 8).is_some());
        assert!(a.row("nope", 8).is_none());
    }

    #[test]
    fn heaplets_study_produces_two_variants() {
        let a = run_heaplets("xalan", &tiny()).unwrap();
        assert_eq!(a.rows.len(), 2);
        let t = a.table();
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn gc_ratio_compares_to_baseline() {
        let a = run_heaplets("xalan", &tiny()).unwrap();
        if let Some(ratio) = a.gc_ratio("heaplets", 8) {
            assert!(ratio > 0.0);
        }
    }
}
