//! `ext-server`: server-scale request workloads with overload control.
//!
//! The paper's workloads are batch benchmarks; real manycore deployments
//! run request/response services whose scalability failures look
//! different — not a flattening speedup curve but a *metastable* collapse:
//! a transient fault (here a GC stall burst) tips a saturated server into
//! a retry storm that outlives the fault itself (Bronson et al.,
//! HotOS'21). This study sweeps three policies across the thread axis at
//! a per-worker offered load:
//!
//! * **no-fault** — the robust policy with no injected fault: the goodput
//!   baseline the other two scenarios are judged against.
//! * **naive** — immediate retries, unbounded retry budget, no admission
//!   control, plus a transient GC-stall fault window. Arrivals backlog
//!   behind the stall, timeouts fire, every timeout retries immediately,
//!   and the amplified load keeps the queue saturated long after the
//!   stall ends: tail goodput (measured well after the fault window)
//!   stays collapsed.
//! * **robust** — the same fault under capped exponential backoff with
//!   deterministic jitter, a bounded retry count, admission control
//!   (concurrency restriction), and deadline shedding at dequeue. The
//!   backlog drains once the stall ends and tail goodput recovers to
//!   within a few percent of the no-fault baseline.
//!
//! Tail goodput is measured over `[measure_from, horizon)` — a window
//! that starts well after the fault window closes — so the contrast is
//! specifically "did the overload outlive the fault", not "did the fault
//! cost throughput while it was active" (it always does).

use scalesim_core::{JvmConfig, RunOutcome, ServerStats, SimError};
use scalesim_metrics::Table;
use scalesim_simkit::ChaosConfig;
use scalesim_workloads::{xalan, ServerSpec};

use crate::params::ExpParams;
use crate::sweep::{outcome_cell, run_all, RunSpec};

/// The scenarios the study sweeps, in table order.
pub const SERVER_SCENARIOS: [&str; 3] = ["no-fault", "naive", "robust"];

/// Offered load per worker thread, requests/second. The mean request
/// costs ~125 µs of service, so one worker serves ~8 k req/s; 6.8 k/s
/// offers ~85% utilization — saturated enough that a stall backlogs, with
/// enough headroom that a drained server keeps up.
pub(crate) const RATE_PER_THREAD: u64 = 6_800;

/// Run length in simulated nanoseconds.
const HORIZON_NS: u64 = 800_000_000;

/// Tail-goodput measurement starts here — 180 ms after the fault window
/// closes, so a backlog that drains promptly is out of the window.
const MEASURE_FROM_NS: u64 = 500_000_000;

/// The transient GC-stall fault window `[start, end)`.
const FAULT_WINDOW_NS: (u64, u64) = (200_000_000, 320_000_000);

/// Small heap, scaled with the worker pool: the per-request allocation
/// bursts drive regular minor collections (so the stall amplifier has
/// pauses to stretch), but the allocation rate grows with the offered
/// load, and the pause *floor* (VM stop + time-to-safepoint) grows with
/// the thread count — a fixed heap would make GC overhead alone eat the
/// top of the sweep's capacity before any fault is injected.
fn server_heap_bytes(threads: usize) -> u64 {
    ((threads as u64) << 20).max(8 << 20)
}

/// GC pauses inside the fault window are stretched by this factor —
/// a ~100 µs minor pause becomes a multi-millisecond stall, longer than
/// the client timeout, which is what turns timeouts into retries.
const GC_STALL_FACTOR: f64 = 24.0;

/// The per-scenario server spec at `threads` workers. The offered rate
/// and the admission cap both scale with the worker count so every sweep
/// point runs at the same utilization.
pub(crate) fn scenario_spec(scenario: &str, threads: usize) -> ServerSpec {
    let rate = RATE_PER_THREAD * threads as u64;
    let cap = threads * 16;
    let mut spec = match scenario {
        "no-fault" => ServerSpec::robust(rate, cap),
        "naive" => ServerSpec::naive(rate).with_fault_window(FAULT_WINDOW_NS.0, FAULT_WINDOW_NS.1),
        "robust" => {
            ServerSpec::robust(rate, cap).with_fault_window(FAULT_WINDOW_NS.0, FAULT_WINDOW_NS.1)
        }
        other => panic!("unknown server scenario {other:?}"),
    };
    spec.name = scenario.to_owned();
    spec.horizon_ns = HORIZON_NS;
    spec.measure_from_ns = MEASURE_FROM_NS;
    spec.with_env_overrides()
}

/// The scenario × thread-count spec list the study executes; shared with
/// the campaign unit enumeration so the two cannot drift.
///
/// # Errors
///
/// Propagates configuration errors.
pub(crate) fn server_specs(params: &ExpParams) -> Result<Vec<RunSpec>, SimError> {
    let model = xalan();
    let mut specs = Vec::new();
    for scenario in SERVER_SCENARIOS {
        for &threads in &params.thread_counts {
            // The fault scenarios consult the GC-stall fault stream on
            // every pause inside the window; the baseline runs chaos-free.
            let mut chaos = ChaosConfig::default();
            if scenario != "no-fault" {
                chaos.gc_stall_period = 1;
                chaos.gc_stall_factor = GC_STALL_FACTOR;
            }
            let mut cfg = JvmConfig::builder();
            cfg.threads(threads)
                .seed(params.seed)
                .heap_bytes(server_heap_bytes(threads))
                .chaos(chaos)
                .server(scenario_spec(scenario, threads));
            specs.push(RunSpec {
                app: model.scaled(params.scale),
                config: cfg.build()?,
            });
        }
    }
    Ok(specs)
}

/// One row of the server study.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerRow {
    /// Scenario name ("no-fault", "naive", "robust").
    pub policy: String,
    /// Worker-pool size (the run's mutator thread count).
    pub threads: usize,
    /// Whole-run latency percentiles in nanoseconds (`None` when the run
    /// produced no goodput at all).
    pub lat_p50_ns: Option<u64>,
    /// 99th-percentile latency.
    pub lat_p99_ns: Option<u64>,
    /// 99.9th-percentile latency.
    pub lat_p999_ns: Option<u64>,
    /// Requests completed within their timeout over the whole run.
    pub goodput: u64,
    /// Tail goodput over tail arrivals — the metastability metric.
    pub tail_ratio: f64,
    /// Requests shed by queue bound, admission, deadline, or degraded
    /// mode.
    pub sheds: u64,
    /// Client-observed timeouts.
    pub timeouts: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Whether the server entered degraded mode.
    pub degraded: bool,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The overload-control study: scenario × thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStudy {
    /// One row per (scenario, thread count), scenario-major in
    /// [`SERVER_SCENARIOS`] order.
    pub rows: Vec<ServerRow>,
}

impl ServerStudy {
    /// The row for `(policy, threads)`.
    #[must_use]
    pub fn row(&self, policy: &str, threads: usize) -> Option<&ServerRow> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.threads == threads)
    }

    /// Tail goodput ratio for `(policy, threads)`.
    #[must_use]
    pub fn tail_ratio(&self, policy: &str, threads: usize) -> Option<f64> {
        self.row(policy, threads).map(|r| r.tail_ratio)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "policy", "threads", "p50", "p99", "p999", "goodput", "tail%", "sheds", "timeouts",
            "retries", "degraded", "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.policy.clone(),
                r.threads.to_string(),
                lat_cell(r.lat_p50_ns),
                lat_cell(r.lat_p99_ns),
                lat_cell(r.lat_p999_ns),
                r.goodput.to_string(),
                format!("{:.1}%", r.tail_ratio * 100.0),
                r.sheds.to_string(),
                r.timeouts.to_string(),
                r.retries.to_string(),
                if r.degraded { "yes" } else { "no" }.to_owned(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Latency cell in microseconds, or `-` when the run had no goodput.
fn lat_cell(ns: Option<u64>) -> String {
    match ns {
        Some(ns) => format!("{:.0}us", ns as f64 / 1e3),
        None => "-".to_owned(),
    }
}

fn row_from(
    scenario: &str,
    threads: usize,
    stats: Option<&ServerStats>,
    outcome: &RunOutcome,
) -> ServerRow {
    ServerRow {
        policy: scenario.to_owned(),
        threads,
        lat_p50_ns: stats.and_then(|s| s.latency_p(0.50)),
        lat_p99_ns: stats.and_then(|s| s.latency_p(0.99)),
        lat_p999_ns: stats.and_then(|s| s.latency_p(0.999)),
        goodput: stats.map_or(0, |s| s.goodput),
        tail_ratio: stats.map_or(0.0, ServerStats::tail_goodput_ratio),
        sheds: stats.map_or(0, |s| s.sheds),
        timeouts: stats.map_or(0, |s| s.timeouts),
        retries: stats.map_or(0, |s| s.retries),
        degraded: stats.is_some_and(|s| s.degraded),
        outcome: outcome.clone(),
    }
}

/// Runs `ext-server`: every scenario at every thread count.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn run_server_study(params: &ExpParams) -> Result<ServerStudy, SimError> {
    let specs = server_specs(params)?;
    let reports = run_all(&specs);
    let per_scenario = params.thread_counts.len();
    let mut rows = Vec::with_capacity(reports.len());
    for (s, scenario) in SERVER_SCENARIOS.iter().enumerate() {
        for (t, &threads) in params.thread_counts.iter().enumerate() {
            let r = &reports[s * per_scenario + t];
            rows.push(row_from(scenario, threads, r.server.as_ref(), &r.outcome));
        }
    }
    Ok(ServerStudy { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 16])
    }

    #[test]
    fn specs_key_on_the_scenario() {
        let params = tiny();
        let specs = server_specs(&params).unwrap();
        assert_eq!(
            specs.len(),
            SERVER_SCENARIOS.len() * params.thread_counts.len()
        );
        // Same threads/seed under two policies must not share a memo key.
        let per = params.thread_counts.len();
        assert_ne!(specs[0].memo_key(), specs[per].memo_key());
        assert_ne!(specs[per].memo_key(), specs[2 * per].memo_key());
    }

    #[test]
    fn rate_and_admission_scale_with_the_worker_pool() {
        let four = scenario_spec("robust", 4);
        let fortyeight = scenario_spec("robust", 48);
        assert_eq!(
            four.arrival,
            scalesim_workloads::ArrivalProcess::OpenPoisson {
                rate_per_sec: 4 * RATE_PER_THREAD
            }
        );
        assert_eq!(fortyeight.policy.admission_cap, Some(48 * 16));
        // Fault scenarios carry the window; the baseline does not.
        assert_eq!(four.fault_window_ns, Some(FAULT_WINDOW_NS));
        assert_eq!(scenario_spec("no-fault", 4).fault_window_ns, None);
    }

    #[test]
    fn study_covers_every_scenario_and_thread_count() {
        let params = tiny();
        let s = run_server_study(&params).unwrap();
        assert_eq!(
            s.rows.len(),
            SERVER_SCENARIOS.len() * params.thread_counts.len()
        );
        for scenario in SERVER_SCENARIOS {
            for &threads in &params.thread_counts {
                let row = s.row(scenario, threads).expect("row");
                assert_eq!(row.outcome, RunOutcome::Ok, "{scenario}/{threads}");
                assert!(row.goodput > 0, "{scenario}/{threads} served nothing");
            }
        }
        let t = s.table();
        assert_eq!(t.num_rows(), s.rows.len());
    }

    #[test]
    fn fault_scenarios_pay_for_the_stall_while_it_is_active() {
        // Whole-run goodput under the naive policy must be below the
        // no-fault baseline — the stall itself costs throughput even
        // before any metastability sets in. (The metastability golden —
        // tail goodput staying collapsed after the fault — lives in the
        // repo-root integration tests at full scale.)
        // At the largest sweep point the offered load (which scales with
        // the worker count) makes the stretched stall overrun the client
        // timeout; smaller points may ride the fault out, so the check is
        // on the top of the sweep.
        let params = tiny();
        let s = run_server_study(&params).unwrap();
        let threads = *params.thread_counts.iter().max().unwrap();
        let base = s.row("no-fault", threads).unwrap();
        let naive = s.row("naive", threads).unwrap();
        assert!(
            naive.goodput < base.goodput,
            "naive {} vs baseline {} at {threads} threads",
            naive.goodput,
            base.goodput
        );
        assert!(naive.timeouts > 0, "the stall must cause timeouts");
    }
}
