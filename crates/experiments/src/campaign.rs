//! Fault-tolerant multi-process sweep campaigns.
//!
//! A *campaign* lets N independent `scalesim-experiments campaign`
//! worker processes cooperatively drain one artifact's sweep over a
//! shared directory, tolerate any subset of them being SIGKILLed at any
//! instant, and still merge into final tables and a `manifest.jsonl`
//! **byte-identical** to a single-process run (modulo the zeroed
//! `host_ns` host-wall field, the one nondeterministic manifest field).
//!
//! Layout of a campaign directory:
//!
//! * `campaign.json` — the canonical spec (artifact + params), written
//!   once and byte-compared by every later process so two different
//!   campaigns can never interleave in one directory.
//! * `leases/<key>.lease` — one lease file per in-flight work unit,
//!   claimed with an atomic `create_new` and kept fresh by a heartbeat
//!   thread; a lease whose mtime is older than
//!   `SCALESIM_LEASE_TTL_MS` is presumed orphaned by a dead worker and
//!   reclaimed (rename to a per-claimer graveyard name, so exactly one
//!   reclaimer wins even when several race).
//! * `done/<key>` — advisory completion markers (`ok` / `volatile` /
//!   `quar`) so workers skip settled units without reading segments.
//! * `seg-w<id>-p<pid>.jsonl` — each worker's private result segment,
//!   one crc32-framed record per completed run in exactly the
//!   [`checkpoint`](crate::checkpoint) store framing. A SIGKILL can
//!   tear at most the last line, which the merge scrubs.
//!
//! **Correctness never depends on the leases.** A run is a pure
//! function of its memo key, so two workers that both execute a unit
//! (a stale-lease race, a resurrected heartbeat) merely write identical
//! records into different segments — last-wins merging is harmless.
//! Leases only prevent *wasted* work. Likewise the `done/` markers are
//! work-skipping hints: a marker without a segment record (crash
//! between the two) just means the merge re-simulates that unit.
//!
//! The merge pass ([`merge`]) replays every verified segment record
//! into the sweep memo cache (with restored-provenance bookkeeping, as
//! a checkpoint resume does) and then re-runs the ordinary artifact
//! driver in-process: restored units are served as cache hits whose
//! manifests report what an uninterrupted run would have said, missing
//! or quarantined units re-execute under the usual
//! retry-once-then-quarantine policy, and the tables render through the
//! exact code path a single-process run uses.
//!
//! Durability policy: the campaign directory is scratch state, so
//! nothing in it is fsynced — segments are plain appends, done markers
//! are plain writes (existence is the signal), and heartbeats and
//! `campaign.json` are plain temp+rename writes. SIGKILL-safety needs
//! only the page cache, which survives process death; whole-*host*
//! crash durability is the fsynced checkpoint store's job
//! (`--checkpoint`), and a torn `campaign.json` after a host crash is
//! caught by the byte-compare on the next init. Only the final
//! artifacts go through the fsynced
//! [`write_atomic`](scalesim_trace::write_atomic).

use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

use scalesim_core::SimError;
use scalesim_workloads::{all_apps, scalable_apps, AppModel};

use crate::artifacts::{artifact_tables, ArtifactTable};
use crate::checkpoint::{self, decode_record, encode_record, Record};
use crate::ext_locks::lock_specs;
use crate::fig1_lifespan::lifespan_specs;
use crate::params::ExpParams;
use crate::server::server_specs;
use crate::sweep::{
    attempt, checkpointable, clear_run_cache, fingerprint, grid_specs, seed_cache_entry,
    take_run_manifests, take_sweep_failures, worker_budget, RunManifest, RunSpec, SweepFailure,
};
use crate::topo::topo_specs;

/// The artifact ids a campaign can drain: exactly the drivers whose
/// work lists are pure `(app, config)` grids, so units can be
/// enumerated identically by every worker.
pub const CAMPAIGN_ARTIFACTS: &[&str] = &[
    "workdist",
    "scaletable",
    "fig1a",
    "fig1b",
    "fig1c",
    "fig1d",
    "fig2",
    "ext-topo",
    "ext-server",
    "ext-locks",
];

/// What one campaign runs: an artifact id plus the shared sweep
/// parameters. Serialized canonically into `campaign.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Artifact id (one of [`CAMPAIGN_ARTIFACTS`]).
    pub artifact: String,
    /// Sweep parameters every worker must agree on.
    pub params: ExpParams,
}

impl CampaignSpec {
    /// The canonical one-line serialization stored as `campaign.json`.
    /// `scale` is carried as its exact `{:?}` rendering (a string, so
    /// the std-only JSON layer never has to parse a float) — two specs
    /// are compatible iff their canonical forms are byte-equal.
    #[must_use]
    pub fn canonical(&self) -> String {
        let threads: Vec<String> = self
            .params
            .thread_counts
            .iter()
            .map(ToString::to_string)
            .collect();
        format!(
            "{{\"v\":1,\"artifact\":\"{}\",\"scale\":\"{:?}\",\"seed\":{},\"threads\":[{}]}}\n",
            self.artifact,
            self.params.scale,
            self.params.seed,
            threads.join(",")
        )
    }
}

/// Campaign failure split the way the CLI splits exit codes: bad input
/// (exit 3) vs a failure at runtime (exit 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// Rejected configuration: unknown/uncampaignable artifact, or a
    /// directory initialized for a different spec.
    Config(String),
    /// I/O or engine failure while draining or merging.
    Runtime(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Config(msg) | CampaignError::Runtime(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for CampaignError {}

fn classify_sim(e: &SimError) -> CampaignError {
    match e {
        SimError::Config(_) | SimError::UnknownApp(_) | SimError::Snapshot(_) => {
            CampaignError::Config(e.to_string())
        }
        SimError::Invariant(_) => CampaignError::Runtime(e.to_string()),
    }
}

fn rt(ctx: &str, e: &dyn fmt::Display) -> CampaignError {
    CampaignError::Runtime(format!("{ctx}: {e}"))
}

/// What one worker's drain pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainStats {
    /// Units this worker executed and persisted to its segment.
    pub ran: usize,
    /// Units skipped because another worker's done marker existed.
    pub skipped: usize,
    /// Units that completed with a host-time-dependent truncation and
    /// were therefore not persisted (the merge re-runs them).
    pub volatile: usize,
    /// Units that failed twice and were marked quarantined (no record;
    /// the merge re-runs them through the ordinary quarantine path).
    pub quarantined: usize,
}

/// What the merge pass produced.
#[derive(Debug)]
pub struct MergeOutcome {
    /// The artifact's rendered tables, byte-identical to a
    /// single-process run.
    pub tables: Vec<ArtifactTable>,
    /// One manifest per sweep input, in sweep order, with `host_ns`
    /// zeroed (the only field that depends on which host executed a
    /// unit).
    pub manifests: Vec<RunManifest>,
    /// The failure digest of the merge sweep (quarantined units
    /// re-fail here exactly as they would in a single-process run).
    pub failures: Vec<SweepFailure>,
    /// Distinct work units the campaign covers.
    pub units: usize,
    /// Units restored from worker segments (served without
    /// re-simulation).
    pub restored: usize,
    /// Units re-simulated by the merge (never persisted, volatile, or
    /// quarantined).
    pub reran: usize,
    /// Torn, corrupt, or fingerprint-mismatched segment lines dropped.
    pub skipped_lines: usize,
}

impl MergeOutcome {
    /// Whether the campaign finished degraded (any quarantined,
    /// truncated, or memo-corrupted unit, or a server run that entered
    /// degraded mode) — the CLI's exit-2 condition.
    #[must_use]
    pub fn degraded(&self) -> bool {
        !self.failures.is_empty()
            || self
                .manifests
                .iter()
                .any(|m| m.outcome != "ok" || m.degraded)
    }
}

// ---------------------------------------------------------------------
// Tunables (environment)
// ---------------------------------------------------------------------

/// Lease time-to-live: a lease whose mtime is older than this is
/// presumed orphaned and may be reclaimed. `SCALESIM_LEASE_TTL_MS`
/// overrides the 2000 ms default; holders heartbeat at TTL/4.
#[must_use]
pub fn lease_ttl() -> Duration {
    std::env::var("SCALESIM_LEASE_TTL_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map_or(Duration::from_millis(2000), Duration::from_millis)
}

/// Worker processes a parented campaign spawns when `--workers` is not
/// given: `SCALESIM_CAMPAIGN_WORKERS`, defaulting to 2.
#[must_use]
pub fn default_workers() -> usize {
    std::env::var("SCALESIM_CAMPAIGN_WORKERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2)
}

// ---------------------------------------------------------------------
// Unit enumeration
// ---------------------------------------------------------------------

/// Enumerates the work units (one [`RunSpec`] per unit, duplicates
/// included) of a campaignable artifact, in driver order. `None` means
/// the artifact cannot run as a campaign. Dispatches to the same spec
/// builders the drivers themselves use, so the two cannot drift.
///
/// # Errors
///
/// The inner result propagates driver configuration errors.
pub fn campaign_units(
    artifact: &str,
    params: &ExpParams,
) -> Option<Result<Vec<RunSpec>, SimError>> {
    match artifact {
        "workdist" | "scaletable" | "fig1a" | "fig1b" => Some(Ok(grid_specs(&all_apps(), params))),
        "fig2" => Some(Ok(grid_specs(&scalable_apps(), params))),
        "fig1c" => Some(lifespan_specs("eclipse", params)),
        "fig1d" => Some(lifespan_specs("xalan", params)),
        "ext-topo" => Some(topo_specs("xalan", params)),
        "ext-server" => Some(server_specs(params)),
        "ext-locks" => Some(lock_specs(params)),
        _ => None,
    }
}

/// The deduplicated `(memo key, spec)` unit list, in first-occurrence
/// order.
fn units_of(spec: &CampaignSpec) -> Result<Vec<(u64, RunSpec)>, CampaignError> {
    let specs = campaign_units(&spec.artifact, &spec.params)
        .ok_or_else(|| {
            CampaignError::Config(format!(
                "artifact {} cannot run as a campaign (campaignable: {})",
                spec.artifact,
                CAMPAIGN_ARTIFACTS.join(", ")
            ))
        })?
        .map_err(|e| classify_sim(&e))?;
    let mut seen = HashSet::new();
    Ok(specs
        .into_iter()
        .filter_map(|s| {
            let k = s.memo_key();
            seen.insert(k).then_some((k, s))
        })
        .collect())
}

// ---------------------------------------------------------------------
// Initialization: the campaign.json spec guard
// ---------------------------------------------------------------------

/// Initializes (or re-validates) a campaign directory: creates the
/// `leases/` and `done/` subdirectories and writes `campaign.json`
/// atomically. If the file already exists it is byte-compared against
/// this spec's canonical form — a mismatch is a configuration error, so
/// two different campaigns can never share a directory. Idempotent;
/// every worker calls it.
///
/// # Errors
///
/// [`CampaignError::Config`] for an uncampaignable artifact or a spec
/// mismatch; [`CampaignError::Runtime`] for I/O failures.
pub fn init(dir: &Path, spec: &CampaignSpec) -> Result<(), CampaignError> {
    match campaign_units(&spec.artifact, &spec.params) {
        None => {
            return Err(CampaignError::Config(format!(
                "artifact {} cannot run as a campaign (campaignable: {})",
                spec.artifact,
                CAMPAIGN_ARTIFACTS.join(", ")
            )))
        }
        Some(Err(e)) => return Err(classify_sim(&e)),
        Some(Ok(_)) => {}
    }
    std::fs::create_dir_all(dir.join("leases"))
        .map_err(|e| rt(&format!("create {}", dir.join("leases").display()), &e))?;
    std::fs::create_dir_all(dir.join("done"))
        .map_err(|e| rt(&format!("create {}", dir.join("done").display()), &e))?;
    let path = dir.join("campaign.json");
    let body = spec.canonical();
    match std::fs::read_to_string(&path) {
        Ok(existing) if existing == body => Ok(()),
        Ok(_) => Err(CampaignError::Config(format!(
            "{} was initialized for a different campaign spec; \
             refusing to mix campaigns in one directory",
            path.display()
        ))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            // Concurrent first-writers race benignly: both rename
            // identical bytes into place. Non-fsynced on purpose — a
            // host crash that tears this file is caught by the
            // byte-compare above on the next init.
            let tmp = format!(".init-{}", std::process::id());
            replace_file(&path, &tmp, &body)
                .map_err(|e| rt(&format!("write {}", path.display()), &e))
        }
        Err(e) => Err(rt(&format!("read {}", path.display()), &e)),
    }
}

// ---------------------------------------------------------------------
// Leases
// ---------------------------------------------------------------------

fn key16(key: u64) -> String {
    format!("{key:016x}")
}

fn lease_path(leases: &Path, key: u64) -> PathBuf {
    leases.join(format!("{}.lease", key16(key)))
}

/// Replaces `path` with `contents` via a non-fsynced temp+rename. The
/// temp name must be unique within the directory across writers.
fn replace_file(path: &Path, tmp_name: &str, contents: &str) -> io::Result<()> {
    let tmp = path.with_file_name(tmp_name);
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Attempts to claim the lease for `key`. Returns `Ok(true)` when this
/// process now holds it. A pre-existing lease older than `ttl` is
/// reclaimed: it is renamed to a per-claimer graveyard name (exactly
/// one racing reclaimer wins the rename), removed, and re-claimed with
/// a fresh `create_new` — which a third racer may still win, in which
/// case this claim simply fails and the caller moves on.
fn try_claim(leases: &Path, key: u64, ttl: Duration) -> io::Result<bool> {
    let pid = std::process::id();
    let path = lease_path(leases, key);
    let claim = |p: &Path| -> io::Result<bool> {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(p)
        {
            Ok(mut f) => {
                let _ = f.write_all(pid.to_string().as_bytes());
                Ok(true)
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => Ok(false),
            Err(e) => Err(e),
        }
    };
    if claim(&path)? {
        return Ok(true);
    }
    // Held by someone. Stale only if its mtime has aged past the TTL
    // (heartbeats refresh it at TTL/4); a vanished or future-dated
    // lease is treated as fresh and retried on a later scan.
    let Ok(meta) = std::fs::metadata(&path) else {
        return Ok(false);
    };
    let age = meta.modified().ok().and_then(|t| t.elapsed().ok());
    if age.is_none_or(|a| a <= ttl) {
        return Ok(false);
    }
    let grave = leases.join(format!(".reap-{}-{pid}", key16(key)));
    if std::fs::rename(&path, &grave).is_err() {
        // Another reclaimer won, or the holder released meanwhile.
        return Ok(false);
    }
    let _ = std::fs::remove_file(&grave);
    claim(&path)
}

/// Background refresher for every lease this process holds: one thread
/// rewrites each held lease (temp+rename, refreshing its mtime) every
/// TTL/4, so a live worker's leases never age past the TTL no matter
/// how long its runs take.
struct Heartbeat {
    inner: Arc<HeartbeatInner>,
    handle: Option<std::thread::JoinHandle<()>>,
}

struct HeartbeatInner {
    held: Mutex<HashMap<u64, PathBuf>>,
    stop: Mutex<bool>,
    cv: Condvar,
}

impl Heartbeat {
    fn start(ttl: Duration) -> Self {
        let inner = Arc::new(HeartbeatInner {
            held: Mutex::new(HashMap::new()),
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let period = ttl / 4;
        let thread_inner = Arc::clone(&inner);
        let handle = std::thread::spawn(move || {
            let tmp_name = format!(".hb-{}", std::process::id());
            loop {
                let guard = thread_inner
                    .stop
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                let (guard, _) = thread_inner
                    .cv
                    .wait_timeout(guard, period)
                    .unwrap_or_else(PoisonError::into_inner);
                if *guard {
                    break;
                }
                drop(guard);
                let paths: Vec<PathBuf> = thread_inner
                    .held
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .values()
                    .cloned()
                    .collect();
                for path in paths {
                    // Refresh failures are tolerable: a missed beat at
                    // worst lets another worker duplicate the unit.
                    let _ = replace_file(&path, &tmp_name, &std::process::id().to_string());
                }
            }
        });
        Heartbeat {
            inner,
            handle: Some(handle),
        }
    }

    fn add(&self, key: u64, path: PathBuf) {
        self.inner
            .held
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, path);
    }

    fn remove(&self, key: u64) {
        self.inner
            .held
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&key);
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        *self
            .inner
            .stop
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = true;
        self.inner.cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------

/// splitmix64: the standard 64-bit finalizer, used for deterministic
/// claim-contention jitter (no `std` RNG exists, and the backoff must
/// be reproducible from `(pid, worker, round)` for debugging).
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Bounded exponential backoff with deterministic jitter: base
/// `10ms << round` (round capped at 8), plus up to base/2 of jitter
/// derived from `splitmix64(nonce ^ round)`, the whole thing capped at
/// the lease TTL — sleeping longer than the TTL would only delay
/// reclaiming a dead worker's leases.
fn backoff_delay(round: u32, ttl: Duration, nonce: u64) -> Duration {
    let ttl_ms = u64::try_from(ttl.as_millis()).unwrap_or(u64::MAX).max(1);
    let base_ms = 10u64.saturating_mul(1 << round.min(8)).min(ttl_ms);
    let jitter_ms = splitmix64(nonce ^ u64::from(round)) % (base_ms / 2 + 1);
    Duration::from_millis((base_ms + jitter_ms).min(ttl_ms))
}

// ---------------------------------------------------------------------
// Worker drain
// ---------------------------------------------------------------------

/// Drops the advisory completion marker. A direct write, not
/// temp+rename: readers only test existence (the status byte is
/// informational), so a torn marker is at worst a skipped unit the
/// merge re-simulates.
fn mark_done(done: &Path, key: u64, status: &str) -> io::Result<()> {
    std::fs::write(done.join(key16(key)), status)
}

fn record_failure(slot: &Mutex<Option<String>>, msg: String) {
    let mut guard = slot.lock().unwrap_or_else(PoisonError::into_inner);
    if guard.is_none() {
        eprintln!("campaign: {msg}");
        *guard = Some(msg);
    }
}

/// Drains the campaign as one worker process: repeatedly claims
/// unsettled units (lease per unit, batching across an internal thread
/// pool sized like [`run_all`](crate::run_all)'s), executes each under
/// the retry-once policy, streams completed reports into this worker's
/// private crc-framed segment, and marks units done. Returns when every
/// unit is settled — by this worker, by a sibling, or by reclaiming and
/// finishing a dead sibling's leases.
///
/// Safe to run concurrently with any number of sibling workers, and
/// safe to SIGKILL at any instant: the next drain or the merge repairs
/// whatever was in flight.
///
/// # Errors
///
/// [`CampaignError::Config`] for spec problems, [`CampaignError::Runtime`]
/// for I/O failures (a failing unit is *not* an error — it quarantines).
pub fn worker_drain(
    dir: &Path,
    spec: &CampaignSpec,
    worker_id: u32,
) -> Result<DrainStats, CampaignError> {
    init(dir, spec)?;
    let units = units_of(spec)?;
    if units.is_empty() {
        return Ok(DrainStats::default());
    }
    let leases = dir.join("leases");
    let done = dir.join("done");
    let ttl = lease_ttl();
    let pid = std::process::id();
    let seg_path = dir.join(format!("seg-w{worker_id}-p{pid}.jsonl"));
    let seg_file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&seg_path)
        .map_err(|e| rt(&format!("open segment {}", seg_path.display()), &e))?;
    let seg = Mutex::new(seg_file);
    let heartbeat = Heartbeat::start(ttl);
    let settled: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    // Units leased by a sibling thread of *this* process. The scan skips
    // them without touching the filesystem — only cross-process
    // coordination needs the lease files and done markers.
    let ours: Mutex<HashSet<u64>> = Mutex::new(HashSet::new());
    let stats: Mutex<DrainStats> = Mutex::new(DrainStats::default());
    let error: Mutex<Option<String>> = Mutex::new(None);
    // Epoch bumped (and notified) on every unit completion, so a thread
    // backing off because its siblings hold every remaining lease wakes
    // as soon as one finishes instead of idling out the full backoff.
    let progress: (Mutex<u64>, Condvar) = (Mutex::new(0), Condvar::new());
    let pool = worker_budget().min(units.len()).max(1);
    let nonce = splitmix64(u64::from(pid) ^ (u64::from(worker_id) << 32));

    std::thread::scope(|scope| {
        for t in 0..pool {
            let units = &units;
            let leases = &leases;
            let done = &done;
            let seg = &seg;
            let heartbeat = &heartbeat;
            let settled = &settled;
            let ours = &ours;
            let stats = &stats;
            let error = &error;
            let progress = &progress;
            let jitter_seed = nonce ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            scope.spawn(move || {
                let mut round: u32 = 0;
                'drain: loop {
                    if error
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .is_some()
                    {
                        break;
                    }
                    // Epoch *before* the scan: a completion that lands
                    // while we scan must abort the backoff wait below,
                    // not be lost to it.
                    let scan_epoch = *progress.0.lock().unwrap_or_else(PoisonError::into_inner);
                    // One scan: count unsettled units and claim the
                    // first available one.
                    let mut claimed: Option<&(u64, RunSpec)> = None;
                    let mut remaining = 0usize;
                    for unit in units {
                        let key = unit.0;
                        if settled
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .contains(&key)
                        {
                            continue;
                        }
                        // A sibling thread of this process holds it: no
                        // point statting markers or contending on its
                        // lease — its completion will bump the epoch.
                        if ours
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .contains(&key)
                        {
                            remaining += 1;
                            continue;
                        }
                        if done.join(key16(key)).exists() {
                            if settled
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .insert(key)
                            {
                                stats.lock().unwrap_or_else(PoisonError::into_inner).skipped += 1;
                            }
                            continue;
                        }
                        remaining += 1;
                        if claimed.is_none() {
                            match try_claim(leases, key, ttl) {
                                Ok(true) => {
                                    ours.lock()
                                        .unwrap_or_else(PoisonError::into_inner)
                                        .insert(key);
                                    claimed = Some(unit);
                                }
                                Ok(false) => {}
                                Err(e) => {
                                    record_failure(
                                        error,
                                        format!("claim lease {}: {e}", key16(key)),
                                    );
                                    break 'drain;
                                }
                            }
                        }
                    }
                    let Some(unit) = claimed else {
                        if remaining == 0 {
                            break;
                        }
                        // Everything left is leased out to someone else:
                        // back off (bounded, jittered) and rescan — a
                        // dead sibling's leases become reclaimable once
                        // their mtime ages past the TTL. The wait is a
                        // condvar timeout, so a sibling thread in this
                        // process finishing a unit wakes us immediately.
                        round += 1;
                        let (epoch, cv) = progress;
                        let guard = epoch.lock().unwrap_or_else(PoisonError::into_inner);
                        let _ = cv
                            .wait_timeout_while(
                                guard,
                                backoff_delay(round, ttl, jitter_seed),
                                |e| *e == scan_epoch,
                            )
                            .unwrap_or_else(PoisonError::into_inner);
                        continue;
                    };
                    round = 0;
                    let (key, run_spec) = (unit.0, &unit.1);
                    let lease = lease_path(leases, key);
                    heartbeat.add(key, lease.clone());
                    let outcome = match attempt(run_spec, None) {
                        Ok(report) => Ok((report, 0u32)),
                        Err(first) => match attempt(run_spec, None) {
                            Ok(report) => Ok((report, 1)),
                            Err(second) => Err(if first == second {
                                format!("{first} (and again on retry)")
                            } else {
                                format!("{first}; retry: {second}")
                            }),
                        },
                    };
                    let persisted: io::Result<()> = match &outcome {
                        Ok((report, retries)) if checkpointable(report) => {
                            let fp = fingerprint(report);
                            let mut line = encode_record(key, report, fp, *retries);
                            line.push('\n');
                            seg.lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .write_all(line.as_bytes())
                                .and_then(|()| mark_done(done, key, "ok"))
                        }
                        Ok(_) => mark_done(done, key, "volatile"),
                        Err(why) => {
                            eprintln!(
                                "campaign: quarantining app={} threads={} (key {}): {why}",
                                run_spec.app.name(),
                                run_spec.config.threads,
                                key16(key)
                            );
                            mark_done(done, key, "quar")
                        }
                    };
                    heartbeat.remove(key);
                    let _ = std::fs::remove_file(&lease);
                    {
                        let (epoch, cv) = progress;
                        *epoch.lock().unwrap_or_else(PoisonError::into_inner) += 1;
                        cv.notify_all();
                    }
                    match persisted {
                        Ok(()) => {
                            settled
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .insert(key);
                            let mut s = stats.lock().unwrap_or_else(PoisonError::into_inner);
                            match &outcome {
                                Ok((report, _)) if checkpointable(report) => s.ran += 1,
                                Ok(_) => s.volatile += 1,
                                Err(_) => s.quarantined += 1,
                            }
                        }
                        Err(e) => {
                            record_failure(error, format!("persist unit {}: {e}", key16(key)));
                            break;
                        }
                    }
                }
            });
        }
    });
    drop(heartbeat);
    if let Some(msg) = error.into_inner().unwrap_or_else(PoisonError::into_inner) {
        return Err(CampaignError::Runtime(msg));
    }
    // No fsync: SIGKILL-safety only needs the page cache, which survives
    // process death. Whole-host crash durability is the checkpoint
    // store's job (`--checkpoint`), not the campaign scratch dir's.
    drop(seg.into_inner().unwrap_or_else(PoisonError::into_inner));
    Ok(stats.into_inner().unwrap_or_else(PoisonError::into_inner))
}

// ---------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------

/// Deterministically folds every worker segment into the final
/// artifact: decodes all `seg-*.jsonl` records (sorted by segment name,
/// last record wins per key — duplicates are identical by purity),
/// scrubs torn or corrupt lines, verifies each survivor's fingerprint,
/// seeds the sweep memo cache with restored provenance, and re-runs the
/// ordinary artifact driver in-process. Restored units are served as
/// cache hits whose manifests match an uninterrupted run; missing,
/// volatile, or quarantined units re-execute under the usual policy.
/// `host_ns` — the one host-dependent manifest field — is zeroed.
///
/// The memo cache and manifest/failure digests are cleared going in and
/// the cache cleared again going out, so the merge is reproducible and
/// leaves no state behind.
///
/// # Errors
///
/// [`CampaignError::Config`] for spec problems, [`CampaignError::Runtime`]
/// for engine failures. Quarantined units do not error — they surface
/// in `failures` and [`MergeOutcome::degraded`].
pub fn merge(dir: &Path, spec: &CampaignSpec) -> Result<MergeOutcome, CampaignError> {
    init(dir, spec)?;
    let units = units_of(spec)?;
    let unit_keys: HashSet<u64> = units.iter().map(|u| u.0).collect();
    clear_run_cache();
    let _ = take_run_manifests();
    let _ = take_sweep_failures();

    let mut seg_paths: Vec<PathBuf> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_str().unwrap_or("");
            if name.starts_with("seg-") && name.ends_with(".jsonl") {
                seg_paths.push(entry.path());
            }
        }
    }
    seg_paths.sort();

    let mut skipped_lines = 0usize;
    let mut latest: HashMap<u64, Record> = HashMap::new();
    for path in &seg_paths {
        let Ok(text) = std::fs::read_to_string(path) else {
            continue;
        };
        for line in text.lines() {
            match decode_record(line) {
                Some(record) => {
                    latest.insert(record.key, record);
                }
                None => skipped_lines += 1,
            }
        }
    }

    let mut restored = 0usize;
    for (key, record) in latest {
        if !unit_keys.contains(&key) {
            continue;
        }
        if fingerprint(&record.report) != record.fp || !checkpointable(&record.report) {
            skipped_lines += 1;
            continue;
        }
        seed_cache_entry(key, record.report, record.fp);
        checkpoint::seed_restored(key, record.retries);
        restored += 1;
    }
    let reran = units.len() - restored;

    let tables = artifact_tables(&spec.artifact, &spec.params)
        .expect("campaignable artifacts always dispatch")
        .map_err(|e| classify_sim(&e))?;
    let mut manifests = take_run_manifests();
    for m in &mut manifests {
        m.host_ns = 0;
    }
    let failures = take_sweep_failures();
    // Leave no restored-provenance residue behind (a memo-off merge
    // would otherwise strand entries).
    for key in &unit_keys {
        let _ = checkpoint::take_restored(*key);
    }
    clear_run_cache();
    Ok(MergeOutcome {
        tables,
        manifests,
        failures,
        units: units.len(),
        restored,
        reran,
        skipped_lines,
    })
}

/// Convenience single-process campaign: initialize, drain everything as
/// worker 0, and merge. What the benchmark times against a plain sweep,
/// and the cheapest way to run a campaign without spawning processes.
///
/// # Errors
///
/// Propagates [`init`], [`worker_drain`], and [`merge`] errors.
pub fn run_local(dir: &Path, spec: &CampaignSpec) -> Result<MergeOutcome, CampaignError> {
    init(dir, spec)?;
    let _ = worker_drain(dir, spec, 0)?;
    merge(dir, spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("scalesim-campaign-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_spec(artifact: &str) -> CampaignSpec {
        CampaignSpec {
            artifact: artifact.to_owned(),
            params: ExpParams::quick().with_scale(0.01).with_threads(vec![2, 4]),
        }
    }

    #[test]
    fn lease_claim_is_exclusive_until_ttl_expires() {
        let leases = scratch("lease");
        let ttl = Duration::from_millis(50);
        assert!(try_claim(&leases, 7, ttl).unwrap(), "first claim wins");
        assert!(!try_claim(&leases, 7, ttl).unwrap(), "held lease refuses");
        std::thread::sleep(Duration::from_millis(80));
        assert!(
            try_claim(&leases, 7, ttl).unwrap(),
            "expired lease is reclaimed"
        );
        assert!(lease_path(&leases, 7).exists());
        // A different key is independent.
        assert!(try_claim(&leases, 8, ttl).unwrap());
        let _ = std::fs::remove_dir_all(&leases);
    }

    #[test]
    fn heartbeat_keeps_a_lease_fresh() {
        let leases = scratch("hb");
        let ttl = Duration::from_millis(80);
        assert!(try_claim(&leases, 3, ttl).unwrap());
        let hb = Heartbeat::start(ttl);
        hb.add(3, lease_path(&leases, 3));
        std::thread::sleep(Duration::from_millis(200));
        // Despite 200ms > TTL elapsing, the heartbeat kept the mtime
        // fresh, so the lease is not reclaimable.
        assert!(!try_claim(&leases, 3, ttl).unwrap());
        drop(hb);
        let _ = std::fs::remove_dir_all(&leases);
    }

    #[test]
    fn init_guards_the_campaign_spec() {
        let dir = scratch("init");
        let spec = tiny_spec("scaletable");
        init(&dir, &spec).unwrap();
        init(&dir, &spec).unwrap(); // idempotent
        let other = tiny_spec("fig1d");
        match init(&dir, &other) {
            Err(CampaignError::Config(msg)) => {
                assert!(msg.contains("different campaign spec"), "{msg}");
            }
            other => panic!("expected spec-mismatch config error, got {other:?}"),
        }
        let mut reseeded = spec.clone();
        reseeded.params.seed = 1234;
        assert!(matches!(
            init(&dir, &reseeded),
            Err(CampaignError::Config(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncampaignable_artifacts_are_rejected() {
        let dir = scratch("reject");
        for artifact in ["abl-sched", "ext-numa", "all", "nope"] {
            match init(&dir, &tiny_spec(artifact)) {
                Err(CampaignError::Config(msg)) => {
                    assert!(msg.contains("cannot run as a campaign"), "{msg}");
                }
                other => panic!("{artifact}: expected config error, got {other:?}"),
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_enumeration_matches_the_drivers() {
        let params = ExpParams::quick().with_scale(0.01).with_threads(vec![2, 4]);
        let grid = campaign_units("scaletable", &params).unwrap().unwrap();
        assert_eq!(grid.len(), all_apps().len() * 2);
        let fig2 = campaign_units("fig2", &params).unwrap().unwrap();
        assert_eq!(fig2.len(), scalable_apps().len() * 2);
        let lifespan = campaign_units("fig1d", &params).unwrap().unwrap();
        assert_eq!(lifespan.len(), 2);
        let topo = campaign_units("ext-topo", &params).unwrap().unwrap();
        assert_eq!(topo.len(), 3 * 2);
        let server = campaign_units("ext-server", &params).unwrap().unwrap();
        assert_eq!(server.len(), 3 * 2, "three scenarios x two thread counts");
        assert!(campaign_units("abl-sched", &params).is_none());
        // The dedup preserves first-occurrence order and drops nothing
        // from an all-distinct grid.
        let units = units_of(&tiny_spec("scaletable")).unwrap();
        assert_eq!(units.len(), all_apps().len() * 2);
        let keys: HashSet<u64> = units.iter().map(|u| u.0).collect();
        assert_eq!(keys.len(), units.len());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let ttl = Duration::from_millis(500);
        for round in 0..20 {
            let d = backoff_delay(round, ttl, 42);
            assert_eq!(d, backoff_delay(round, ttl, 42), "deterministic");
            assert!(d >= Duration::from_millis(10));
            assert!(d <= ttl, "round {round}: {d:?} exceeds TTL");
        }
        // Different nonces jitter differently somewhere in the range.
        assert!((0..16).any(|r| backoff_delay(r, ttl, 1) != backoff_delay(r, ttl, 2)));
        // Early rounds are short; the cap engages later.
        assert!(backoff_delay(1, ttl, 7) < Duration::from_millis(50));
        assert_eq!(backoff_delay(12, ttl, 7), ttl);
    }

    #[test]
    fn canonical_spec_is_stable_and_exact() {
        let spec = CampaignSpec {
            artifact: "scaletable".to_owned(),
            params: ExpParams {
                scale: 0.05,
                seed: 42,
                thread_counts: vec![4, 16, 48],
            },
        };
        assert_eq!(
            spec.canonical(),
            "{\"v\":1,\"artifact\":\"scaletable\",\"scale\":\"0.05\",\"seed\":42,\
             \"threads\":[4,16,48]}\n"
        );
        // Scale is compared textually, so 0.1 vs 0.10000000001 differ.
        let nearby = CampaignSpec {
            artifact: "scaletable".to_owned(),
            params: ExpParams {
                scale: 0.05 + 1e-12,
                seed: 42,
                thread_counts: vec![4, 16, 48],
            },
        };
        assert_ne!(spec.canonical(), nearby.canonical());
    }

    #[test]
    fn done_markers_round_trip() {
        let done = scratch("done");
        mark_done(&done, 0xabcd, "ok").unwrap();
        assert_eq!(
            std::fs::read_to_string(done.join(key16(0xabcd))).unwrap(),
            "ok"
        );
        mark_done(&done, 0xabcd, "quar").unwrap();
        assert_eq!(
            std::fs::read_to_string(done.join(key16(0xabcd))).unwrap(),
            "quar"
        );
        let _ = std::fs::remove_dir_all(&done);
    }

    #[test]
    fn env_tunables_have_defaults() {
        // No env manipulation here (tests run in parallel): just the
        // defaults when unset, plus the parse helpers' shape.
        if std::env::var_os("SCALESIM_LEASE_TTL_MS").is_none() {
            assert_eq!(lease_ttl(), Duration::from_millis(2000));
        }
        if std::env::var_os("SCALESIM_CAMPAIGN_WORKERS").is_none() {
            assert_eq!(default_workers(), 2);
        }
    }
}
