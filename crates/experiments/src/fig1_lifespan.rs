//! Figures 1c and 1d: object-lifespan CDFs at low vs. high thread
//! counts.
//!
//! Paper expectations (§III-B): xalan (Figure 1d) has over 80 % of
//! objects with lifespans below 1 KB at 4 threads but only ~50 % at 48;
//! eclipse (Figure 1c) "shows almost no change in object lifespans as we
//! changed the numbers of threads from 4 to 48".

use scalesim_core::{RunOutcome, SimError};
use scalesim_metrics::{fmt_bytes, fmt_pct, Table};
use scalesim_workloads::{app_by_name, AppModel};

use crate::params::ExpParams;
use crate::sweep::{mark_cell, run_all, RunSpec};

/// Default CDF sampling thresholds (bytes of allocation), log-spaced the
/// way the paper's x-axes are.
pub const DEFAULT_THRESHOLDS: [u64; 9] = [
    64,
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    16 << 20,
];

/// One lifespan-CDF figure: an app measured at several thread counts.
#[derive(Debug, Clone, PartialEq)]
pub struct LifespanCurves {
    /// Application name.
    pub app: String,
    /// Sampling thresholds (bytes).
    pub thresholds: Vec<u64>,
    /// Per thread count: `(threads, fraction of objects with lifespan <
    /// threshold)` for each threshold.
    pub curves: Vec<(usize, Vec<f64>)>,
    /// Outcome of the run behind each curve, parallel to `curves`.
    pub outcomes: Vec<RunOutcome>,
}

impl LifespanCurves {
    /// Fraction of objects with lifespans below 1 KiB at the given thread
    /// count — the paper's headline statistic.
    #[must_use]
    pub fn frac_below_1k(&self, threads: usize) -> Option<f64> {
        let idx = self.thresholds.iter().position(|&t| t == 1 << 10)?;
        self.curves
            .iter()
            .find(|(t, _)| *t == threads)
            .map(|(_, fracs)| fracs[idx])
    }

    /// Maximum vertical CDF shift between the lowest and highest thread
    /// counts — near 0 for eclipse, large for xalan.
    #[must_use]
    pub fn max_shift(&self) -> f64 {
        let (Some((_, lo)), Some((_, hi))) = (self.curves.first(), self.curves.last()) else {
            return 0.0;
        };
        lo.iter()
            .zip(hi.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Renders the figure as a table: one row per thread count, one
    /// column per threshold.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut headers = vec!["app".to_owned(), "threads".to_owned()];
        headers.extend(
            self.thresholds
                .iter()
                .map(|&t| format!("<{}", fmt_bytes(t))),
        );
        let mut table = Table::new(headers);
        for (i, (threads, fracs)) in self.curves.iter().enumerate() {
            let threads_cell = match self.outcomes.get(i) {
                Some(outcome) => mark_cell(threads.to_string(), outcome),
                None => threads.to_string(),
            };
            let mut row = vec![self.app.clone(), threads_cell];
            row.extend(fracs.iter().map(|&f| fmt_pct(f)));
            table.row(row);
        }
        table
    }
}

/// The one-app × thread-count spec list the lifespan sweeps execute;
/// shared with the campaign unit enumeration so the two cannot drift.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] if `app` is not one of the six
/// benchmarks.
pub(crate) fn lifespan_specs(app: &str, params: &ExpParams) -> Result<Vec<RunSpec>, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    Ok(params
        .thread_counts
        .iter()
        .map(|&t| RunSpec::new(model.scaled(params.scale), t, params.seed))
        .collect())
}

/// Runs a lifespan-CDF figure for one app over `thread_counts`.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] if `app` is not one of the six
/// benchmarks.
pub fn run_lifespan_curves(app: &str, params: &ExpParams) -> Result<LifespanCurves, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let specs = lifespan_specs(app, params)?;
    let reports = run_all(&specs);
    let thresholds = DEFAULT_THRESHOLDS.to_vec();
    let curves = params
        .thread_counts
        .iter()
        .zip(reports.iter())
        .map(|(&threads, r)| {
            let fracs = thresholds
                .iter()
                .map(|&t| r.trace.fraction_below(t))
                .collect();
            (threads, fracs)
        })
        .collect();
    Ok(LifespanCurves {
        app: model.name().to_owned(),
        thresholds,
        curves,
        outcomes: reports.iter().map(|r| r.outcome.clone()).collect(),
    })
}

/// Figure 1c: eclipse's lifespan CDF — expected to barely move with
/// thread count.
///
/// # Errors
///
/// Propagates any [`SimError`] from the sweep.
pub fn run_fig1c(params: &ExpParams) -> Result<LifespanCurves, SimError> {
    run_lifespan_curves("eclipse", params)
}

/// Figure 1d: xalan's lifespan CDF — expected to shift right markedly at
/// high thread counts.
///
/// # Errors
///
/// Propagates any [`SimError`] from the sweep.
pub fn run_fig1d(params: &ExpParams) -> Result<LifespanCurves, SimError> {
    run_lifespan_curves("xalan", params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 16])
    }

    #[test]
    fn curves_cover_thread_counts_and_thresholds() {
        let c = run_fig1d(&tiny()).unwrap();
        assert_eq!(c.app, "xalan");
        assert_eq!(c.curves.len(), 2);
        assert_eq!(c.curves[0].1.len(), DEFAULT_THRESHOLDS.len());
        assert!(c.frac_below_1k(4).is_some());
        assert!(c.frac_below_1k(99).is_none());
    }

    #[test]
    fn cdf_rows_are_monotone_in_threshold() {
        let c = run_fig1d(&tiny()).unwrap();
        for (_, fracs) in &c.curves {
            assert!(fracs.windows(2).all(|w| w[0] <= w[1] + 1e-9), "{fracs:?}");
        }
    }

    #[test]
    fn table_shape() {
        let c = run_fig1c(&tiny()).unwrap();
        let t = c.table();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.headers().len(), 2 + DEFAULT_THRESHOLDS.len());
    }

    #[test]
    fn unknown_app_is_a_structured_error() {
        let err = run_lifespan_curves("nope", &tiny()).unwrap_err();
        assert!(
            matches!(&err, SimError::UnknownApp(name) if name == "nope"),
            "{err}"
        );
    }
}
