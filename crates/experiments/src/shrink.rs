//! Automatic failure shrinking for quarantined sweep points.
//!
//! When a run fails twice and lands in quarantine, the interesting
//! artifact is rarely the failing spec itself — a 48-thread, full-heap,
//! four-fault chaos plan obscures which ingredient actually matters.
//! [`shrink_failure`] runs a small deterministic delta-debugging loop
//! over the spec, keeping each reduction only while the failure still
//! reproduces:
//!
//! 1. **Threads** are halved greedily (48 → 24 → 12 → … → 1).
//! 2. **Heap sizing** is stepped down to 2× and then 1× the app's
//!    minimum heap.
//! 3. **Chaos classes** (wakeup drops, spurious wakeups, GC stalls,
//!    memo corruption) are zeroed one at a time.
//!
//! The loop is bounded by [`SHRINK_ATTEMPT_BUDGET`] executions and is a
//! pure function of the input spec, so shrinking the same quarantine
//! twice yields the same minimum. The result is written as a
//! self-contained `repro-<key>.json` ([`write_repro`]) that the
//! `scalesim-experiments repro FILE` subcommand re-executes exactly.
//!
//! Specs carrying a watchdog deadline are executed here under the
//! engine's own host-time budget instead (no sweep watchdog thread is
//! running), so a hung candidate still terminates; such a truncation
//! counts as "still failing" for the predicate.

use std::path::{Path, PathBuf};

use scalesim_core::{ReproSpec, RunOutcome, RunReport};
use scalesim_simkit::AbortReason;

use crate::sweep::{attempt, RunSpec};

/// Hard cap on shrink executions per quarantined spec. Generous enough
/// for the full reduction schedule (≤ 6 halvings + 2 heap steps + 4
/// chaos classes + the confirming run), tight enough that shrinking
/// never dominates the sweep it serves.
pub const SHRINK_ATTEMPT_BUDGET: u32 = 24;

/// The result of shrinking one quarantined spec.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The spec as it failed in the sweep.
    pub original: ReproSpec,
    /// The smallest spec found that still fails.
    pub shrunk: ReproSpec,
    /// Executions spent (including the confirming run).
    pub attempts: u32,
    /// Failure detail of the last failing execution of the shrunk spec.
    pub failure: String,
}

/// Executes one spec with panic isolation, outside the sweep and its
/// cache. A spec whose budget carries a watchdog deadline is run under
/// an equivalent engine-side host-time cap (the sweep's watchdog thread
/// is not available here), and the resulting truncation is reported as
/// an error so hangs register as failures.
///
/// # Errors
///
/// Returns the panic payload or [`SimError`](scalesim_core::SimError)
/// text when the run fails, or a synthetic `hung:` message when the
/// host deadline guard fired.
pub fn run_isolated(spec: &RunSpec) -> Result<RunReport, String> {
    let Some(ms) = spec.config.budget.watchdog_ms else {
        return attempt(spec, None);
    };
    let mut guarded = spec.clone();
    let capped = guarded.config.budget.max_host_ms.map_or(ms, |h| h.min(ms));
    guarded.config.budget.max_host_ms = Some(capped);
    match attempt(&guarded, None)? {
        report
            if matches!(
                report.outcome,
                RunOutcome::Truncated(AbortReason::MaxHostMs(_) | AbortReason::Watchdog)
            ) =>
        {
            Err(format!("hung: run exceeded host deadline of {capped} ms"))
        }
        report => Ok(report),
    }
}

/// Shrinks a failing spec to a smaller one that still fails.
///
/// Returns `None` when the failure does not reproduce in isolation
/// (flaky under retry, or dependent on sweep-level state) — in that
/// case there is nothing trustworthy to write a repro file for.
#[must_use]
pub fn shrink_failure(spec: &RunSpec) -> Option<ShrinkOutcome> {
    let mut attempts: u32 = 0;
    let mut fails = |candidate: &RunSpec| -> Option<String> {
        if attempts >= SHRINK_ATTEMPT_BUDGET {
            return None; // budget exhausted: treat as "no longer failing"
        }
        attempts += 1;
        run_isolated(candidate).err()
    };

    let mut failure = fails(spec)?;
    let mut current = spec.clone();

    // 1. Threads: greedy halving, keeping each step while it still
    // fails. A GC-worker override is re-capped so the reduced config
    // stays structurally valid.
    while current.config.threads > 1 {
        let mut candidate = current.clone();
        candidate.config.threads = current.config.threads / 2;
        if let Some(w) = candidate.config.gc_workers_override {
            candidate.config.gc_workers_override = Some(w.min(candidate.config.cores()));
        }
        match fails(&candidate) {
            Some(why) => {
                failure = why;
                current = candidate;
            }
            None => break,
        }
    }

    // 2. Heap sizing: step down toward the app's minimum.
    let min_heap = current.app.spec().min_heap_bytes;
    for target in [min_heap.saturating_mul(2), min_heap] {
        if target == 0 || target >= current.config.heap_bytes(min_heap) {
            continue;
        }
        let mut candidate = current.clone();
        candidate.config.heap_bytes_override = Some(target);
        if let Some(why) = fails(&candidate) {
            failure = why;
            current = candidate;
        }
    }

    // 3. Chaos classes: zero one at a time, keeping each removal while
    // the failure survives without it. (`panic_at_event` stays: it is
    // the direct cause whenever it is set.)
    for class in 0..5usize {
        let mut candidate = current.clone();
        let chaos = &mut candidate.config.chaos;
        let field = match class {
            0 => &mut chaos.drop_wakeup_period,
            1 => &mut chaos.spurious_wakeup_period,
            2 => &mut chaos.gc_stall_period,
            3 => &mut chaos.memo_corrupt_period,
            _ => &mut chaos.request_drop_period,
        };
        if *field == 0 {
            continue;
        }
        *field = 0;
        if let Some(why) = fails(&candidate) {
            failure = why;
            current = candidate;
        }
    }

    Some(ShrinkOutcome {
        original: capture_exact(spec),
        shrunk: capture_exact(&current),
        attempts,
        failure,
    })
}

/// Captures a spec as a [`ReproSpec`], verifying that reconstructing it
/// lands on the identical memo key (and recording the verdict in
/// [`ReproSpec::exact`]).
fn capture_exact(spec: &RunSpec) -> ReproSpec {
    let mut repro = ReproSpec::capture(&spec.app, &spec.config, spec.memo_key());
    repro.exact = repro
        .reconstruct()
        .map(|(app, config)| RunSpec { app, config }.memo_key() == repro.spec_key)
        .unwrap_or(false);
    repro
}

/// Writes the shrunk spec as `repro-<original key>.json` in `dir`
/// (atomically), returning the path. The file name is keyed by the
/// *original* spec so repeated sweeps overwrite rather than accumulate.
///
/// # Errors
///
/// Propagates filesystem failures from the atomic write.
pub fn write_repro(outcome: &ShrinkOutcome, dir: &Path) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("repro-{:016x}.json", outcome.original.spec_key));
    let mut body = outcome.shrunk.to_json().to_string();
    body.push('\n');
    scalesim_trace::write_atomic(&path, body)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_simkit::ChaosConfig;
    use scalesim_workloads::xalan;

    #[test]
    fn healthy_spec_does_not_shrink() {
        let spec = RunSpec::new(xalan().scaled(0.002), 2, 5);
        assert!(shrink_failure(&spec).is_none());
    }

    #[test]
    fn panic_spec_shrinks_threads_and_stays_failing() {
        let mut spec = RunSpec::new(xalan().scaled(0.002), 8, 31);
        spec.config.chaos = ChaosConfig {
            panic_at_event: 500,
            drop_wakeup_period: 1 << 30, // never fires at this scale
            ..ChaosConfig::default()
        };
        let outcome = shrink_failure(&spec).expect("deterministic panic reproduces");
        assert!(outcome.shrunk.threads < 8, "{outcome:?}");
        assert_eq!(outcome.shrunk.chaos.panic_at_event, 500);
        // The inert chaos class was removed from the minimal spec.
        assert_eq!(outcome.shrunk.chaos.drop_wakeup_period, 0);
        assert!(outcome.failure.contains("deliberate panic"), "{outcome:?}");
        assert!(outcome.attempts <= SHRINK_ATTEMPT_BUDGET);
        assert!(outcome.shrunk.exact, "{outcome:?}");
        // The shrunk spec reconstructs and still fails.
        let (app, config) = outcome.shrunk.reconstruct().unwrap();
        assert!(run_isolated(&RunSpec { app, config }).is_err());
    }

    #[test]
    fn repro_file_round_trips() {
        let mut spec = RunSpec::new(xalan().scaled(0.002), 2, 77);
        spec.config.chaos = ChaosConfig {
            panic_at_event: 400,
            ..ChaosConfig::default()
        };
        let outcome = shrink_failure(&spec).expect("reproduces");
        let dir = std::env::temp_dir().join(format!("scalesim-shrink-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = write_repro(&outcome, &dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = scalesim_core::JsonValue::parse(text.trim()).unwrap();
        let loaded = ReproSpec::from_json(&parsed).unwrap();
        assert_eq!(loaded, outcome.shrunk);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
