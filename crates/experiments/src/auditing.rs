//! Concurrency-audit wiring for the sweep harness.
//!
//! The auditor itself ([`scalesim_audit::audit`]) is a pure function over a
//! recorded timeline; this module supplies the harness side:
//!
//! * [`audit_spec`] re-executes a spec with **salvage mode** and tracing
//!   forced on, so even a run that aborts on an invariant violation
//!   finalizes with its timeline and counters intact, then audits the
//!   record. This is how quarantined sweep points get audited — their
//!   original (untraced) execution discarded the evidence.
//! * [`write_audit_repro`] emits an atomic `audit-<key>.json` artifact for
//!   the first finding: a full [`ReproSpec`] (so `scalesim-experiments
//!   repro FILE` re-executes the same run exactly — the parser ignores the
//!   audit keys) plus the finding's check, class, fingerprint and the
//!   bisected first-divergent-event index.

use std::path::{Path, PathBuf};

use scalesim_audit::{audit, AuditReport};
use scalesim_core::RunReport;
use scalesim_core::{JsonValue, ReproSpec, TraceConfig};
use scalesim_trace::write_atomic;

use crate::shrink::run_isolated;
use crate::sweep::RunSpec;

/// Event-budget backstop for audit re-executions: generous for the pinned
/// audit workloads, tight enough that a pathological schedule cannot hang
/// the audit pass.
pub const AUDIT_EVENT_BACKSTOP: u64 = 4_000_000;

/// Re-executes `spec` with salvage + tracing and audits the recorded run.
///
/// The spec's simulated behavior is unchanged — salvage only affects how
/// an abort finalizes, and tracing is observational — so the audited
/// schedule is the same deterministic schedule the original spec produces.
///
/// # Errors
///
/// Returns the engine/panic message when the re-execution fails so hard
/// that salvage could not produce a report (e.g. a config rejection or an
/// injected panic).
pub fn audit_spec(spec: &RunSpec) -> Result<(RunReport, AuditReport), String> {
    let mut traced = spec.clone();
    traced.config.salvage = true;
    traced.config.trace = TraceConfig::on();
    if traced.config.budget.max_events > AUDIT_EVENT_BACKSTOP {
        traced.config.budget.max_events = AUDIT_EVENT_BACKSTOP;
    }
    let report = run_isolated(&traced)?;
    let aborted = !report.outcome.is_ok();
    let audit_report = audit(&report.timeline, &report.counters, aborted);
    Ok((report, audit_report))
}

/// Writes the `audit-<key>.json` repro artifact for the report's first
/// finding into `dir`, returning its path (`None` when the report is
/// clean). The key is the *original* spec's memo key, parallel to the
/// shrinker's `repro-<key>.json` naming.
///
/// # Errors
///
/// Propagates filesystem failures from the atomic write.
pub fn write_audit_repro(
    spec: &RunSpec,
    report: &AuditReport,
    dir: &Path,
) -> std::io::Result<Option<PathBuf>> {
    let Some(finding) = report.findings.first() else {
        return Ok(None);
    };
    let mut repro = ReproSpec::capture(&spec.app, &spec.config, spec.memo_key());
    repro.exact = repro
        .reconstruct()
        .map(|(app, config)| RunSpec { app, config }.memo_key() == repro.spec_key)
        .unwrap_or(false);
    let mut json = repro.to_json();
    if let JsonValue::Obj(pairs) = &mut json {
        pairs.push((
            "audit_check".to_owned(),
            JsonValue::Str(finding.check.name().to_owned()),
        ));
        pairs.push((
            "audit_class".to_owned(),
            JsonValue::Str(finding.class.to_owned()),
        ));
        pairs.push((
            "audit_fingerprint".to_owned(),
            JsonValue::Str(format!("{:016x}", finding.fingerprint())),
        ));
        if let Some(i) = report.divergence {
            pairs.push(("audit_divergent_event".to_owned(), JsonValue::U64(i as u64)));
        }
    }
    let path = dir.join(format!("audit-{:016x}.json", repro.spec_key));
    let mut body = json.to_string();
    body.push('\n');
    write_atomic(&path, body)?;
    Ok(Some(path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_workloads::xalan;

    #[test]
    fn clean_spec_audits_clean_and_writes_no_repro() {
        let spec = RunSpec::new(xalan().scaled(0.002), 2, 5);
        let (report, audit_report) = audit_spec(&spec).expect("runs");
        assert!(report.outcome.is_ok(), "{}", report.outcome);
        assert!(audit_report.complete, "{audit_report}");
        assert!(audit_report.is_clean(), "{audit_report}");
        let dir = std::env::temp_dir();
        assert!(write_audit_repro(&spec, &audit_report, &dir)
            .unwrap()
            .is_none());
    }

    #[test]
    fn audit_rerun_does_not_mutate_the_spec_key() {
        let spec = RunSpec::new(xalan().scaled(0.002), 2, 5);
        let key = spec.memo_key();
        let _ = audit_spec(&spec).expect("runs");
        assert_eq!(spec.memo_key(), key);
    }
}
