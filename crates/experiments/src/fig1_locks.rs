//! Figures 1a and 1b: lock acquisitions and contention instances vs.
//! thread count, for all six applications.
//!
//! Paper expectation (§III-A): "scalable applications show increasing
//! lock usage and contention as the number of threads grows. On the other
//! hand, lock usage and contention in non-scalable applications remain
//! unaffected by the number of threads."

use scalesim_core::{RunOutcome, SimError};
use scalesim_metrics::{Series, Table};
use scalesim_workloads::{all_apps, AppModel, ScalabilityClass};

use crate::params::ExpParams;
use crate::sweep::{grid_specs, mark_cell, run_all};

/// Results for Figures 1a (acquisitions) and 1b (contentions): one series
/// per application, x = thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1Locks {
    /// Total lock acquisitions per app (Figure 1a).
    pub acquisitions: Vec<Series>,
    /// Total contention instances per app (Figure 1b).
    pub contentions: Vec<Series>,
    /// Parallel to the series: each app's paper classification.
    pub classes: Vec<(String, ScalabilityClass)>,
    /// Per app, per thread point: how the underlying run ended.
    pub outcomes: Vec<Vec<RunOutcome>>,
}

impl Fig1Locks {
    /// The acquisition series for one app.
    #[must_use]
    pub fn acquisitions_of(&self, app: &str) -> Option<&Series> {
        self.acquisitions.iter().find(|s| s.label() == app)
    }

    /// The contention series for one app.
    #[must_use]
    pub fn contentions_of(&self, app: &str) -> Option<&Series> {
        self.contentions.iter().find(|s| s.label() == app)
    }

    /// Renders both figures as one table (apps × thread counts).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut headers = vec!["app".to_owned(), "class".to_owned(), "metric".to_owned()];
        if let Some(first) = self.acquisitions.first() {
            for (x, _) in first.points() {
                headers.push(format!("T={x:.0}"));
            }
        }
        let mut t = Table::new(headers);
        for (series, metric) in self
            .acquisitions
            .iter()
            .map(|s| (s, "acquisitions"))
            .chain(self.contentions.iter().map(|s| (s, "contentions")))
        {
            let class = self
                .classes
                .iter()
                .find(|(name, _)| name == series.label())
                .map_or("?", |(_, c)| c.label());
            let app_idx = self
                .classes
                .iter()
                .position(|(name, _)| name == series.label());
            let mut row = vec![
                series.label().to_owned(),
                class.to_owned(),
                metric.to_owned(),
            ];
            for (i, (_, y)) in series.points().iter().enumerate() {
                let cell = app_idx
                    .and_then(|a| self.outcomes.get(a))
                    .and_then(|per_app| per_app.get(i))
                    .map_or_else(
                        || format!("{y:.0}"),
                        |outcome| mark_cell(format!("{y:.0}"), outcome),
                    );
                row.push(cell);
            }
            t.row(row);
        }
        t
    }
}

/// Runs the Figure 1a/1b sweep: every app at every thread count.
///
/// # Errors
///
/// Currently infallible (the sweep quarantines failing runs), but shares
/// the drivers' common `Result` signature.
pub fn run_fig1_locks(params: &ExpParams) -> Result<Fig1Locks, SimError> {
    let apps = all_apps();
    let specs = grid_specs(&apps, params);
    let reports = run_all(&specs);

    let mut acquisitions = Vec::new();
    let mut contentions = Vec::new();
    let mut classes = Vec::new();
    let mut outcomes = Vec::new();
    for (a, app) in apps.iter().enumerate() {
        let mut acq = Series::new(app.name());
        let mut con = Series::new(app.name());
        let mut outs = Vec::new();
        for (t, &threads) in params.thread_counts.iter().enumerate() {
            let r = &reports[a * params.thread_counts.len() + t];
            acq.push(threads as f64, r.locks.total.acquisitions as f64);
            con.push(threads as f64, r.locks.total.contentions as f64);
            outs.push(r.outcome.clone());
        }
        acquisitions.push(acq);
        contentions.push(con);
        classes.push((app.name().to_owned(), app.class()));
        outcomes.push(outs);
    }
    Ok(Fig1Locks {
        acquisitions,
        contentions,
        classes,
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 16])
    }

    #[test]
    fn sweep_covers_all_apps_and_threads() {
        let f = run_fig1_locks(&tiny()).unwrap();
        assert_eq!(f.acquisitions.len(), 6);
        assert_eq!(f.contentions.len(), 6);
        assert!(f.acquisitions.iter().all(|s| s.len() == 2));
        assert!(f.acquisitions_of("xalan").is_some());
        assert!(f.acquisitions_of("nope").is_none());
    }

    #[test]
    fn table_has_a_row_per_app_per_metric() {
        let f = run_fig1_locks(&tiny()).unwrap();
        let t = f.table();
        assert_eq!(t.num_rows(), 12);
        assert_eq!(t.headers().len(), 3 + 2);
    }
}
