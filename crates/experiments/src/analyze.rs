//! The `analyze` pass: turns a completed sweep into an
//! [`AnalyticsReport`] and the on-disk `analytics.json` artifact.
//!
//! Analysis reuses the ordinary sweep harness, so a checkpoint resume
//! or a merged campaign (both of which seed the memo cache) serves
//! every run from cache and the pass is pure computation — the emitted
//! artifact is byte-identical however the reports were obtained. No
//! input read here depends on `host_ns` or any other host-side value.

use std::path::{Path, PathBuf};

use scalesim_analytics::{fit_usl, AnalyticsReport, Percentiles, TimeProfile, WorkloadAnalysis};
use scalesim_core::{RunReport, SimError};
use scalesim_trace::write_atomic;
use scalesim_workloads::{all_apps, AppModel};

use crate::params::ExpParams;
use crate::sweep::{grid_specs, run_all};

/// Runs (or replays, when memoized/checkpointed) the figure sweep and
/// derives the analytics report.
///
/// # Errors
///
/// Currently infallible (the sweep quarantines failing runs; analysis
/// skips quarantined cells), but shares the drivers' common `Result`
/// signature.
pub fn run_analytics(params: &ExpParams) -> Result<AnalyticsReport, SimError> {
    let apps = all_apps();
    let specs = grid_specs(&apps, params);
    let reports = run_all(&specs);
    Ok(analytics_from_reports(params, &reports))
}

/// Builds the report from sweep-ordered reports (app-major,
/// thread-minor — the order [`grid_specs`] emits).
pub(crate) fn analytics_from_reports(params: &ExpParams, reports: &[RunReport]) -> AnalyticsReport {
    let apps = all_apps();
    let per_app = params.thread_counts.len();
    let workloads = apps
        .iter()
        .enumerate()
        .map(|(a, app)| {
            let rows = &reports[a * per_app..(a + 1) * per_app];
            analyze_workload(app.name(), app.class().label(), &params.thread_counts, rows)
        })
        .collect();
    AnalyticsReport {
        seed: params.seed,
        threads: params.thread_counts.clone(),
        workloads,
    }
}

fn analyze_workload(
    app: &str,
    expected: &str,
    thread_counts: &[usize],
    rows: &[RunReport],
) -> WorkloadAnalysis {
    let points: Vec<(usize, f64)> = thread_counts
        .iter()
        .zip(rows)
        .map(|(&t, r)| (t, throughput(r)))
        .collect();
    let float_pts: Vec<(f64, f64)> = points.iter().map(|&(t, x)| (t as f64, x)).collect();
    let fit = fit_usl(&float_pts);
    let (min_n, max_n) = (
        thread_counts.first().copied().unwrap_or(1) as f64,
        thread_counts.last().copied().unwrap_or(1) as f64,
    );
    let class = fit.map(|f| f.classify(min_n, max_n));
    // Attribution and percentiles come from the top of the sweep — the
    // highest thread count whose run actually completed — where the
    // paper's mutator/GC/lock-wait split is most diagnostic.
    let top = rows.iter().rev().find(|r| !r.wall_time.is_zero());
    WorkloadAnalysis {
        app: app.to_owned(),
        expected: expected.to_owned(),
        points,
        fit,
        class,
        profile: top.map(TimeProfile::from_report).unwrap_or_default(),
        hold: top.map_or_else(Percentiles::default, |r| {
            Percentiles::from_histogram(&r.locks.hold_hist)
        }),
        wait: top.map_or_else(Percentiles::default, |r| {
            Percentiles::from_histogram(&r.locks.wait_hist)
        }),
    }
}

/// Throughput of one sweep cell in items per simulated second; zero for
/// quarantined cells (no wall time), which the USL fitter then skips.
fn throughput(r: &RunReport) -> f64 {
    if r.wall_time.is_zero() {
        0.0
    } else {
        r.total_items() as f64 / r.wall_time.as_secs_f64()
    }
}

/// Writes `analytics.json` atomically into `dir` and returns its path.
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_analytics(dir: &Path, report: &AnalyticsReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join("analytics.json");
    write_atomic(&path, report.to_json_string())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_simkit::SimDuration;

    fn stub(app: &str, threads: usize, items: u64, wall_ns: u64) -> RunReport {
        let mut r = RunReport::quarantined(app, threads, threads, String::new());
        r.outcome = scalesim_core::RunOutcome::Ok;
        r.wall_time = SimDuration::from_nanos(wall_ns);
        r.per_thread = vec![scalesim_core::ThreadReport {
            items_done: items,
            times: scalesim_sched::StateTimes::default(),
            dispatches: 0,
            preemptions: 0,
        }];
        r
    }

    #[test]
    fn reports_map_onto_grid_order() {
        let params = ExpParams::quick().with_threads(vec![4, 8]);
        let mut reports = Vec::new();
        for app in all_apps() {
            // Perfectly scalable synthetic curve for every app.
            reports.push(stub(app.name(), 4, 400, 1_000_000_000));
            reports.push(stub(app.name(), 8, 800, 1_000_000_000));
        }
        let analytics = analytics_from_reports(&params, &reports);
        assert_eq!(analytics.workloads.len(), all_apps().len());
        assert_eq!(analytics.threads, vec![4, 8]);
        for w in &analytics.workloads {
            assert_eq!(w.points.len(), 2);
            assert!((w.points[0].1 - 400.0).abs() < 1e-9);
            let fit = w.fit.expect("fit");
            assert!(fit.sigma < 1e-9, "{fit:?}");
            assert_eq!(w.profile.threads, 8, "attribution from the top row");
        }
    }

    #[test]
    fn quarantined_top_falls_back_to_last_completed_row() {
        let params = ExpParams::quick().with_threads(vec![4, 8]);
        let mut reports = Vec::new();
        for app in all_apps() {
            reports.push(stub(app.name(), 4, 400, 1_000_000_000));
            reports.push(RunReport::quarantined(app.name(), 8, 8, "boom".into()));
        }
        let analytics = analytics_from_reports(&params, &reports);
        for w in &analytics.workloads {
            assert_eq!(w.points[1].1, 0.0, "quarantined cell has zero throughput");
            assert_eq!(
                w.profile.threads, 4,
                "attribution skips the quarantined top"
            );
            assert!(w.fit.is_some(), "fit survives on the remaining point");
        }
    }

    #[test]
    fn write_analytics_emits_parseable_file() {
        let dir =
            std::env::temp_dir().join(format!("scalesim-analyze-test-{}", std::process::id()));
        let params = ExpParams::quick().with_threads(vec![4]);
        let reports: Vec<RunReport> = all_apps()
            .iter()
            .map(|a| stub(a.name(), 4, 100, 1_000_000_000))
            .collect();
        let analytics = analytics_from_reports(&params, &reports);
        let path = write_analytics(&dir, &analytics).expect("write");
        let text = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(text, analytics.to_json_string());
        std::fs::remove_dir_all(&dir).ok();
    }
}
