//! Offline validator for the observability artifacts CI produces: a
//! Chrome trace-event export and (optionally) a run-manifest JSONL.
//!
//! ```sh
//! trace_check trace.json                       # validate the export
//! trace_check trace.json manifest.jsonl 2      # plus the manifest,
//!                                              # expecting 2 lines
//! ```
//!
//! The container builds fully offline — no `jq`, no Python — so this
//! binary leans on `scalesim_trace::check`'s std-only JSON parser. Exit
//! code 0 means every artifact validated; 1 means a malformed artifact
//! or a usage error, with the reason on stderr.

use std::process::ExitCode;

use scalesim_trace::check::{validate_chrome_trace, validate_manifest_line};

const USAGE: &str = "usage: trace_check <trace.json> [<manifest.jsonl> <expected-lines>]";

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, manifest) = match args.len() {
        1 => (&args[0], None),
        3 => {
            let expected: usize = args[2]
                .parse()
                .map_err(|_| format!("bad expected-lines `{}`\n{USAGE}", args[2]))?;
            (&args[0], Some((&args[1], expected)))
        }
        _ => return Err(USAGE.to_owned()),
    };

    let text =
        std::fs::read_to_string(trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
    let check = validate_chrome_trace(&text).map_err(|e| format!("{trace_path}: {e}"))?;
    if check.spans == 0 {
        return Err(format!("{trace_path}: export carries no spans"));
    }
    println!(
        "{trace_path}: ok ({} events: {} spans, {} instants, {} counters, \
         {} metadata; {} distinct names)",
        check.events, check.spans, check.instants, check.counters, check.metadata, check.names
    );

    if let Some((manifest_path, expected)) = manifest {
        let body = std::fs::read_to_string(manifest_path)
            .map_err(|e| format!("read {manifest_path}: {e}"))?;
        let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.len() != expected {
            return Err(format!(
                "{manifest_path}: expected {expected} manifest lines, found {}",
                lines.len()
            ));
        }
        for (n, line) in lines.iter().enumerate() {
            validate_manifest_line(line).map_err(|e| format!("{manifest_path}:{}: {e}", n + 1))?;
        }
        println!("{manifest_path}: ok ({} lines)", lines.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
