//! Offline validator for the observability artifacts CI produces: a
//! Chrome trace-event export (optionally plus a run-manifest JSONL), or
//! an `analytics.json` scalability-analytics artifact.
//!
//! ```sh
//! trace_check trace.json                       # validate the export
//! trace_check trace.json manifest.jsonl 2      # plus the manifest,
//!                                              # expecting 2 lines
//! trace_check --analytics analytics.json       # validate analytics
//! ```
//!
//! The container builds fully offline — no `jq`, no Python — so this
//! binary leans on `scalesim_trace::check`'s std-only JSON parser. Exit
//! code 0 means every artifact validated; 1 means a malformed artifact
//! or a usage error, with the reason on stderr.

use std::process::ExitCode;

use scalesim_trace::check::{validate_analytics, validate_chrome_trace, validate_manifest_line};

const USAGE: &str = "usage: trace_check <trace.json> [<manifest.jsonl> <expected-lines>]\n\
       trace_check --analytics <analytics.json>";

/// Validates an analytics artifact and prints its classification rows
/// (`app=class`), so CI logs double as a stability record.
fn run_analytics_check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let check = validate_analytics(&text).map_err(|e| format!("{path}: {e}"))?;
    if check.workloads == 0 {
        return Err(format!("{path}: artifact carries no workloads"));
    }
    let classes: Vec<String> = check
        .classes
        .iter()
        .map(|(app, class)| format!("{app}={class}"))
        .collect();
    println!(
        "{path}: ok ({} workloads; paper split reproduced: {}; fingerprint {}; {})",
        check.workloads,
        check.all_match_paper,
        check.fingerprint,
        classes.join(" ")
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--analytics") {
        return match args.len() {
            2 => run_analytics_check(&args[1]),
            _ => Err(USAGE.to_owned()),
        };
    }
    let (trace_path, manifest) = match args.len() {
        1 => (&args[0], None),
        3 => {
            let expected: usize = args[2]
                .parse()
                .map_err(|_| format!("bad expected-lines `{}`\n{USAGE}", args[2]))?;
            (&args[0], Some((&args[1], expected)))
        }
        _ => return Err(USAGE.to_owned()),
    };

    let text =
        std::fs::read_to_string(trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
    let check = validate_chrome_trace(&text).map_err(|e| format!("{trace_path}: {e}"))?;
    if check.spans == 0 {
        return Err(format!("{trace_path}: export carries no spans"));
    }
    println!(
        "{trace_path}: ok ({} events: {} spans, {} instants, {} counters, \
         {} metadata; {} distinct names)",
        check.events, check.spans, check.instants, check.counters, check.metadata, check.names
    );

    if let Some((manifest_path, expected)) = manifest {
        let body = std::fs::read_to_string(manifest_path)
            .map_err(|e| format!("read {manifest_path}: {e}"))?;
        let lines: Vec<&str> = body.lines().filter(|l| !l.trim().is_empty()).collect();
        if lines.len() != expected {
            return Err(format!(
                "{manifest_path}: expected {expected} manifest lines, found {}",
                lines.len()
            ));
        }
        for (n, line) in lines.iter().enumerate() {
            validate_manifest_line(line).map_err(|e| format!("{manifest_path}:{}: {e}", n + 1))?;
        }
        println!("{manifest_path}: ok ({} lines)", lines.len());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("trace_check: {msg}");
            ExitCode::FAILURE
        }
    }
}
