//! `ext-locks`: lock algorithm × thread count across all six workloads.
//!
//! The paper attributes the non-scalable group's collapse to monitor
//! contention under the HotSpot FIFO handoff. This study makes the lock
//! itself a sweep axis: the same grid runs under the default FIFO
//! monitor, an MCS-style queue lock (bounded spin before parking), and a
//! Malthusian concurrency-restricting lock in the style of Dice &
//! Kogan's `LockCohorts`/Malthusian work — surplus waiters are parked in
//! a passive set so only a small active set churns the monitor. The
//! queue-fair algorithms (FIFO, MCS) keep every waiter on the handoff
//! critical path and collapse once wake-up latency dominates the
//! critical section; the Malthusian lock removes the surplus from the
//! path and holds saturated throughput roughly flat.

use scalesim_core::{JvmConfig, LockAlg, RunOutcome, SimError};
use scalesim_metrics::Table;
use scalesim_simkit::SimDuration;
use scalesim_workloads::{all_apps, AppModel};

use crate::params::ExpParams;
use crate::sweep::{outcome_cell, run_all, RunSpec};

/// The app × algorithm × thread-count spec list the study executes;
/// shared with the campaign unit enumeration so the two cannot drift.
///
/// # Errors
///
/// Propagates configuration errors.
pub(crate) fn lock_specs(params: &ExpParams) -> Result<Vec<RunSpec>, SimError> {
    let apps = all_apps();
    let mut specs =
        Vec::with_capacity(apps.len() * LockAlg::ALL.len() * params.thread_counts.len());
    for app in &apps {
        for alg in LockAlg::ALL {
            for &threads in &params.thread_counts {
                let mut cfg = JvmConfig::builder();
                cfg.threads(threads).seed(params.seed).lock_alg(alg);
                specs.push(RunSpec {
                    app: app.scaled(params.scale),
                    config: cfg.build()?,
                });
            }
        }
    }
    Ok(specs)
}

/// One row of the lock-algorithm study.
#[derive(Debug, Clone, PartialEq)]
pub struct LockAlgRow {
    /// Application name.
    pub app: String,
    /// Lock algorithm the run used.
    pub alg: LockAlg,
    /// Configured mutator threads.
    pub threads: usize,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// Contended monitor acquisitions across all monitors.
    pub contentions: u64,
    /// Work items retired per simulated second.
    pub throughput: f64,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The lock-algorithm × thread-count study over all six workloads.
#[derive(Debug, Clone, PartialEq)]
pub struct LockAlgStudy {
    /// One row per (app, algorithm, thread count), app-major then
    /// algorithm-major.
    pub rows: Vec<LockAlgRow>,
}

impl LockAlgStudy {
    /// The row for `(app, alg, threads)`.
    #[must_use]
    pub fn row(&self, app: &str, alg: LockAlg, threads: usize) -> Option<&LockAlgRow> {
        self.rows
            .iter()
            .find(|r| r.app == app && r.alg == alg && r.threads == threads)
    }

    /// Throughput of `(app, alg)` at the largest thread count present.
    #[must_use]
    pub fn saturated_throughput(&self, app: &str, alg: LockAlg) -> Option<f64> {
        self.rows
            .iter()
            .filter(|r| r.app == app && r.alg == alg)
            .max_by_key(|r| r.threads)
            .map(|r| r.throughput)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "app",
            "alg",
            "threads",
            "wall",
            "contentions",
            "items/s",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.app.clone(),
                r.alg.as_str().to_owned(),
                r.threads.to_string(),
                r.wall.to_string(),
                r.contentions.to_string(),
                format!("{:.0}", r.throughput),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs `ext-locks`: every app at every thread count under each lock
/// algorithm.
///
/// # Errors
///
/// Propagates configuration errors.
pub fn run_lock_algorithms(params: &ExpParams) -> Result<LockAlgStudy, SimError> {
    let specs = lock_specs(params)?;
    let reports = run_all(&specs);
    let apps = all_apps();
    let per_alg = params.thread_counts.len();
    let per_app = LockAlg::ALL.len() * per_alg;
    let mut rows = Vec::with_capacity(reports.len());
    for (a, app) in apps.iter().enumerate() {
        for (g, alg) in LockAlg::ALL.into_iter().enumerate() {
            for (t, &threads) in params.thread_counts.iter().enumerate() {
                let r = &reports[a * per_app + g * per_alg + t];
                rows.push(LockAlgRow {
                    app: app.name().to_owned(),
                    alg,
                    threads,
                    wall: r.wall_time,
                    contentions: r.locks.total.contentions,
                    throughput: if r.wall_time.is_zero() {
                        0.0
                    } else {
                        r.total_items() as f64 / r.wall_time.as_secs_f64()
                    },
                    outcome: r.outcome.clone(),
                });
            }
        }
    }
    Ok(LockAlgStudy { rows })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1_locks::run_fig1_locks;
    use scalesim_core::Jvm;
    use scalesim_workloads::xalan;

    fn tiny() -> ExpParams {
        ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 16])
    }

    #[test]
    fn study_covers_every_app_algorithm_and_thread_count() {
        let params = tiny();
        let s = run_lock_algorithms(&params).unwrap();
        assert_eq!(s.rows.len(), 6 * LockAlg::ALL.len() * 2);
        for alg in LockAlg::ALL {
            assert!(s.row("xalan", alg, 16).is_some());
        }
        assert_eq!(s.table().num_rows(), s.rows.len());
    }

    #[test]
    fn specs_key_on_the_algorithm() {
        let params = tiny();
        let specs = lock_specs(&params).unwrap();
        let per_alg = params.thread_counts.len();
        // Same app/threads/seed under two algorithms must not share a
        // memo key, or the cache would serve FIFO results to MCS runs.
        assert_ne!(specs[0].memo_key(), specs[per_alg].memo_key());
    }

    /// Satellite 4: the refactored FIFO path must reproduce the
    /// pre-refactor Figure 1a/1b tables byte for byte.
    #[test]
    fn fifo_tables_match_the_prerefactor_golden() {
        let params = ExpParams::quick()
            .with_scale(0.02)
            .with_threads(vec![4, 16, 48]);
        let f = run_fig1_locks(&params).unwrap();
        let golden = include_str!("../goldens/fig1_locks_prerefactor.csv");
        assert_eq!(
            f.table().to_csv(),
            golden,
            "FIFO output drifted from the pre-refactor golden"
        );
    }

    /// `fifo-dyn` routes the same FIFO algorithm through dynamic
    /// dispatch; every observable must be identical.
    #[test]
    fn fifo_dyn_reports_are_identical_to_fifo() {
        let run = |alg: LockAlg| {
            let cfg = JvmConfig::builder()
                .threads(8)
                .seed(7)
                .lock_alg(alg)
                .build()
                .unwrap();
            Jvm::new(cfg).run(&xalan().scaled(0.02)).unwrap()
        };
        let fifo = run(LockAlg::Fifo);
        let dynamic = run(LockAlg::FifoDyn);
        assert_eq!(fifo.wall_time, dynamic.wall_time);
        assert_eq!(fifo.total_items(), dynamic.total_items());
        assert_eq!(fifo.locks, dynamic.locks);
        assert_eq!(fifo.outcome, dynamic.outcome);
    }

    /// The headline acceptance criterion: the queue-fair algorithms show
    /// the scalability-collapse knee on a contended workload (throughput
    /// peaks below the largest thread count, then falls), the Malthusian
    /// lock retains more of its peak past the knee than the queue-fair
    /// locks, and its saturated throughput is at least 2x MCS's at the
    /// pinned seed.
    #[test]
    fn malthusian_removes_the_collapse_knee() {
        let params = ExpParams::quick()
            .with_scale(0.02)
            .with_threads(vec![8, 48, 96]);
        let s = run_lock_algorithms(&params).unwrap();
        let peak = |alg: LockAlg| {
            s.rows
                .iter()
                .filter(|r| r.app == "xalan" && r.alg == alg)
                .map(|r| r.throughput)
                .fold(0.0_f64, f64::max)
        };
        let retained = |alg: LockAlg| s.saturated_throughput("xalan", alg).unwrap() / peak(alg);
        for alg in [LockAlg::Fifo, LockAlg::Mcs] {
            let saturated = s.saturated_throughput("xalan", alg).unwrap();
            assert!(
                saturated < 0.95 * peak(alg),
                "{alg}: expected collapse past the knee, got peak {:.0} -> {saturated:.0} items/s",
                peak(alg)
            );
        }
        assert!(
            retained(LockAlg::Malthusian) > retained(LockAlg::Mcs),
            "Malthusian should hold its peak better than MCS past the knee"
        );
        let mcs = s.saturated_throughput("xalan", LockAlg::Mcs).unwrap();
        let malthusian = s
            .saturated_throughput("xalan", LockAlg::Malthusian)
            .unwrap();
        assert!(
            malthusian >= 2.0 * mcs,
            "Malthusian {malthusian:.0} items/s vs MCS {mcs:.0} items/s at saturation"
        );
    }
}
