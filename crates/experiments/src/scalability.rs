//! The §II-C scalability classification: execution time vs. thread
//! count for all six applications.
//!
//! "The result suggests that we can characterize the first three
//! applications [sunflow, lusearch, xalan] as scalable and the remainder
//! [h2, eclipse, jython] as non-scalable. In a scalable application, its
//! execution time would reduce with more threads and more cores."

use scalesim_core::{RunOutcome, SimError};
use scalesim_metrics::{fmt2, Series, Table};
use scalesim_simkit::SimDuration;
use scalesim_workloads::{all_apps, AppModel, ScalabilityClass};

use crate::params::ExpParams;
use crate::sweep::{grid_specs, mark_cell, run_all};

/// Speedup (vs. the smallest thread count) above which an application is
/// classified scalable at the largest thread count. With a 4→48 sweep a
/// perfectly scalable app reaches 12×; serialized apps stay near 1×.
pub const SCALABLE_SPEEDUP_THRESHOLD: f64 = 3.0;

/// Execution times of one application across the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityRow {
    /// Application name.
    pub app: String,
    /// The paper's a-priori classification.
    pub expected: ScalabilityClass,
    /// `(threads, wall time)` per sweep point.
    pub walls: Vec<(usize, SimDuration)>,
    /// Outcome of each sweep point, parallel to `walls` (empty means all
    /// points completed normally).
    pub outcomes: Vec<RunOutcome>,
}

impl ScalabilityRow {
    /// Speedup of the last sweep point relative to the first.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.speedup_at(self.walls.len().saturating_sub(1))
    }

    /// Speedup of sweep point `i` relative to the baseline (leftmost,
    /// smallest thread count) column — 1.0 for the baseline itself, and
    /// for quarantined cells with no wall time.
    #[must_use]
    pub fn speedup_at(&self, i: usize) -> f64 {
        let first = self.walls.first().expect("non-empty sweep").1;
        let at = self.walls.get(i).expect("sweep point in range").1;
        if at.is_zero() {
            1.0
        } else {
            first.as_secs_f64() / at.as_secs_f64()
        }
    }

    /// Classification measured from the sweep.
    #[must_use]
    pub fn measured(&self) -> ScalabilityClass {
        if self.speedup() >= SCALABLE_SPEEDUP_THRESHOLD {
            ScalabilityClass::Scalable
        } else {
            ScalabilityClass::NonScalable
        }
    }

    /// Whether the measured class matches the paper's.
    #[must_use]
    pub fn matches_paper(&self) -> bool {
        self.measured() == self.expected
    }

    /// Wall time vs. threads as a series.
    #[must_use]
    pub fn series(&self) -> Series {
        let mut s = Series::new(&self.app);
        for &(t, w) in &self.walls {
            s.push(t as f64, w.as_secs_f64());
        }
        s
    }
}

/// The full classification table.
#[derive(Debug, Clone, PartialEq)]
pub struct Scalability {
    /// One row per application.
    pub rows: Vec<ScalabilityRow>,
}

impl Scalability {
    /// The row for one app.
    #[must_use]
    pub fn row_of(&self, app: &str) -> Option<&ScalabilityRow> {
        self.rows.iter().find(|r| r.app == app)
    }

    /// Whether every application's measured class matches the paper.
    #[must_use]
    pub fn all_match_paper(&self) -> bool {
        self.rows.iter().all(ScalabilityRow::matches_paper)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut headers = vec!["app".to_owned(), "expected".to_owned()];
        if let Some(first) = self.rows.first() {
            for &(t, _) in &first.walls {
                headers.push(format!("T={t}"));
            }
        }
        headers.push("speedup".to_owned());
        headers.push("measured".to_owned());
        let mut table = Table::new(headers);
        for r in &self.rows {
            let mut row = vec![r.app.clone(), r.expected.label().to_owned()];
            for (i, &(_, w)) in r.walls.iter().enumerate() {
                // Wall time plus speedup vs. the baseline column, so a
                // non-scalable app is legible straight off the table.
                let base = format!("{} ({}x)", w, fmt2(r.speedup_at(i)));
                let cell = match r.outcomes.get(i) {
                    Some(outcome) => mark_cell(base, outcome),
                    None => base,
                };
                row.push(cell);
            }
            row.push(format!("{}x", fmt2(r.speedup())));
            row.push(r.measured().label().to_owned());
            table.row(row);
        }
        table
    }
}

/// Runs the scalability sweep over all six apps.
///
/// # Errors
///
/// Currently infallible (the sweep quarantines failing runs), but shares
/// the drivers' common `Result` signature.
pub fn run_scalability(params: &ExpParams) -> Result<Scalability, SimError> {
    let apps = all_apps();
    let specs = grid_specs(&apps, params);
    let reports = run_all(&specs);
    let rows = apps
        .iter()
        .enumerate()
        .map(|(a, app)| ScalabilityRow {
            app: app.name().to_owned(),
            expected: app.class(),
            walls: params
                .thread_counts
                .iter()
                .enumerate()
                .map(|(t, &threads)| {
                    (
                        threads,
                        reports[a * params.thread_counts.len() + t].wall_time,
                    )
                })
                .collect(),
            outcomes: params
                .thread_counts
                .iter()
                .enumerate()
                .map(|(t, _)| reports[a * params.thread_counts.len() + t].outcome.clone())
                .collect(),
        })
        .collect();
    Ok(Scalability { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_and_classification() {
        let row = ScalabilityRow {
            app: "x".into(),
            expected: ScalabilityClass::Scalable,
            walls: vec![
                (4, SimDuration::from_millis(120)),
                (48, SimDuration::from_millis(10)),
            ],
            outcomes: vec![],
        };
        assert!((row.speedup() - 12.0).abs() < 1e-9);
        assert!((row.speedup_at(0) - 1.0).abs() < 1e-9);
        assert!((row.speedup_at(1) - 12.0).abs() < 1e-9);
        assert_eq!(row.measured(), ScalabilityClass::Scalable);
        assert!(row.matches_paper());
    }

    #[test]
    fn table_cells_carry_per_cell_speedups() {
        let row = ScalabilityRow {
            app: "x".into(),
            expected: ScalabilityClass::Scalable,
            walls: vec![
                (4, SimDuration::from_millis(120)),
                (48, SimDuration::from_millis(10)),
            ],
            outcomes: vec![RunOutcome::Ok, RunOutcome::Ok],
        };
        let t = Scalability { rows: vec![row] }.table();
        let cells = &t.rows()[0];
        assert!(cells[2].ends_with("(1.00x)"), "{cells:?}");
        assert!(cells[3].ends_with("(12.00x)"), "{cells:?}");
    }

    #[test]
    fn flat_app_is_non_scalable() {
        let row = ScalabilityRow {
            app: "h".into(),
            expected: ScalabilityClass::NonScalable,
            walls: vec![
                (4, SimDuration::from_millis(100)),
                (48, SimDuration::from_millis(80)),
            ],
            outcomes: vec![],
        };
        assert_eq!(row.measured(), ScalabilityClass::NonScalable);
        assert!(row.matches_paper());
    }

    #[test]
    fn sweep_produces_six_rows() {
        let params = ExpParams::quick()
            .with_scale(0.005)
            .with_threads(vec![2, 8]);
        let s = run_scalability(&params).unwrap();
        assert_eq!(s.rows.len(), 6);
        assert!(s.row_of("jython").is_some());
        let t = s.table();
        assert_eq!(t.num_rows(), 6);
    }
}
