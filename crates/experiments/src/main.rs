//! Command-line driver regenerating every table and figure of the paper.
//!
//! ```sh
//! scalesim-experiments all                 # paper-sized, every artifact
//! scalesim-experiments fig1d --scale 0.1   # one artifact, smaller run
//! scalesim-experiments fig2 --out results  # also write CSV files
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use scalesim_core::{JsonValue, Jvm, JvmConfig, LockAlg, ReproSpec, SimError, TraceConfig};
use scalesim_experiments::campaign::{self, CampaignError, CampaignSpec};
use scalesim_experiments::{
    artifact_tables, audit_spec, checkpoint, run_analytics, run_isolated, shrink_failure,
    take_run_manifests, take_sweep_failures, write_analytics, write_audit_repro, write_repro,
    ExpParams, RunSpec, SweepFailureKind, ALL_ARTIFACTS,
};
use scalesim_metrics::Table;
use scalesim_trace::write_atomic;
use scalesim_workloads::{h2, lusearch, xalan};

const USAGE: &str = "\
usage: scalesim-experiments <artifact> [--scale F] [--seed N] [--threads a,b,c] [--out DIR]
                            [--trace FILE] [--checkpoint DIR] [--resume] [--audit] [--analyze]
       scalesim-experiments campaign <artifact> --dir DIR [--workers N] [options]
       scalesim-experiments analyze [--dir CKPT] [options]
       scalesim-experiments repro FILE
       scalesim-experiments audit [--seed N] [--out DIR]

artifacts:
  workdist    per-thread workload distribution (paper §III)
  scaletable  scalable / non-scalable classification (paper §II-C)
  fig1a       lock acquisitions vs threads (with fig1b)
  fig1b       lock contentions vs threads (with fig1a)
  fig1c       eclipse object-lifespan CDF
  fig1d       xalan object-lifespan CDF
  fig2        mutator vs GC time decomposition
  abl-sched   ablation: biased (cohort) scheduling
  abl-heap    ablation: compartmentalized heaplets
  ext-ergo    extension: adaptive nursery sizing (pause goals)
  ext-numa    extension: compact vs scatter NUMA placement
  ext-sharding extension: sharding xalan's hot dtm-cache lock
  ext-gcworkers extension: parallel GC worker scaling
  ext-oversub  extension: oversubscription (threads beyond cores)
  ext-heapsize extension: trace-replay heap-size sweep (3x-min-heap rule)
  ext-concurrent extension: mostly-concurrent old-gen collector
  ext-topo    extension: machine-topology sweep (AMD / Xeon / SPARC-T3)
  ext-locks   extension: lock algorithms (fifo / mcs / malthusian) x
              thread count across all six workloads; the queue-fair
              algorithms collapse past the knee, the Malthusian
              (concurrency-restricting) lock holds its saturated
              throughput
  ext-server  extension: server request workloads with overload control
              (no-fault / naive / robust policies under a transient GC
              stall; reproduces retry-storm metastable failure and its
              elimination by backoff + admission control). Knobs:
              SCALESIM_SERVER_RATE, SCALESIM_SERVER_TIMEOUT_US,
              SCALESIM_SERVER_QUEUE, SCALESIM_SERVER_ADMIT (0 = none),
              SCALESIM_SERVER_DEGRADE (0 = none). A run whose server
              enters degraded mode exits 2 like a quarantined run
  all         everything above
  campaign <artifact>  drain one artifact's sweep cooperatively across
              N worker processes sharing --dir: units are claimed with
              TTL-based lease files (SCALESIM_LEASE_TTL_MS, default
              2000), results stream into per-worker crc-framed
              segments, and the final merge is byte-identical to a
              single-process run no matter how many workers ran or
              crashed (SIGKILL included). Campaignable artifacts:
              workdist scaletable fig1a fig1b fig1c fig1d fig2 ext-topo
              ext-server ext-locks
  repro FILE  re-execute a shrunk failure spec (repro-*.json or
              audit-*.json) exactly; exits 0 when the failure
              reproduces, 1 when it does not
  audit       run the concurrency auditor over pinned traced runs
              (h2 @16, xalan @8, scale 0.02); chaos comes from
              SCALESIM_CHAOS. Exits 0 when the audit is clean, 1 on
              unexpected findings, 2 when every finding is explained
              by an injected fault; writes audit-<key>.json repros
              for findings into --out (or the current directory)
  analyze     fit the figure sweep's throughput curves to the
              Universal Scalability Law (per-workload sigma/kappa,
              peak concurrency, predicted collapse point, automatic
              scalable / contention-limited / coherency-collapsed
              classification), attribute thread-time (mutator / GC /
              lock wait), and report p50/p95/p99 monitor hold and
              lock-wait latencies; writes a deterministic,
              fingerprinted analytics.json into --out (or the current
              directory). With --dir CKPT the sweep is replayed from
              that checkpoint store, so the artifact is re-derived
              without re-simulation and byte-identical to the live run

options:
  --scale F      workload scale factor (default 1.0 = paper-sized)
  --seed N       master seed (default 42)
  --threads LIST comma-separated thread counts (default 4,8,16,32,48)
  --lock-alg A   monitor lock algorithm for every run: fifo (default),
                 mcs, or malthusian (SCALESIM_LOCK_ALG reaches the same
                 switch from wrappers; campaign workers inherit it)
  --out DIR      also write each table as CSV into DIR, plus a
                 manifest.jsonl joining every sweep run with its
                 harness provenance (memo/retry/quarantine status)
  --trace FILE   additionally run a traced 4-thread lusearch and export
                 its timeline as Chrome trace-event JSON to FILE (open
                 at https://ui.perfetto.dev or chrome://tracing);
                 SCALESIM_TRACE=<path> traces every run instead
  --checkpoint DIR  persist every completed run to a crc-checked store
                 in DIR as the sweep goes (SCALESIM_CHECKPOINT=DIR too)
  --resume       replay the checkpoint store before sweeping: verified
                 runs are served without re-simulation, torn or corrupt
                 records re-run (SCALESIM_RESUME=1 too)
  --audit        after the artifact, re-execute every quarantined sweep
                 point with salvage + tracing and run the concurrency
                 auditor over the recovered timeline; audit-<key>.json
                 repros land next to the shrinker's repro files
                 (SCALESIM_AUDIT=1 too)
  --analyze      after the artifact, run the analytics pass over the
                 figure sweep (memoized runs are reused) and write
                 analytics.json next to the CSVs; manifest.jsonl rows
                 gain analytics/analytics_fp cross-links
                 (SCALESIM_ANALYZE=1 too)
  --dir DIR      (campaign) the shared campaign directory;
                 (analyze) a checkpoint store to re-derive from
  --workers N    (campaign) worker processes to spawn (default
                 SCALESIM_CAMPAIGN_WORKERS or 2; 0 = drain in-process)

exit codes: 0 clean; 1 runtime failure; 2 finished but some run was
quarantined, truncated, memo-corrupted, or served degraded; 3 usage/
config error
";

struct Cli {
    artifact: String,
    file: Option<PathBuf>,
    target: Option<String>,
    dir: Option<PathBuf>,
    workers: Option<usize>,
    params: ExpParams,
    lock_alg: Option<LockAlg>,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    resume: bool,
    audit: bool,
    analyze: bool,
}

/// CLI failure split by exit code: bad input (3, with usage) vs a
/// failure at runtime (1).
enum CliError {
    Config(String),
    Runtime(String),
}

/// Maps engine errors onto the CLI's exit-code classes: rejected
/// configurations, unknown apps, and malformed snapshots are the
/// caller's input (3); invariant violations are runtime failures (1).
fn classify(e: &SimError) -> CliError {
    match e {
        SimError::Config(_) | SimError::UnknownApp(_) | SimError::Snapshot(_) => {
            CliError::Config(e.to_string())
        }
        SimError::Invariant(_) => CliError::Runtime(e.to_string()),
    }
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut artifact: Option<String> = None;
    let mut file = None;
    let mut target: Option<String> = None;
    let mut dir = None;
    let mut workers = None;
    let mut params = ExpParams::paper();
    let mut lock_alg = None;
    let mut out = None;
    let mut trace = None;
    let mut checkpoint = None;
    let mut resume = false;
    let mut audit = false;
    let mut analyze = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let scale: f64 = v.parse().map_err(|_| format!("bad scale {v}"))?;
                if scale <= 0.0 {
                    return Err("scale must be positive".to_owned());
                }
                params = params.with_scale(scale);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                params.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let threads: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                let threads = threads.map_err(|_| format!("bad thread list {v}"))?;
                if threads.is_empty() || !threads.windows(2).all(|w| w[0] < w[1]) {
                    return Err("thread list must be strictly increasing".to_owned());
                }
                params = params.with_threads(threads);
            }
            "--lock-alg" => {
                let v = it.next().ok_or("--lock-alg needs a value")?;
                lock_alg = Some(LockAlg::parse(v).ok_or_else(|| {
                    format!("unknown lock algorithm {v} (fifo | mcs | malthusian)")
                })?);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                out = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a value")?;
                trace = Some(PathBuf::from(v));
            }
            "--checkpoint" => {
                let v = it.next().ok_or("--checkpoint needs a directory")?;
                checkpoint = Some(PathBuf::from(v));
            }
            "--resume" => resume = true,
            "--audit" => audit = true,
            "--analyze" => analyze = true,
            "--dir" => {
                let v = it.next().ok_or("--dir needs a directory")?;
                dir = Some(PathBuf::from(v));
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a count")?;
                workers = Some(v.parse().map_err(|_| format!("bad worker count {v}"))?);
            }
            "--help" | "-h" => return Err(String::new()),
            other if artifact.is_none() && !other.starts_with('-') => {
                artifact = Some(other.to_owned());
            }
            other
                if artifact.as_deref() == Some("repro")
                    && file.is_none()
                    && !other.starts_with('-') =>
            {
                file = Some(PathBuf::from(other));
            }
            other
                if artifact.as_deref() == Some("campaign")
                    && target.is_none()
                    && !other.starts_with('-') =>
            {
                target = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    let artifact = artifact.ok_or("no artifact given")?;
    if artifact == "repro" && file.is_none() {
        return Err("repro needs a repro-*.json file argument".to_owned());
    }
    if artifact == "campaign" {
        if target.is_none() {
            return Err("campaign needs a target artifact (e.g. campaign scaletable)".to_owned());
        }
        if dir.is_none() {
            return Err("campaign needs --dir DIR (the shared campaign directory)".to_owned());
        }
    }
    Ok(Cli {
        artifact,
        file,
        target,
        dir,
        workers,
        params,
        lock_alg,
        out,
        trace,
        checkpoint,
        resume,
        audit,
        analyze,
    })
}

/// Runs a traced 4-thread lusearch at the CLI's scale/seed and exports
/// its timeline as Chrome trace-event JSON — the quick way to eyeball a
/// run at <https://ui.perfetto.dev>.
fn export_trace(cli: &Cli, path: &std::path::Path) -> Result<(), String> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let config = JvmConfig::builder()
        .threads(4)
        .seed(cli.params.seed)
        .trace(TraceConfig::off().with_path(path.display().to_string()))
        .build()
        .map_err(|e| e.to_string())?;
    let report = Jvm::new(config)
        .run(&lusearch().scaled(cli.params.scale))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} timeline events; open at https://ui.perfetto.dev)",
        path.display(),
        report.timeline.len()
    );
    Ok(())
}

/// Writes run manifests as `manifest.jsonl` in `dir` (atomically, so a
/// crash mid-write never leaves a truncated file behind). When the run
/// also emitted an analytics artifact, every row gains `analytics` /
/// `analytics_fp` keys cross-linking it to `analytics.json` (manifest
/// validators ignore unknown keys, so old consumers keep working).
fn write_manifests(
    dir: &std::path::Path,
    manifests: &[scalesim_experiments::RunManifest],
    analytics_fp: Option<u64>,
) -> Result<(), String> {
    let path = dir.join("manifest.jsonl");
    let mut body = String::new();
    for m in manifests {
        let mut line = m.to_json_line();
        if let Some(fp) = analytics_fp {
            debug_assert!(line.ends_with('}'));
            line.pop();
            line.push_str(&format!(
                ",\"analytics\":\"analytics.json\",\"analytics_fp\":\"{fp:016x}\"}}"
            ));
        }
        body.push_str(&line);
        body.push('\n');
    }
    write_atomic(&path, body).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {} ({} runs)", path.display(), manifests.len());
    Ok(())
}

/// Runs the analytics pass (USL fit + time attribution + percentiles)
/// over the figure sweep — served from the memo cache whenever the
/// sweep already ran in this process or was replayed from a checkpoint
/// or campaign — prints the rendered report, and writes
/// `analytics.json` into `dir`. Returns the artifact fingerprint for
/// manifest cross-linking.
fn emit_analytics(params: &ExpParams, dir: &std::path::Path) -> Result<u64, CliError> {
    let analytics = run_analytics(params).map_err(|e| classify(&e))?;
    print!("{}", analytics.render());
    let path = write_analytics(dir, &analytics)
        .map_err(|e| CliError::Runtime(format!("write analytics.json: {e}")))?;
    let fp = analytics.fingerprint();
    println!("wrote {} (fingerprint {fp:016x})\n", path.display());
    Ok(fp)
}

fn emit(out: &Option<PathBuf>, name: &str, title: &str, table: &Table) -> Result<(), CliError> {
    println!("== {title} ==");
    println!("{table}");
    if let Some(dir) = out {
        let path = dir.join(format!("{name}.csv"));
        write_atomic(&path, table.to_csv())
            .map_err(|e| CliError::Runtime(format!("write {}: {e}", path.display())))?;
        println!("wrote {}", path.display());
    }
    println!();
    Ok(())
}

fn run_artifact(cli: &Cli, artifact: &str) -> Result<(), CliError> {
    if artifact == "all" {
        for a in ALL_ARTIFACTS {
            run_artifact(cli, a)?;
        }
        return Ok(());
    }
    let tables = artifact_tables(artifact, &cli.params)
        .ok_or_else(|| CliError::Config(format!("unknown artifact {artifact}")))?
        .map_err(|e| classify(&e))?;
    for t in &tables {
        emit(&cli.out, &t.name, &t.title, &t.table)?;
    }
    Ok(())
}

fn campaign_fail(e: &CampaignError) -> ExitCode {
    match e {
        CampaignError::Config(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(3)
        }
        CampaignError::Runtime(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// The `campaign` subcommand. Two roles share this entry point:
///
/// * A child worker (`SCALESIM_CAMPAIGN_ROLE=worker`, spawned below or
///   launched by hand on another terminal/host sharing the directory)
///   just drains and exits.
/// * The parent initializes the directory, spawns `--workers` children
///   of itself, waits for them — tolerating any of them dying, since
///   survivors reclaim expired leases — runs a final in-process drain to
///   settle anything left over, and merges.
fn run_campaign(cli: &Cli) -> ExitCode {
    let (Some(target), Some(dir)) = (cli.target.clone(), cli.dir.clone()) else {
        // parse_args enforces both; unreachable in practice.
        return campaign_fail(&CampaignError::Config(
            "campaign needs a target artifact and --dir DIR".to_owned(),
        ));
    };
    let spec = CampaignSpec {
        artifact: target,
        params: cli.params.clone(),
    };

    if std::env::var_os("SCALESIM_CAMPAIGN_ROLE").is_some_and(|v| v == "worker") {
        let id: u32 = std::env::var("SCALESIM_CAMPAIGN_WORKER_ID")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        return match campaign::worker_drain(&dir, &spec, id) {
            Ok(stats) => {
                println!(
                    "campaign worker {id}: ran {} skipped {} volatile {} quarantined {}",
                    stats.ran, stats.skipped, stats.volatile, stats.quarantined
                );
                ExitCode::SUCCESS
            }
            Err(e) => campaign_fail(&e),
        };
    }

    if let Err(e) = campaign::init(&dir, &spec) {
        return campaign_fail(&e);
    }
    let workers = cli.workers.unwrap_or_else(campaign::default_workers);
    let exe = match std::env::current_exe() {
        Ok(exe) => exe,
        Err(e) => {
            return campaign_fail(&CampaignError::Runtime(format!("locate own binary: {e}")));
        }
    };
    let threads_arg: String = spec
        .params
        .thread_counts
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",");
    let mut children = Vec::new();
    for i in 1..=workers {
        let spawned = std::process::Command::new(&exe)
            .arg("campaign")
            .arg(&spec.artifact)
            .arg("--dir")
            .arg(&dir)
            .arg("--scale")
            .arg(format!("{:?}", spec.params.scale))
            .arg("--seed")
            .arg(spec.params.seed.to_string())
            .arg("--threads")
            .arg(&threads_arg)
            .env("SCALESIM_CAMPAIGN_ROLE", "worker")
            .env("SCALESIM_CAMPAIGN_WORKER_ID", i.to_string())
            .stdout(std::process::Stdio::null())
            .spawn();
        match spawned {
            Ok(child) => children.push((i, child)),
            Err(e) => eprintln!("warning: spawn campaign worker {i}: {e} (continuing without it)"),
        }
    }
    if !children.is_empty() {
        println!(
            "campaign: {} worker process(es) draining {} into {}",
            children.len(),
            spec.artifact,
            dir.display()
        );
    }
    for (i, mut child) in children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => eprintln!(
                "warning: campaign worker {i} exited with {status}; \
                 survivors will reclaim its leases"
            ),
            Err(e) => eprintln!("warning: wait for campaign worker {i}: {e}"),
        }
    }
    // Final in-process drain: settles anything still unclaimed (dead
    // workers, no workers at all) by reclaiming expired leases, so the
    // merge always sees a fully settled campaign.
    let stats = match campaign::worker_drain(&dir, &spec, 0) {
        Ok(stats) => stats,
        Err(e) => return campaign_fail(&e),
    };
    let outcome = match campaign::merge(&dir, &spec) {
        Ok(outcome) => outcome,
        Err(e) => return campaign_fail(&e),
    };
    println!(
        "campaign: {} unit(s): {} restored from segments, {} re-ran in merge; \
         finisher ran {}, {} torn/corrupt line(s) skipped",
        outcome.units, outcome.restored, outcome.reran, stats.ran, outcome.skipped_lines
    );
    for t in &outcome.tables {
        if let Err(e) = emit(&cli.out, &t.name, &t.title, &t.table) {
            return match e {
                CliError::Config(msg) => campaign_fail(&CampaignError::Config(msg)),
                CliError::Runtime(msg) => campaign_fail(&CampaignError::Runtime(msg)),
            };
        }
    }
    if !outcome.failures.is_empty() {
        eprintln!("sweep failure digest ({} entries):", outcome.failures.len());
        for f in &outcome.failures {
            eprintln!("  [{}] {}: {}", f.kind, f.spec, f.detail);
        }
    }
    let repro_dir = cli.out.clone().unwrap_or_else(|| PathBuf::from("."));
    let _ = shrink_quarantined(&outcome.failures, &repro_dir);
    // The merge seeded the memo cache with every campaign unit, so the
    // analytics pass over a figure-sweep campaign is pure re-derivation
    // and its artifact byte-identical to a single-process --analyze run.
    let analyze_on = cli.analyze || std::env::var_os("SCALESIM_ANALYZE").is_some_and(|v| v == "1");
    let mut analytics_fp = None;
    if analyze_on {
        match emit_analytics(&cli.params, &repro_dir) {
            Ok(fp) => analytics_fp = Some(fp),
            Err(CliError::Config(msg)) => return campaign_fail(&CampaignError::Config(msg)),
            Err(CliError::Runtime(msg)) => return campaign_fail(&CampaignError::Runtime(msg)),
        }
    }
    if let Some(out) = &cli.out {
        if let Err(msg) = write_manifests(out, &outcome.manifests, analytics_fp) {
            return campaign_fail(&CampaignError::Runtime(msg));
        }
    }
    if outcome.degraded() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Re-executes a shrunk failure spec from a `repro-*.json` file.
/// Exit 0 when the failure reproduces, 1 when the run completes, 3 when
/// the file does not parse or reconstruct.
fn run_repro(path: &std::path::Path) -> ExitCode {
    let config_fail = |msg: String| -> ExitCode {
        eprintln!("error: {msg}");
        ExitCode::from(3)
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return config_fail(format!("read {}: {e}", path.display())),
    };
    let parsed = match JsonValue::parse(text.trim()) {
        Ok(v) => v,
        Err(e) => return config_fail(format!("parse {}: {e}", path.display())),
    };
    let repro = match ReproSpec::from_json(&parsed) {
        Ok(r) => r,
        Err(e) => return config_fail(format!("{}: {e}", path.display())),
    };
    let (app, config) = match repro.reconstruct() {
        Ok(pair) => pair,
        Err(e) => return config_fail(format!("{}: {e}", path.display())),
    };
    let spec = RunSpec { app, config };
    if !repro.exact {
        eprintln!("warning: spec was not key-exact when captured; behavior may differ");
    }
    if spec.memo_key() != repro.spec_key {
        eprintln!(
            "warning: reconstructed key {:016x} differs from recorded {:016x}",
            spec.memo_key(),
            repro.spec_key
        );
    }
    println!(
        "repro: app={} threads={} seed={} (key {:016x})",
        repro.app, repro.threads, repro.seed, repro.spec_key
    );
    match run_isolated(&spec) {
        Err(why) => {
            println!("reproduced: {why}");
            ExitCode::SUCCESS
        }
        Ok(report) => {
            println!(
                "run completed without failing (outcome: {})",
                report.outcome
            );
            ExitCode::FAILURE
        }
    }
}

/// Shrinks every quarantined failure in the digest to a minimal failing
/// spec and writes one `repro-<key>.json` per distinct point into
/// `dir`. Returns how many repro files were written.
fn shrink_quarantined(
    failures: &[scalesim_experiments::SweepFailure],
    dir: &std::path::Path,
) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut written = 0;
    for f in failures {
        if f.kind != SweepFailureKind::Quarantined {
            continue;
        }
        let Some(spec) = &f.run_spec else { continue };
        if !seen.insert(spec.memo_key()) {
            continue;
        }
        match shrink_failure(spec) {
            Some(outcome) => match write_repro(&outcome, dir) {
                Ok(path) => {
                    println!(
                        "shrunk {} -> threads={} ({} attempts): {}",
                        f.spec,
                        outcome.shrunk.threads,
                        outcome.attempts,
                        path.display()
                    );
                    written += 1;
                }
                Err(e) => eprintln!("error: write repro for {}: {e}", f.spec),
            },
            None => eprintln!(
                "shrink: {} did not reproduce in isolation; no repro file",
                f.spec
            ),
        }
    }
    written
}

/// Runs the concurrency auditor over the pinned traced runs (the same
/// fixtures the chaos tests pin: h2 @16 threads and xalan @8 threads at
/// scale 0.02). Chaos comes from `SCALESIM_CHAOS`, so a clean environment
/// exercises the golden path and a chaotic one the detection path.
///
/// Exit 0 when both audits are clean, 1 on any unexpected finding (or a
/// run failure), 2 when every finding is explained by an injected fault.
fn run_audit(cli: &Cli) -> ExitCode {
    let dir = cli.out.clone().unwrap_or_else(|| PathBuf::from("."));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("error: create {}: {e}", dir.display());
        return ExitCode::FAILURE;
    }
    let specs = [
        ("h2", RunSpec::new(h2().scaled(0.02), 16, cli.params.seed)),
        (
            "xalan",
            RunSpec::new(xalan().scaled(0.02), 8, cli.params.seed),
        ),
    ];
    let mut unexpected = 0usize;
    let mut expected = 0usize;
    for (name, spec) in &specs {
        let threads = spec.config.threads;
        let (report, audit_report) = match audit_spec(spec) {
            Ok(pair) => pair,
            Err(why) => {
                eprintln!("error: audit run {name} x{threads}: {why}");
                return ExitCode::FAILURE;
            }
        };
        println!(
            "== audit {name} x{threads} seed={} (outcome: {}) ==",
            cli.params.seed, report.outcome
        );
        println!("{audit_report}");
        unexpected += audit_report.unexpected().len();
        expected += audit_report.expected_count();
        if !audit_report.is_clean() {
            match write_audit_repro(spec, &audit_report, &dir) {
                Ok(Some(path)) => println!("wrote {}", path.display()),
                Ok(None) => {}
                Err(e) => eprintln!("error: write audit repro for {name}: {e}"),
            }
        }
        println!();
    }
    if unexpected > 0 {
        eprintln!("audit: {unexpected} unexpected finding(s)");
        ExitCode::FAILURE
    } else if expected > 0 {
        println!("audit: all {expected} finding(s) explained by injected faults");
        ExitCode::from(2)
    } else {
        println!("audit: clean");
        ExitCode::SUCCESS
    }
}

/// Re-audits every quarantined sweep point with salvage + tracing (the
/// `--audit` / `SCALESIM_AUDIT=1` path), writing `audit-<key>.json`
/// artifacts next to the shrinker's repro files.
fn audit_quarantined(
    failures: &[scalesim_experiments::SweepFailure],
    dir: &std::path::Path,
) -> usize {
    let mut seen = std::collections::HashSet::new();
    let mut audited = 0;
    for f in failures {
        if f.kind != SweepFailureKind::Quarantined {
            continue;
        }
        let Some(spec) = &f.run_spec else { continue };
        if !seen.insert(spec.memo_key()) {
            continue;
        }
        match audit_spec(spec) {
            Ok((report, audit_report)) => {
                println!(
                    "audit {} (outcome: {}): {audit_report}",
                    f.spec, report.outcome
                );
                if !audit_report.is_clean() {
                    match write_audit_repro(spec, &audit_report, dir) {
                        Ok(Some(path)) => println!("wrote {}", path.display()),
                        Ok(None) => {}
                        Err(e) => eprintln!("error: write audit repro for {}: {e}", f.spec),
                    }
                }
                audited += 1;
            }
            Err(why) => eprintln!("audit: {} failed even with salvage: {why}", f.spec),
        }
    }
    audited
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            return ExitCode::from(3);
        }
    };
    if let Some(alg) = cli.lock_alg {
        // Every JvmConfig builder reads SCALESIM_LOCK_ALG, and spawned
        // campaign workers inherit the environment, so one switch
        // covers every run this process (transitively) starts.
        std::env::set_var("SCALESIM_LOCK_ALG", alg.as_str());
    }
    if cli.artifact == "repro" {
        let Some(file) = cli.file.as_deref() else {
            eprintln!("error: repro needs a repro-*.json file argument\n");
            eprint!("{USAGE}");
            return ExitCode::from(3);
        };
        return run_repro(file);
    }
    if cli.artifact == "audit" {
        return run_audit(&cli);
    }
    if cli.artifact == "campaign" {
        return run_campaign(&cli);
    }

    // Checkpointing: CLI flags win, env vars (SCALESIM_CHECKPOINT /
    // SCALESIM_RESUME=1) reach the same machinery from wrappers. For
    // the analyze subcommand `--dir CKPT` is resume sugar: replay the
    // store, then derive the artifact from the replayed runs.
    let analyze_from_dir = cli.artifact == "analyze" && cli.dir.is_some();
    let ckpt_dir = cli
        .checkpoint
        .clone()
        .or_else(|| {
            if analyze_from_dir {
                cli.dir.clone()
            } else {
                None
            }
        })
        .or_else(|| std::env::var_os("SCALESIM_CHECKPOINT").map(PathBuf::from));
    let resume = cli.resume
        || analyze_from_dir
        || std::env::var_os("SCALESIM_RESUME").is_some_and(|v| v == "1");
    if let Some(dir) = &ckpt_dir {
        let activated = if resume {
            checkpoint::resume_from(dir).map(|stats| {
                println!(
                    "resumed {} run(s) from {} ({} segment(s), {} record(s) skipped)",
                    stats.loaded,
                    dir.display(),
                    stats.segments,
                    stats.skipped
                );
            })
        } else {
            checkpoint::set_store(dir)
        };
        if let Err(e) = activated {
            eprintln!("error: checkpoint store {}: {e}\n", dir.display());
            eprint!("{USAGE}");
            return ExitCode::from(3);
        }
    } else if resume {
        eprintln!("error: --resume needs --checkpoint DIR or SCALESIM_CHECKPOINT\n");
        eprint!("{USAGE}");
        return ExitCode::from(3);
    }

    let mut result = if cli.artifact == "analyze" {
        Ok(())
    } else {
        run_artifact(&cli, &cli.artifact.clone())
    };
    let analyze_on = cli.artifact == "analyze"
        || cli.analyze
        || std::env::var_os("SCALESIM_ANALYZE").is_some_and(|v| v == "1");
    let mut analytics_fp = None;
    if result.is_ok() && analyze_on {
        let dir = cli.out.clone().unwrap_or_else(|| PathBuf::from("."));
        match emit_analytics(&cli.params, &dir) {
            Ok(fp) => analytics_fp = Some(fp),
            Err(e) => result = Err(e),
        }
    }
    if result.is_ok() {
        if let Some(path) = &cli.trace {
            result = export_trace(&cli, path).map_err(CliError::Runtime);
        }
    }

    // Always drain the digest and the manifests — even a failing CLI
    // invocation reports what its sweeps saw. Quarantined or corrupted
    // runs do not abort the artifact (their rows are marked in the
    // tables), but they degrade the exit code to 2.
    let failures = take_sweep_failures();
    if !failures.is_empty() {
        eprintln!("sweep failure digest ({} entries):", failures.len());
        for f in &failures {
            eprintln!("  [{}] {}: {}", f.kind, f.spec, f.detail);
        }
    }
    let repro_dir = cli.out.clone().unwrap_or_else(|| PathBuf::from("."));
    let _ = shrink_quarantined(&failures, &repro_dir);
    let audit_on = cli.audit || std::env::var_os("SCALESIM_AUDIT").is_some_and(|v| v == "1");
    if audit_on {
        let _ = audit_quarantined(&failures, &repro_dir);
    }
    let manifests = take_run_manifests();
    if result.is_ok() {
        if let Some(dir) = &cli.out {
            result = write_manifests(dir, &manifests, analytics_fp).map_err(CliError::Runtime);
        }
    }
    let degraded =
        !failures.is_empty() || manifests.iter().any(|m| m.outcome != "ok" || m.degraded);
    match result {
        Ok(()) if degraded => ExitCode::from(2),
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Config(msg)) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(3)
        }
        Err(CliError::Runtime(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_artifact_and_options() {
        let cli = parse_args(&s(&[
            "fig2",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--threads",
            "2,4",
        ]))
        .unwrap();
        assert_eq!(cli.artifact, "fig2");
        assert_eq!(cli.params.scale, 0.5);
        assert_eq!(cli.params.seed, 7);
        assert_eq!(cli.params.thread_counts, vec![2, 4]);
        assert!(cli.out.is_none());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["fig2", "--scale", "-1"])).is_err());
        assert!(parse_args(&s(&["fig2", "--threads", "4,2"])).is_err());
        assert!(parse_args(&s(&["fig2", "--bogus"])).is_err());
    }

    #[test]
    fn lock_alg_flag_parses_and_rejects_unknowns() {
        let cli = parse_args(&s(&["ext-locks", "--lock-alg", "malthusian"])).unwrap();
        assert_eq!(cli.artifact, "ext-locks");
        assert_eq!(cli.lock_alg, Some(LockAlg::Malthusian));
        let cli = parse_args(&s(&["fig1a"])).unwrap();
        assert!(cli.lock_alg.is_none());
        assert!(parse_args(&s(&["fig1a", "--lock-alg", "ticket"])).is_err());
        assert!(parse_args(&s(&["fig1a", "--lock-alg"])).is_err());
    }

    #[test]
    fn out_dir_parses() {
        let cli = parse_args(&s(&["fig1d", "--out", "/tmp/x"])).unwrap();
        assert_eq!(cli.out.unwrap(), PathBuf::from("/tmp/x"));
        assert!(cli.trace.is_none());
    }

    #[test]
    fn trace_flag_parses() {
        let cli = parse_args(&s(&["fig1d", "--trace", "/tmp/t.json"])).unwrap();
        assert_eq!(cli.trace.unwrap(), PathBuf::from("/tmp/t.json"));
        assert!(parse_args(&s(&["fig1d", "--trace"])).is_err());
    }

    #[test]
    fn checkpoint_and_resume_flags_parse() {
        let cli = parse_args(&s(&["fig1d", "--checkpoint", "/tmp/ck", "--resume"])).unwrap();
        assert_eq!(cli.checkpoint.unwrap(), PathBuf::from("/tmp/ck"));
        assert!(cli.resume);
        let cli = parse_args(&s(&["fig1d"])).unwrap();
        assert!(cli.checkpoint.is_none());
        assert!(!cli.resume);
        assert!(parse_args(&s(&["fig1d", "--checkpoint"])).is_err());
    }

    #[test]
    fn audit_flag_and_subcommand_parse() {
        let cli = parse_args(&s(&["fig1d", "--audit"])).unwrap();
        assert!(cli.audit);
        let cli = parse_args(&s(&["fig1d"])).unwrap();
        assert!(!cli.audit);
        let cli = parse_args(&s(&["audit", "--seed", "9", "--out", "/tmp/a"])).unwrap();
        assert_eq!(cli.artifact, "audit");
        assert_eq!(cli.params.seed, 9);
        assert_eq!(cli.out.unwrap(), PathBuf::from("/tmp/a"));
    }

    #[test]
    fn analyze_flag_and_subcommand_parse() {
        let cli = parse_args(&s(&["fig2", "--analyze"])).unwrap();
        assert!(cli.analyze);
        let cli = parse_args(&s(&["fig2"])).unwrap();
        assert!(!cli.analyze);
        let cli = parse_args(&s(&["analyze", "--dir", "/tmp/ck", "--threads", "4,8"])).unwrap();
        assert_eq!(cli.artifact, "analyze");
        assert_eq!(cli.dir.unwrap(), PathBuf::from("/tmp/ck"));
        assert_eq!(cli.params.thread_counts, vec![4, 8]);
        // --dir is optional for analyze (live sweep when absent).
        let cli = parse_args(&s(&["analyze"])).unwrap();
        assert!(cli.dir.is_none());
    }

    #[test]
    fn campaign_takes_a_target_and_dir() {
        let cli = parse_args(&s(&[
            "campaign",
            "scaletable",
            "--dir",
            "/tmp/camp",
            "--workers",
            "3",
            "--threads",
            "2,4",
        ]))
        .unwrap();
        assert_eq!(cli.artifact, "campaign");
        assert_eq!(cli.target.as_deref(), Some("scaletable"));
        assert_eq!(cli.dir.unwrap(), PathBuf::from("/tmp/camp"));
        assert_eq!(cli.workers, Some(3));
        assert_eq!(cli.params.thread_counts, vec![2, 4]);
        // Target and --dir are both mandatory; the worker count is not.
        assert!(parse_args(&s(&["campaign", "--dir", "/tmp/camp"])).is_err());
        assert!(parse_args(&s(&["campaign", "scaletable"])).is_err());
        assert!(parse_args(&s(&["campaign", "scaletable", "--workers", "x"])).is_err());
        let cli = parse_args(&s(&["campaign", "fig2", "--dir", "d"])).unwrap();
        assert!(cli.workers.is_none());
    }

    #[test]
    fn repro_takes_a_file_argument() {
        let cli = parse_args(&s(&["repro", "repro-abc.json"])).unwrap();
        assert_eq!(cli.artifact, "repro");
        assert_eq!(cli.file.unwrap(), PathBuf::from("repro-abc.json"));
        // The file is mandatory, and only `repro` accepts a second
        // positional.
        assert!(parse_args(&s(&["repro"])).is_err());
        assert!(parse_args(&s(&["fig1d", "extra.json"])).is_err());
    }
}
