//! Command-line driver regenerating every table and figure of the paper.
//!
//! ```sh
//! scalesim-experiments all                 # paper-sized, every artifact
//! scalesim-experiments fig1d --scale 0.1   # one artifact, smaller run
//! scalesim-experiments fig2 --out results  # also write CSV files
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use scalesim_core::{Jvm, JvmConfig, TraceConfig};
use scalesim_experiments::{
    run_biased_sched, run_concurrent_old_gen, run_ergonomics, run_fig1_locks, run_fig1c, run_fig1d,
    run_fig2, run_gc_workers, run_heap_size, run_heaplets, run_lock_sharding, run_numa_placement,
    run_oversubscription, run_scalability, run_workdist, take_run_manifests, take_sweep_failures,
    ExpParams,
};
use scalesim_metrics::Table;
use scalesim_workloads::lusearch;

const USAGE: &str = "\
usage: scalesim-experiments <artifact> [--scale F] [--seed N] [--threads a,b,c] [--out DIR]
                            [--trace FILE]

artifacts:
  workdist    per-thread workload distribution (paper §III)
  scaletable  scalable / non-scalable classification (paper §II-C)
  fig1a       lock acquisitions vs threads (with fig1b)
  fig1b       lock contentions vs threads (with fig1a)
  fig1c       eclipse object-lifespan CDF
  fig1d       xalan object-lifespan CDF
  fig2        mutator vs GC time decomposition
  abl-sched   ablation: biased (cohort) scheduling
  abl-heap    ablation: compartmentalized heaplets
  ext-ergo    extension: adaptive nursery sizing (pause goals)
  ext-numa    extension: compact vs scatter NUMA placement
  ext-sharding extension: sharding xalan's hot dtm-cache lock
  ext-gcworkers extension: parallel GC worker scaling
  ext-oversub  extension: oversubscription (threads beyond cores)
  ext-heapsize extension: trace-replay heap-size sweep (3x-min-heap rule)
  ext-concurrent extension: mostly-concurrent old-gen collector
  all         everything above

options:
  --scale F      workload scale factor (default 1.0 = paper-sized)
  --seed N       master seed (default 42)
  --threads LIST comma-separated thread counts (default 4,8,16,32,48)
  --out DIR      also write each table as CSV into DIR, plus a
                 manifest.jsonl joining every sweep run with its
                 harness provenance (memo/retry/quarantine status)
  --trace FILE   additionally run a traced 4-thread lusearch and export
                 its timeline as Chrome trace-event JSON to FILE (open
                 at https://ui.perfetto.dev or chrome://tracing);
                 SCALESIM_TRACE=<path> traces every run instead
";

struct Cli {
    artifact: String,
    params: ExpParams,
    out: Option<PathBuf>,
    trace: Option<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Cli, String> {
    let mut artifact = None;
    let mut params = ExpParams::paper();
    let mut out = None;
    let mut trace = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let scale: f64 = v.parse().map_err(|_| format!("bad scale {v}"))?;
                if scale <= 0.0 {
                    return Err("scale must be positive".to_owned());
                }
                params = params.with_scale(scale);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                params.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let threads: Result<Vec<usize>, _> = v.split(',').map(str::parse).collect();
                let threads = threads.map_err(|_| format!("bad thread list {v}"))?;
                if threads.is_empty() || !threads.windows(2).all(|w| w[0] < w[1]) {
                    return Err("thread list must be strictly increasing".to_owned());
                }
                params = params.with_threads(threads);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                out = Some(PathBuf::from(v));
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a value")?;
                trace = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(String::new()),
            other if artifact.is_none() && !other.starts_with('-') => {
                artifact = Some(other.to_owned());
            }
            other => return Err(format!("unexpected argument {other}")),
        }
    }
    Ok(Cli {
        artifact: artifact.ok_or("no artifact given")?,
        params,
        out,
        trace,
    })
}

/// Runs a traced 4-thread lusearch at the CLI's scale/seed and exports
/// its timeline as Chrome trace-event JSON — the quick way to eyeball a
/// run at <https://ui.perfetto.dev>.
fn export_trace(cli: &Cli, path: &std::path::Path) -> Result<(), String> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    }
    let config = JvmConfig::builder()
        .threads(4)
        .seed(cli.params.seed)
        .trace(TraceConfig::off().with_path(path.display().to_string()))
        .build()
        .map_err(|e| e.to_string())?;
    let report = Jvm::new(config)
        .run(&lusearch().scaled(cli.params.scale))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} timeline events; open at https://ui.perfetto.dev)",
        path.display(),
        report.timeline.len()
    );
    Ok(())
}

/// Writes every accumulated run manifest as `manifest.jsonl` in `dir`.
fn write_manifests(dir: &std::path::Path) -> Result<(), String> {
    let manifests = take_run_manifests();
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join("manifest.jsonl");
    let mut body = String::new();
    for m in &manifests {
        body.push_str(&m.to_json_line());
        body.push('\n');
    }
    std::fs::write(&path, body).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!("wrote {} ({} runs)", path.display(), manifests.len());
    Ok(())
}

fn emit(out: &Option<PathBuf>, name: &str, title: &str, table: &Table) {
    println!("== {title} ==");
    println!("{table}");
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(format!("{name}.csv"));
        std::fs::write(&path, table.to_csv()).expect("write CSV");
        println!("wrote {}", path.display());
    }
    println!();
}

fn run_artifact(cli: &Cli, artifact: &str) -> Result<(), String> {
    let p = &cli.params;
    match artifact {
        "workdist" => emit(
            &cli.out,
            "workdist",
            "Workload distribution across threads (paper SIII)",
            &run_workdist(p).map_err(|e| e.to_string())?.table(),
        ),
        "scaletable" => emit(
            &cli.out,
            "scaletable",
            "Scalability classification (paper SII-C)",
            &run_scalability(p).map_err(|e| e.to_string())?.table(),
        ),
        "fig1a" | "fig1b" => emit(
            &cli.out,
            "fig1_locks",
            "Fig 1a/1b: lock acquisitions & contentions vs threads",
            &run_fig1_locks(p).map_err(|e| e.to_string())?.table(),
        ),
        "fig1c" => emit(
            &cli.out,
            "fig1c",
            "Fig 1c: eclipse object-lifespan CDF",
            &run_fig1c(p).map_err(|e| e.to_string())?.table(),
        ),
        "fig1d" => emit(
            &cli.out,
            "fig1d",
            "Fig 1d: xalan object-lifespan CDF",
            &run_fig1d(p).map_err(|e| e.to_string())?.table(),
        ),
        "fig2" => emit(
            &cli.out,
            "fig2",
            "Fig 2: mutator vs GC time decomposition (scalable apps)",
            &run_fig2(p).map_err(|e| e.to_string())?.table(),
        ),
        "abl-sched" => emit(
            &cli.out,
            "abl_sched",
            "Ablation: biased (cohort) scheduling on xalan (paper SIV.1)",
            &run_biased_sched("xalan", p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "abl-heap" => emit(
            &cli.out,
            "abl_heap",
            "Ablation: compartmentalized heaplets on xalan (paper SIV.2)",
            &run_heaplets("xalan", p).map_err(|e| e.to_string())?.table(),
        ),
        "ext-ergo" => emit(
            &cli.out,
            "ext_ergo",
            "Extension: adaptive nursery sizing on xalan (HotSpot ergonomics)",
            &run_ergonomics("xalan", p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "ext-numa" => emit(
            &cli.out,
            "ext_numa",
            "Extension: NUMA placement sensitivity on xalan",
            &run_numa_placement("xalan", p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "ext-sharding" => emit(
            &cli.out,
            "ext_sharding",
            "Extension: sharding xalan's dtm-cache lock",
            &run_lock_sharding("xalan", 1, p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "ext-gcworkers" => emit(
            &cli.out,
            "ext_gcworkers",
            "Extension: parallel GC worker scaling on xalan",
            &run_gc_workers("xalan", p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "ext-oversub" => emit(
            &cli.out,
            "ext_oversub",
            "Extension: oversubscription (threads beyond 48 cores) on xalan",
            &run_oversubscription("xalan", p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "ext-heapsize" => emit(
            &cli.out,
            "ext_heapsize",
            "Extension: trace-replay heap-size sweep on xalan (3x-min-heap rule)",
            &run_heap_size("xalan", p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "ext-concurrent" => emit(
            &cli.out,
            "ext_concurrent",
            "Extension: mostly-concurrent old generation on xalan",
            &run_concurrent_old_gen("xalan", p)
                .map_err(|e| e.to_string())?
                .table(),
        ),
        "all" => {
            for a in [
                "workdist",
                "scaletable",
                "fig1a",
                "fig1c",
                "fig1d",
                "fig2",
                "abl-sched",
                "abl-heap",
                "ext-ergo",
                "ext-numa",
                "ext-sharding",
                "ext-gcworkers",
                "ext-oversub",
                "ext-heapsize",
                "ext-concurrent",
            ] {
                run_artifact(cli, a)?;
            }
        }
        other => return Err(format!("unknown artifact {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_args(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let mut result = run_artifact(&cli, &cli.artifact.clone());
    if result.is_ok() {
        if let Some(dir) = &cli.out {
            result = write_manifests(dir);
        }
    }
    if result.is_ok() {
        if let Some(path) = &cli.trace {
            result = export_trace(&cli, path);
        }
    }
    // Quarantined or corrupted runs do not fail the artifact (their rows
    // are marked in the tables), but the digest belongs in the output.
    let failures = take_sweep_failures();
    if !failures.is_empty() {
        eprintln!("sweep failure digest ({} entries):", failures.len());
        for f in &failures {
            eprintln!("  [{}] {}: {}", f.kind, f.spec, f.detail);
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| (*x).to_owned()).collect()
    }

    #[test]
    fn parses_artifact_and_options() {
        let cli = parse_args(&s(&[
            "fig2",
            "--scale",
            "0.5",
            "--seed",
            "7",
            "--threads",
            "2,4",
        ]))
        .unwrap();
        assert_eq!(cli.artifact, "fig2");
        assert_eq!(cli.params.scale, 0.5);
        assert_eq!(cli.params.seed, 7);
        assert_eq!(cli.params.thread_counts, vec![2, 4]);
        assert!(cli.out.is_none());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["fig2", "--scale", "-1"])).is_err());
        assert!(parse_args(&s(&["fig2", "--threads", "4,2"])).is_err());
        assert!(parse_args(&s(&["fig2", "--bogus"])).is_err());
    }

    #[test]
    fn out_dir_parses() {
        let cli = parse_args(&s(&["fig1d", "--out", "/tmp/x"])).unwrap();
        assert_eq!(cli.out.unwrap(), PathBuf::from("/tmp/x"));
        assert!(cli.trace.is_none());
    }

    #[test]
    fn trace_flag_parses() {
        let cli = parse_args(&s(&["fig1d", "--trace", "/tmp/t.json"])).unwrap();
        assert_eq!(cli.trace.unwrap(), PathBuf::from("/tmp/t.json"));
        assert!(parse_args(&s(&["fig1d", "--trace"])).is_err());
    }
}
