//! Durable checkpoint/resume for long sweeps.
//!
//! When a store is active (CLI `--checkpoint DIR` or
//! `SCALESIM_CHECKPOINT=DIR`), every completed `(app, config, seed)`
//! run is appended to an on-disk log as one crc-framed JSONL record
//! carrying the full [`RunReport`] plus the memo key and content
//! fingerprint the sweep cache uses. A later process started with
//! `--resume` (or `SCALESIM_RESUME=1`) replays the log into the memo
//! cache via [`resume_from`]: verified records are served without
//! re-simulation, while corrupted or torn records — a crash mid-append
//! leaves at most one partial line at the tail — are skipped and their
//! runs simply re-execute. Because a run is a pure function of its memo
//! key, a resumed sweep produces byte-identical tables and manifests.
//!
//! On-disk layout under the checkpoint directory:
//!
//! * `tail.jsonl` — the active append file; crashes can tear only its
//!   last line.
//! * `seg-NNNNN.jsonl` — sealed segments, rotated from the tail every
//!   [`SEGMENT_RECORDS`] records via an atomic rename.
//!
//! Record framing: `<8-hex crc32> <json>`, where the JSON body is
//! `{"v":1,"key":"<16-hex>","fp":"<16-hex>","retries":N,"report":{…}}`.
//! The crc covers the JSON body, so a torn or bit-flipped line is
//! detected without trusting the JSON parser's error paths. The stored
//! fingerprint is always the *true* report fingerprint — resume
//! recomputes it from the deserialized report and refuses any record
//! where the two disagree.
//!
//! Host-time-dependent truncations
//! ([`Watchdog`](scalesim_simkit::AbortReason::Watchdog) /
//! [`MaxHostMs`](scalesim_simkit::AbortReason::MaxHostMs)) are never
//! checkpointed: replaying them would freeze a transient host condition
//! into a deterministic artifact. Quarantined stubs never reach the
//! store either (they are not memoized for the same reason).

use std::collections::HashMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock, PoisonError};

use scalesim_core::{report_from_json, report_to_json, JsonValue, RunReport};
use scalesim_trace::{sync_dir, write_atomic};

use crate::sweep;

/// Records per segment before the tail is sealed and rotated.
pub const SEGMENT_RECORDS: usize = 128;

/// What [`resume_from`] found in the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResumeStats {
    /// Verified records replayed into the memo cache.
    pub loaded: usize,
    /// Records dropped: crc mismatch, unparsable JSON, or a fingerprint
    /// that no longer matches the deserialized report.
    pub skipped: usize,
    /// Sealed segments read (the tail is not counted).
    pub segments: usize,
}

// ---------------------------------------------------------------------
// crc32 (IEEE), hand-rolled so the store stays std-only.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------

/// Frames one completed run as a crc-checked store line (no trailing
/// newline). Shared with the campaign runner, whose per-worker segments
/// use the identical framing.
pub(crate) fn encode_record(key: u64, report: &RunReport, fp: u64, retries: u32) -> String {
    let body = JsonValue::Obj(vec![
        ("v".to_owned(), JsonValue::U64(1)),
        ("key".to_owned(), JsonValue::Str(format!("{key:016x}"))),
        ("fp".to_owned(), JsonValue::Str(format!("{fp:016x}"))),
        ("retries".to_owned(), JsonValue::U64(u64::from(retries))),
        ("report".to_owned(), report_to_json(report)),
    ])
    .to_string();
    format!("{:08x} {body}", crc32(body.as_bytes()))
}

pub(crate) struct Record {
    pub(crate) key: u64,
    pub(crate) fp: u64,
    pub(crate) retries: u32,
    pub(crate) report: RunReport,
}

/// Decodes one store line. `None` means the line is torn, corrupt, or
/// from a future format — the caller skips it and re-runs the point.
pub(crate) fn decode_record(line: &str) -> Option<Record> {
    let (crc_hex, body) = line.split_once(' ')?;
    let stored_crc = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc_hex.len() != 8 || crc32(body.as_bytes()) != stored_crc {
        return None;
    }
    let v = JsonValue::parse(body).ok()?;
    if v.get("v")?.as_u64()? != 1 {
        return None;
    }
    let key = u64::from_str_radix(v.get("key")?.as_str()?, 16).ok()?;
    let fp = u64::from_str_radix(v.get("fp")?.as_str()?, 16).ok()?;
    let retries = u32::try_from(v.get("retries")?.as_u64()?).ok()?;
    let report = report_from_json(v.get("report")?).ok()?;
    Some(Record {
        key,
        fp,
        retries,
        report,
    })
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

struct Store {
    dir: PathBuf,
    tail_records: usize,
    next_seg: u64,
}

impl Store {
    fn tail_path(&self) -> PathBuf {
        self.dir.join("tail.jsonl")
    }

    fn append(
        &mut self,
        key: u64,
        report: &RunReport,
        fp: u64,
        retries: u32,
    ) -> std::io::Result<()> {
        let mut line = encode_record(key, report, fp, retries);
        line.push('\n');
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.tail_path())?;
        file.write_all(line.as_bytes())?;
        self.tail_records += 1;
        if self.tail_records >= SEGMENT_RECORDS {
            // Seal the segment durably: fsync the bytes before the
            // rename and the directory after it, so a host crash can't
            // leave a renamed-but-unsynced (or empty) segment behind.
            file.sync_all()?;
            drop(file);
            std::fs::rename(self.tail_path(), self.dir.join(seg_name(self.next_seg)))?;
            sync_dir(&self.dir)?;
            self.next_seg += 1;
            self.tail_records = 0;
        }
        Ok(())
    }
}

fn seg_name(n: u64) -> String {
    format!("seg-{n:05}.jsonl")
}

/// Sealed segment paths in rotation order, plus the next free index.
fn segments_of(dir: &Path) -> (Vec<PathBuf>, u64) {
    let mut names: Vec<String> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_str().unwrap_or("");
            if name.starts_with("seg-") && name.ends_with(".jsonl") {
                names.push(name.to_owned());
            }
        }
    }
    names.sort();
    let next = names
        .iter()
        .filter_map(|n| n[4..n.len() - 6].parse::<u64>().ok())
        .map(|n| n + 1)
        .max()
        .unwrap_or(0);
    (names.into_iter().map(|n| dir.join(n)).collect(), next)
}

fn store() -> &'static Mutex<Option<Store>> {
    static STORE: OnceLock<Mutex<Option<Store>>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(None))
}

/// Retry counts of resumed keys, consumed once per key by the first
/// sweep that serves the key from cache so its manifest reports the
/// provenance (`memo:"miss"`, original retries) an uninterrupted run
/// would have recorded.
fn restored() -> &'static Mutex<HashMap<u64, u32>> {
    static RESTORED: OnceLock<Mutex<HashMap<u64, u32>>> = OnceLock::new();
    RESTORED.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Activates a **fresh** checkpoint store in `dir`: any existing
/// segments and tail are deleted, and subsequent sweep completions are
/// appended. Use [`resume_from`] to keep (and replay) existing records.
///
/// # Errors
///
/// Propagates directory-creation or cleanup failures.
pub fn set_store(dir: &Path) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let (segs, _) = segments_of(dir);
    for seg in segs {
        std::fs::remove_file(seg)?;
    }
    let tail = dir.join("tail.jsonl");
    if tail.exists() {
        std::fs::remove_file(&tail)?;
    }
    *store().lock().unwrap_or_else(PoisonError::into_inner) = Some(Store {
        dir: dir.to_owned(),
        tail_records: 0,
        next_seg: 0,
    });
    Ok(())
}

/// Replays the store in `dir` into the memo cache and keeps the store
/// active so the resumed sweep continues appending where it left off.
///
/// Every valid record is fingerprint-verified (the hash is recomputed
/// from the deserialized report and compared against the stored value)
/// before it seeds the cache; mismatches count as skipped and the point
/// re-runs. A torn tail is tolerated: invalid tail lines are dropped
/// and the tail is rewritten atomically with only the verified ones.
///
/// # Errors
///
/// Propagates directory-creation failures and tail-rewrite failures.
/// A missing store directory is not an error — it resumes empty, which
/// is exactly the cold-start case.
pub fn resume_from(dir: &Path) -> std::io::Result<ResumeStats> {
    std::fs::create_dir_all(dir)?;
    let mut stats = ResumeStats::default();
    let mut records: Vec<Record> = Vec::new();
    let (segs, next_seg) = segments_of(dir);
    stats.segments = segs.len();
    for seg in &segs {
        load_lines(seg, &mut records, &mut stats);
    }
    let tail = dir.join("tail.jsonl");
    let mut valid_tail_lines: Vec<String> = Vec::new();
    let mut tail_torn = false;
    if let Ok(text) = std::fs::read_to_string(&tail) {
        for line in text.lines() {
            if let Some(record) = decode_record(line) {
                valid_tail_lines.push(line.to_owned());
                records.push(record);
            } else {
                tail_torn = true;
                stats.skipped += 1;
            }
        }
    }
    if tail_torn {
        let mut body = valid_tail_lines.join("\n");
        if !body.is_empty() {
            body.push('\n');
        }
        write_atomic(&tail, body)?;
    }

    // Last record wins per key; verify each survivor's fingerprint
    // before it may stand in for a simulation.
    let mut latest: HashMap<u64, Record> = HashMap::new();
    for record in records {
        latest.insert(record.key, record);
    }
    for (key, record) in latest {
        if sweep::fingerprint(&record.report) != record.fp {
            stats.skipped += 1;
            continue;
        }
        sweep::seed_cache_entry(key, record.report, record.fp);
        restored()
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert(key, record.retries);
        stats.loaded += 1;
    }

    *store().lock().unwrap_or_else(PoisonError::into_inner) = Some(Store {
        dir: dir.to_owned(),
        tail_records: valid_tail_lines.len(),
        next_seg,
    });
    Ok(stats)
}

fn load_lines(path: &Path, records: &mut Vec<Record>, stats: &mut ResumeStats) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    for line in text.lines() {
        match decode_record(line) {
            Some(record) => records.push(record),
            None => stats.skipped += 1,
        }
    }
}

/// Deactivates the store; completed runs are no longer persisted.
pub fn disable_store() {
    *store().lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a checkpoint store is currently active.
#[must_use]
pub fn is_active() -> bool {
    store()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .is_some()
}

/// Appends one completed run. Called from sweep workers; IO failures
/// degrade to a warning — losing a checkpoint record costs a future
/// re-simulation, never the sweep.
pub(crate) fn append_completed(key: u64, report: &RunReport, fp: u64, retries: u32) {
    let mut guard = store().lock().unwrap_or_else(PoisonError::into_inner);
    let Some(st) = guard.as_mut() else { return };
    if let Err(e) = st.append(key, report, fp, retries) {
        eprintln!("checkpoint: dropping record for key {key:016x}: {e}");
    }
}

/// Seeds the restored-provenance map directly — the campaign merge's
/// way of marking a segment-replayed key so the first sweep that serves
/// it from cache reports `memo:"miss"` plus the retries the run cost
/// when a worker first executed it, exactly like [`resume_from`] does.
pub(crate) fn seed_restored(key: u64, retries: u32) {
    restored()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(key, retries);
}

/// Consumes the restored-provenance entry for `key`, if resume seeded
/// it and no sweep has claimed it yet.
pub(crate) fn take_restored(key: u64) -> Option<u32> {
    restored()
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .remove(&key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn record_framing_round_trips_and_rejects_corruption() {
        let spec = crate::RunSpec::new(scalesim_workloads::xalan().scaled(0.002), 2, 9);
        let report = spec.run().unwrap();
        let fp = sweep::fingerprint(&report);
        let line = encode_record(spec.memo_key(), &report, fp, 1);
        let decoded = decode_record(&line).expect("valid record decodes");
        assert_eq!(decoded.key, spec.memo_key());
        assert_eq!(decoded.fp, fp);
        assert_eq!(decoded.retries, 1);
        assert_eq!(sweep::fingerprint(&decoded.report), fp);
        // A flipped byte in the body fails the crc.
        let corrupt = line.replace("\"v\":1", "\"v\":2");
        assert!(decode_record(&corrupt).is_none());
        // A torn prefix fails too.
        assert!(decode_record(&line[..line.len() / 2]).is_none());
        assert!(decode_record("").is_none());
    }

    #[test]
    fn segment_names_sort_and_index() {
        let dir = std::env::temp_dir().join(format!("scalesim-ckpt-segs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(seg_name(0)), "").unwrap();
        std::fs::write(dir.join(seg_name(3)), "").unwrap();
        let (segs, next) = segments_of(&dir);
        assert_eq!(segs.len(), 2);
        assert_eq!(next, 4);
        assert!(segs[0].ends_with("seg-00000.jsonl"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
