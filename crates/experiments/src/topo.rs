//! `ext-topo`: the same thread-count sweep across machine topologies.
//!
//! The paper's conclusions come from one box — the four-socket AMD
//! Opteron 6168. This study replays the sweep on three machines (the
//! paper testbed, a two-socket Xeon-like box, and a SPARC-T3-like
//! single-socket 64-thread machine in the style of van Tol's T3
//! characterization) so the topology itself becomes a sweep axis: on
//! the single-socket machine every memory access is local, so any
//! scaling loss there is attributable to the application and runtime
//! rather than NUMA. This is also the campaign runner's first
//! genuinely new surface — topology × thread count multiplies the unit
//! count without changing any existing figure.

use scalesim_core::{JvmConfig, RunOutcome, SimError};
use scalesim_machine::MachineTopology;
use scalesim_metrics::{fmt2, Table};
use scalesim_simkit::SimDuration;
use scalesim_workloads::app_by_name;

use crate::params::ExpParams;
use crate::sweep::{outcome_cell, run_all, RunSpec};

/// The machines the study sweeps, in table order.
fn machines() -> Vec<MachineTopology> {
    vec![
        MachineTopology::amd_6168(),
        MachineTopology::xeon_2s_32c(),
        MachineTopology::sparc_t3_like(),
    ]
}

/// The machine × thread-count spec list the study executes; shared with
/// the campaign unit enumeration so the two cannot drift.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub(crate) fn topo_specs(app: &str, params: &ExpParams) -> Result<Vec<RunSpec>, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let mut specs = Vec::new();
    for machine in machines() {
        for &threads in &params.thread_counts {
            let mut cfg = JvmConfig::builder();
            cfg.threads(threads)
                .seed(params.seed)
                .machine(machine.clone());
            specs.push(RunSpec {
                app: model.scaled(params.scale),
                config: cfg.build()?,
            });
        }
    }
    Ok(specs)
}

/// One row of the topology study.
#[derive(Debug, Clone, PartialEq)]
pub struct TopoRow {
    /// Machine name.
    pub machine: String,
    /// Configured mutator threads.
    pub threads: usize,
    /// Cores actually enabled (threads capped at the machine size, so a
    /// 48-thread sweep point oversubscribes the 32-core Xeon).
    pub cores: usize,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// Total stop-the-world GC time.
    pub gc: SimDuration,
    /// Speedup vs. the smallest thread count on the same machine.
    pub speedup: f64,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The topology × thread-count study.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStudy {
    /// Application swept.
    pub app: String,
    /// One row per (machine, thread count), machine-major.
    pub rows: Vec<TopoRow>,
}

impl TopologyStudy {
    /// The row for `(machine, threads)`.
    #[must_use]
    pub fn row(&self, machine: &str, threads: usize) -> Option<&TopoRow> {
        self.rows
            .iter()
            .find(|r| r.machine == machine && r.threads == threads)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "machine", "threads", "cores", "wall", "gc", "speedup", "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.machine.clone(),
                r.threads.to_string(),
                r.cores.to_string(),
                r.wall.to_string(),
                r.gc.to_string(),
                format!("{}x", fmt2(r.speedup)),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs `ext-topo`: `app` at every thread count on each machine preset.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_topology(app: &str, params: &ExpParams) -> Result<TopologyStudy, SimError> {
    let specs = topo_specs(app, params)?;
    let reports = run_all(&specs);
    let per_machine = params.thread_counts.len();
    let mut rows = Vec::with_capacity(reports.len());
    for (m, machine) in machines().iter().enumerate() {
        let base = reports[m * per_machine].wall_time;
        for (t, &threads) in params.thread_counts.iter().enumerate() {
            let r = &reports[m * per_machine + t];
            rows.push(TopoRow {
                machine: machine.name().to_owned(),
                threads,
                cores: threads.clamp(1, machine.num_cores()),
                wall: r.wall_time,
                gc: r.gc_time,
                speedup: if r.wall_time.is_zero() {
                    1.0
                } else {
                    base.as_secs_f64() / r.wall_time.as_secs_f64()
                },
                outcome: r.outcome.clone(),
            });
        }
    }
    Ok(TopologyStudy {
        app: app.to_owned(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 16])
    }

    #[test]
    fn study_covers_every_machine_and_thread_count() {
        let params = tiny();
        let s = run_topology("xalan", &params).unwrap();
        assert_eq!(s.rows.len(), 3 * params.thread_counts.len());
        assert!(s.row("4x AMD Opteron 6168", 4).is_some());
        assert!(s.row("1x SPARC-T3-like 64-thread", 16).is_some());
        let t = s.table();
        assert_eq!(t.num_rows(), s.rows.len());
    }

    #[test]
    fn specs_key_on_the_machine() {
        let params = tiny();
        let specs = topo_specs("xalan", &params).unwrap();
        assert_eq!(specs.len(), 3 * params.thread_counts.len());
        // Same app/threads/seed on two machines must not share a memo key.
        let per_machine = params.thread_counts.len();
        assert_ne!(specs[0].memo_key(), specs[per_machine].memo_key());
    }

    #[test]
    fn oversubscription_caps_cores_at_the_machine() {
        let params = ExpParams::quick()
            .with_scale(0.01)
            .with_threads(vec![4, 48]);
        let s = run_topology("xalan", &params).unwrap();
        let xeon = s.row("2x Xeon-like 16-core", 48).expect("xeon row");
        assert_eq!(xeon.cores, 32, "48 threads oversubscribe the 32-core box");
        let sparc = s.row("1x SPARC-T3-like 64-thread", 48).expect("sparc row");
        assert_eq!(sparc.cores, 48, "the 64-thread box fits the full sweep");
    }

    #[test]
    fn unknown_app_is_rejected() {
        assert!(matches!(
            run_topology("nope", &tiny()),
            Err(SimError::UnknownApp(_))
        ));
    }

    #[test]
    fn scalable_app_speeds_up_on_the_flat_machine() {
        let params = ExpParams::quick()
            .with_scale(0.02)
            .with_threads(vec![4, 32]);
        let s = run_topology("sunflow", &params).unwrap();
        let r = s.row("1x SPARC-T3-like 64-thread", 32).expect("sparc row");
        assert!(r.speedup > 2.0, "sunflow at 32 threads: {}x", r.speedup);
    }
}
