//! # scalesim-experiments
//!
//! One driver per artifact of the ISPASS'15 evaluation, each printing the
//! same rows/series the paper reports:
//!
//! | id | paper artifact | driver |
//! |----|----------------|--------|
//! | `workdist` | §III workload distribution | [`run_workdist`] |
//! | `scaletable` | §II-C scalable / non-scalable classification | [`run_scalability`] |
//! | `fig1a`/`fig1b` | Fig. 1a/1b lock acquisitions & contentions | [`run_fig1_locks`] |
//! | `fig1c` | Fig. 1c eclipse lifespan CDF | [`run_fig1c`] |
//! | `fig1d` | Fig. 1d xalan lifespan CDF | [`run_fig1d`] |
//! | `fig2` | Fig. 2 mutator vs. GC time | [`run_fig2`] |
//! | `abl-sched` | §IV future work 1 (biased scheduling) | [`run_biased_sched`] |
//! | `abl-heap` | §IV future work 2 (compartmentalized heap) | [`run_heaplets`] |
//! | `ext-ergo` | extension: adaptive nursery sizing | [`run_ergonomics`] |
//! | `ext-numa` | extension: NUMA placement sensitivity | [`run_numa_placement`] |
//! | `ext-sharding` | extension: hot-lock sharding | [`run_lock_sharding`] |
//! | `ext-gcworkers` | extension: parallel GC worker scaling | [`run_gc_workers`] |
//! | `ext-oversub` | extension: threads beyond cores | [`run_oversubscription`] |
//! | `ext-heapsize` | extension: trace-replay heap-size sweep | [`run_heap_size`] |
//! | `ext-concurrent` | extension: mostly-concurrent old generation | [`run_concurrent_old_gen`] |
//! | `ext-topo` | extension: machine-topology sweep | [`run_topology`] |
//! | `ext-server` | extension: server workloads with overload control | [`run_server_study`] |
//! | `ext-locks` | extension: pluggable lock algorithms | [`run_lock_algorithms`] |
//!
//! Sweeps run in parallel across host cores ([`run_all`]); every
//! simulation itself is deterministic and single-threaded, so results are
//! reproducible bit-for-bit for a given [`ExpParams`].
//!
//! Three self-healing layers keep long sweeps durable: completed runs
//! checkpoint to disk and replay on resume ([`checkpoint`]), hung runs
//! are cancelled by a watchdog and quarantined (see [`run_all`]), and
//! quarantined specs are minimized into standalone repro files
//! ([`shrink_failure`] / [`write_repro`]). A fourth layer audits the
//! evidence: [`audit_spec`] re-executes a spec with salvage + tracing
//! and runs the offline concurrency auditor ([`scalesim_audit`]) over
//! the recovered timeline, and [`write_audit_repro`] snapshots a
//! finding-bearing run as an `audit-<key>.json` repro artifact. A fifth
//! layer scales out: [`campaign`] lets N independent worker *processes*
//! drain one sweep over a shared directory with lease-based claiming,
//! crash recovery, and byte-identical merges. Completed sweeps feed the
//! offline analytics layer ([`run_analytics`] / `scalesim-analytics`):
//! USL fitting with collapse prediction, scalability classification,
//! and per-run time attribution, emitted as a deterministic
//! fingerprinted `analytics.json` ([`write_analytics`]).
//!
//! ```
//! use scalesim_experiments::{run_fig1d, ExpParams};
//!
//! let params = ExpParams::quick().with_scale(0.01).with_threads(vec![4, 16]);
//! let fig1d = run_fig1d(&params).unwrap();
//! println!("{}", fig1d.table());
//! assert!(fig1d.frac_below_1k(4).unwrap() > fig1d.frac_below_1k(16).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ablation;
mod analyze;
mod artifacts;
mod auditing;
pub mod campaign;
pub mod checkpoint;
mod ext_locks;
mod extensions;
mod fig1_lifespan;
mod fig1_locks;
mod fig2_gc;
mod params;
mod scalability;
mod server;
mod shrink;
mod sweep;
mod topo;
mod workdist;

pub use ablation::{run_biased_sched, run_heaplets, Ablation, AblationRow};
pub use analyze::{run_analytics, write_analytics};
pub use artifacts::{artifact_tables, ArtifactTable, ALL_ARTIFACTS};
pub use auditing::{audit_spec, write_audit_repro, AUDIT_EVENT_BACKSTOP};
pub use checkpoint::ResumeStats;
pub use ext_locks::{run_lock_algorithms, LockAlgRow, LockAlgStudy};
pub use extensions::{
    run_concurrent_old_gen, run_ergonomics, run_gc_workers, run_heap_size, run_lock_sharding,
    run_numa_placement, run_oversubscription, ConcurrentRow, ConcurrentStudy, ErgoRow, Ergonomics,
    GcWorkers, GcWorkersRow, HeapSizeRow, HeapSizeStudy, NumaRow, NumaStudy, Oversub, OversubRow,
    Sharding, ShardingRow,
};
pub use fig1_lifespan::{
    run_fig1c, run_fig1d, run_lifespan_curves, LifespanCurves, DEFAULT_THRESHOLDS,
};
pub use fig1_locks::{run_fig1_locks, Fig1Locks};
pub use fig2_gc::{run_fig2, Fig2, Fig2Row};
pub use params::ExpParams;
pub use scalability::{run_scalability, Scalability, ScalabilityRow, SCALABLE_SPEEDUP_THRESHOLD};
pub use server::{run_server_study, ServerRow, ServerStudy, SERVER_SCENARIOS};
pub use shrink::{run_isolated, shrink_failure, write_repro, ShrinkOutcome, SHRINK_ATTEMPT_BUDGET};
pub use sweep::{
    cached_event_total, clear_run_cache, run_all, run_cache_size, take_run_manifests,
    take_sweep_failures, RunManifest, RunSpec, SweepFailure, SweepFailureKind,
};
pub use topo::{run_topology, TopoRow, TopologyStudy};
pub use workdist::{run_workdist, Workdist, WorkdistRow};
