//! Extension experiments beyond the paper's figures.
//!
//! The paper's characterization invites three follow-up questions that
//! its testbed could not isolate but the simulator can:
//!
//! * `ext-ergo` — would HotSpot's adaptive nursery sizing (on by default
//!   for the throughput collector, but pinned for the paper's fixed-heap
//!   methodology) rein in the growing pauses of Figure 2?
//! * `ext-numa` — how much of the GC-time growth is NUMA exposure?
//!   Compact vs. scatter core placement isolates the remote-copy factor.
//! * `ext-sharding` — Figure 1b shows contention growing with threads;
//!   sharding the hottest application lock quantifies how much of it is
//!   a single-monitor artifact.
//! * `ext-gcworkers` — how much do more parallel GC workers help? The
//!   `w / (1 + α(w-1))` synchronization model predicts saturation.
//! * `ext-oversub` — the paper keeps threads = cores; oversubscribing a
//!   fixed 48-core machine exposes preemption-driven lifespan inflation.
//! * `ext-heapsize` — trace-driven replay (the Elephant-Tracks workflow)
//!   sweeps heap sizes over one recorded object population, testing the
//!   paper's "3× minimum heap" methodology.
//! * `ext-concurrent` — would a CMS-like mostly-concurrent old-generation
//!   collector change the paper's conclusion that GC limits scalability?

use scalesim_core::{
    replay_gc, InvariantViolation, Jvm, JvmConfig, MonitorKind, OldGenPolicy, RunOutcome,
    RunReport, SimError,
};
use scalesim_gc::{GcCostModel, GcKind};
use scalesim_heap::{HeapConfig, NurseryLayout};
use scalesim_machine::Placement;
use scalesim_metrics::{fmt2, fmt_pct, Table};
use scalesim_objtrace::Retention;
use scalesim_simkit::SimDuration;
use scalesim_workloads::app_by_name;

use crate::params::ExpParams;
use crate::sweep::{outcome_cell, run_all, RunSpec};

// ---------------------------------------------------------------------
// ext-ergo: adaptive nursery sizing
// ---------------------------------------------------------------------

/// One row of the ergonomics study.
#[derive(Debug, Clone, PartialEq)]
pub struct ErgoRow {
    /// Thread count.
    pub threads: usize,
    /// Variant (`fixed` or `goal=<pause>`).
    pub variant: String,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// Total GC pause time.
    pub gc: SimDuration,
    /// Largest minor pause.
    pub max_minor_pause: SimDuration,
    /// Minor collections.
    pub minors: usize,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The adaptive-sizing study.
#[derive(Debug, Clone, PartialEq)]
pub struct Ergonomics {
    /// All rows.
    pub rows: Vec<ErgoRow>,
}

impl Ergonomics {
    /// The row for `(variant, threads)`.
    #[must_use]
    pub fn row(&self, variant: &str, threads: usize) -> Option<&ErgoRow> {
        self.rows
            .iter()
            .find(|r| r.variant == variant && r.threads == threads)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "threads",
            "variant",
            "wall",
            "gc",
            "max minor pause",
            "minors",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.threads.to_string(),
                r.variant.clone(),
                r.wall.to_string(),
                r.gc.to_string(),
                r.max_minor_pause.to_string(),
                r.minors.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

fn max_minor_pause(report: &RunReport) -> SimDuration {
    report
        .gc
        .events()
        .iter()
        .filter(|e| matches!(e.kind, GcKind::Minor | GcKind::LocalMinor))
        .map(|e| e.pause)
        .fold(SimDuration::ZERO, SimDuration::max)
}

/// Runs `ext-ergo`: fixed nursery vs. adaptive sizing under two pause
/// goals, on `app`. The goals are set relative to each configuration's
/// irreducible pause floor (fixed overhead + time-to-safepoint):
/// a *tight* goal of 1.1× the floor leaves almost no copy budget, a
/// *relaxed* goal of 4× the floor lets the nursery grow for throughput.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_ergonomics(app: &str, params: &ExpParams) -> Result<Ergonomics, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for &threads in &params.thread_counts {
        let mut fixed = JvmConfig::builder();
        fixed.threads(threads).seed(params.seed);
        let fixed = fixed.build()?;
        // The floor this configuration's minor pauses cannot go below.
        let cost = GcCostModel::hotspot_like(
            fixed.gc_workers(),
            fixed.machine.mean_numa_factor(fixed.cores()),
        );
        let live_threads = threads + fixed.helper_threads;
        let floor = SimDuration::from_nanos(cost.pause_floor_ns(live_threads) as u64);
        specs.push(RunSpec {
            app: model.scaled(params.scale),
            config: fixed.clone(),
        });
        labels.push("fixed".to_owned());
        for (label, factor) in [("tight", 1.1f64), ("relaxed", 4.0)] {
            let mut cfg = JvmConfig::builder();
            cfg.threads(threads)
                .seed(params.seed)
                .pause_goal(floor.mul_f64(factor));
            specs.push(RunSpec {
                app: model.scaled(params.scale),
                config: cfg.build()?,
            });
            labels.push(label.to_owned());
        }
    }
    let reports = run_all(&specs);
    Ok(Ergonomics {
        rows: labels
            .iter()
            .zip(reports.iter())
            .map(|(variant, r)| ErgoRow {
                threads: r.threads,
                variant: variant.clone(),
                wall: r.wall_time,
                gc: r.gc_time,
                max_minor_pause: max_minor_pause(r),
                minors: r.gc.count(GcKind::Minor),
                outcome: r.outcome.clone(),
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------
// ext-numa: placement sensitivity
// ---------------------------------------------------------------------

/// One row of the NUMA-placement study.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaRow {
    /// Thread count.
    pub threads: usize,
    /// `compact` or `scatter`.
    pub placement: String,
    /// Mean NUMA factor of the enabled cores.
    pub numa_factor: f64,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// Total GC pause time.
    pub gc: SimDuration,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The placement study.
#[derive(Debug, Clone, PartialEq)]
pub struct NumaStudy {
    /// All rows.
    pub rows: Vec<NumaRow>,
}

impl NumaStudy {
    /// The row for `(placement, threads)`.
    #[must_use]
    pub fn row(&self, placement: &str, threads: usize) -> Option<&NumaRow> {
        self.rows
            .iter()
            .find(|r| r.placement == placement && r.threads == threads)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "threads",
            "placement",
            "numa factor",
            "wall",
            "gc",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.threads.to_string(),
                r.placement.clone(),
                fmt2(r.numa_factor),
                r.wall.to_string(),
                r.gc.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs `ext-numa`: compact vs. scatter placement on `app`. The effect
/// is largest at thread counts below one socket's worth of cores, where
/// compact placement stays NUMA-local.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_numa_placement(app: &str, params: &ExpParams) -> Result<NumaStudy, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let placements = [
        (Placement::Compact, "compact"),
        (Placement::Scatter, "scatter"),
    ];
    let mut specs = Vec::new();
    let mut meta = Vec::new();
    for &threads in &params.thread_counts {
        for (placement, label) in placements {
            let mut cfg = JvmConfig::builder();
            cfg.threads(threads).seed(params.seed).placement(placement);
            let cfg = cfg.build()?;
            let cores = placement.enabled(&cfg.machine, cfg.cores());
            let factor = cfg.machine.mean_numa_factor_of(&cores);
            specs.push(RunSpec {
                app: model.scaled(params.scale),
                config: cfg,
            });
            meta.push((label.to_owned(), factor));
        }
    }
    let reports = run_all(&specs);
    Ok(NumaStudy {
        rows: meta
            .iter()
            .zip(reports.iter())
            .map(|((label, factor), r)| NumaRow {
                threads: r.threads,
                placement: label.clone(),
                numa_factor: *factor,
                wall: r.wall_time,
                gc: r.gc_time,
                outcome: r.outcome.clone(),
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------
// ext-sharding: splitting the hottest lock
// ---------------------------------------------------------------------

/// One row of the sharding study.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingRow {
    /// Shards backing the hot lock class.
    pub shards: usize,
    /// Contention instances on that class.
    pub contentions: u64,
    /// Contention rate on that class (contended / acquisitions).
    pub contention_rate: f64,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The sharding study (fixed thread count, varying shard counts).
#[derive(Debug, Clone, PartialEq)]
pub struct Sharding {
    /// The app studied.
    pub app: String,
    /// The lock class sharded.
    pub class: String,
    /// Thread count used.
    pub threads: usize,
    /// One row per shard count.
    pub rows: Vec<ShardingRow>,
}

impl Sharding {
    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "app",
            "lock",
            "threads",
            "shards",
            "contentions",
            "rate",
            "wall",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                self.app.clone(),
                self.class.clone(),
                self.threads.to_string(),
                r.shards.to_string(),
                r.contentions.to_string(),
                fmt_pct(r.contention_rate),
                r.wall.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs `ext-sharding`: shard `app`'s lock class `class_idx` 1/2/4/8
/// ways at the sweep's largest thread count.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app`.
///
/// # Panics
///
/// Panics if `class_idx` is out of range.
pub fn run_lock_sharding(
    app: &str,
    class_idx: usize,
    params: &ExpParams,
) -> Result<Sharding, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let class = model.spec().lock_classes[class_idx].name.clone();
    let threads = params.max_threads();
    let shard_counts = [1usize, 2, 4, 8];
    let specs: Vec<RunSpec> = shard_counts
        .iter()
        .map(|&k| {
            RunSpec::new(
                model.with_lock_instances(class_idx, k).scaled(params.scale),
                threads,
                params.seed,
            )
        })
        .collect();
    let reports = run_all(&specs);
    Ok(Sharding {
        app: app.to_owned(),
        class: class.clone(),
        threads,
        rows: shard_counts
            .iter()
            .zip(reports.iter())
            .map(|(&shards, r)| {
                // A quarantined stub has no lock report at all; render
                // zeros under its `quar` marker rather than panicking.
                let stats = r.locks.by_class.get(&class).copied().unwrap_or_default();
                ShardingRow {
                    shards,
                    contentions: stats.contentions,
                    contention_rate: stats.contention_rate(),
                    wall: r.wall_time,
                    outcome: r.outcome.clone(),
                }
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpParams {
        ExpParams::quick().with_scale(0.02).with_threads(vec![16])
    }

    #[test]
    fn ergonomics_produces_three_variants_per_thread_count() {
        let e = run_ergonomics("xalan", &tiny()).unwrap();
        assert_eq!(e.rows.len(), 3);
        assert!(e.row("fixed", 16).is_some());
        assert!(e.row("tight", 16).is_some());
        assert!(e.row("relaxed", 16).is_some());
        assert_eq!(e.table().num_rows(), 3);
    }

    #[test]
    fn adaptive_sizing_never_storms() {
        // The historical failure mode: an unachievable goal shrinking the
        // nursery into a collection storm. With floor-aware control, GC
        // time under any goal stays within a small factor of fixed.
        let params = ExpParams::quick().with_scale(0.1).with_threads(vec![32]);
        let e = run_ergonomics("xalan", &params).unwrap();
        let fixed = e.row("fixed", 32).expect("fixed");
        for variant in ["tight", "relaxed"] {
            let v = e.row(variant, 32).expect(variant);
            assert!(
                v.gc.as_secs_f64() < fixed.gc.as_secs_f64() * 3.0,
                "{variant}: gc {} vs fixed {}",
                v.gc,
                fixed.gc
            );
        }
    }

    #[test]
    fn relaxed_goal_trades_pause_for_fewer_collections() {
        let params = ExpParams::quick().with_scale(0.1).with_threads(vec![8]);
        let e = run_ergonomics("xalan", &params).unwrap();
        let fixed = e.row("fixed", 8).expect("fixed");
        let relaxed = e.row("relaxed", 8).expect("relaxed");
        assert!(
            relaxed.minors <= fixed.minors,
            "growing the nursery must not collect more often: {} vs {}",
            relaxed.minors,
            fixed.minors
        );
    }

    #[test]
    fn numa_scatter_is_more_exposed_and_slower_gc() {
        let params = ExpParams::quick().with_scale(0.05).with_threads(vec![8]);
        let n = run_numa_placement("xalan", &params).unwrap();
        let compact = n.row("compact", 8).expect("compact");
        let scatter = n.row("scatter", 8).expect("scatter");
        assert_eq!(compact.numa_factor, 1.0);
        assert!(scatter.numa_factor > 1.3);
        assert!(scatter.gc > compact.gc, "{} vs {}", scatter.gc, compact.gc);
    }

    #[test]
    fn sharding_reduces_contention_on_the_hot_class() {
        let params = ExpParams::quick().with_scale(0.05).with_threads(vec![32]);
        // xalan lock class 1 = dtm-cache
        let s = run_lock_sharding("xalan", 1, &params).unwrap();
        assert_eq!(s.class, "dtm-cache");
        assert_eq!(s.rows.len(), 4);
        let one = &s.rows[0];
        let eight = &s.rows[3];
        assert!(
            eight.contentions * 2 < one.contentions,
            "8 shards: {} vs 1 shard: {}",
            eight.contentions,
            one.contentions
        );
    }
}

// ---------------------------------------------------------------------
// ext-gcworkers: parallel GC worker scaling
// ---------------------------------------------------------------------

/// One row of the GC-worker scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct GcWorkersRow {
    /// Parallel GC worker threads.
    pub workers: usize,
    /// Total GC pause time.
    pub gc: SimDuration,
    /// Largest minor pause.
    pub max_minor_pause: SimDuration,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The GC-worker scaling study (fixed mutator thread count).
#[derive(Debug, Clone, PartialEq)]
pub struct GcWorkers {
    /// Mutator threads used throughout.
    pub threads: usize,
    /// One row per worker count.
    pub rows: Vec<GcWorkersRow>,
}

impl GcWorkers {
    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "threads",
            "gc workers",
            "gc",
            "max minor pause",
            "wall",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                self.threads.to_string(),
                r.workers.to_string(),
                r.gc.to_string(),
                r.max_minor_pause.to_string(),
                r.wall.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs `ext-gcworkers`: sweeps the parallel GC worker count (1, 2, 4,
/// …, cores) at the sweep's largest thread count.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_gc_workers(app: &str, params: &ExpParams) -> Result<GcWorkers, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let threads = params.max_threads();
    let mut worker_counts = Vec::new();
    let mut w = 1;
    while w < threads {
        worker_counts.push(w);
        w *= 2;
    }
    worker_counts.push(threads);
    let specs: Vec<RunSpec> = worker_counts
        .iter()
        .map(|&workers| {
            let mut cfg = JvmConfig::builder();
            cfg.threads(threads).seed(params.seed).gc_workers(workers);
            Ok(RunSpec {
                app: model.scaled(params.scale),
                config: cfg.build()?,
            })
        })
        .collect::<Result<_, scalesim_core::ConfigError>>()?;
    let reports = run_all(&specs);
    Ok(GcWorkers {
        threads,
        rows: worker_counts
            .iter()
            .zip(reports.iter())
            .map(|(&workers, r)| GcWorkersRow {
                workers,
                gc: r.gc_time,
                max_minor_pause: max_minor_pause(r),
                wall: r.wall_time,
                outcome: r.outcome.clone(),
            })
            .collect(),
    })
}

// ---------------------------------------------------------------------
// ext-oversub: threads beyond cores
// ---------------------------------------------------------------------

/// One row of the oversubscription study.
#[derive(Debug, Clone, PartialEq)]
pub struct OversubRow {
    /// Mutator threads (cores fixed at the machine's 48).
    pub threads: usize,
    /// Quantum preemptions across all mutators.
    pub preemptions: u64,
    /// Fraction of objects with lifespans below 1 KiB.
    pub frac_below_1k: f64,
    /// Total GC pause time.
    pub gc: SimDuration,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The oversubscription study: a fixed fully-enabled machine with
/// 1×, 2× and 4× as many threads as cores.
#[derive(Debug, Clone, PartialEq)]
pub struct Oversub {
    /// Enabled cores (fixed).
    pub cores: usize,
    /// One row per thread count.
    pub rows: Vec<OversubRow>,
}

impl Oversub {
    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "cores",
            "threads",
            "preemptions",
            "<1KiB",
            "gc",
            "wall",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                self.cores.to_string(),
                r.threads.to_string(),
                r.preemptions.to_string(),
                fmt_pct(r.frac_below_1k),
                r.gc.to_string(),
                r.wall.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

/// Runs `ext-oversub` on `app`: 48 cores enabled, threads at 1×/2×/4×
/// the core count. The paper never oversubscribes (threads = cores);
/// this shows that its lifespan-inflation mechanism strengthens when
/// threads time-share cores and quantum preemption suspends them
/// mid-item.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_oversubscription(app: &str, params: &ExpParams) -> Result<Oversub, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let cores = 48;
    let thread_counts = [cores, 2 * cores, 4 * cores];
    let specs: Vec<RunSpec> = thread_counts
        .iter()
        .map(|&threads| {
            let mut cfg = JvmConfig::builder();
            cfg.threads(threads).cores(cores).seed(params.seed);
            Ok(RunSpec {
                app: model.scaled(params.scale),
                config: cfg.build()?,
            })
        })
        .collect::<Result<_, scalesim_core::ConfigError>>()?;
    let reports = run_all(&specs);
    Ok(Oversub {
        cores,
        rows: thread_counts
            .iter()
            .zip(reports.iter())
            .map(|(&threads, r)| OversubRow {
                threads,
                preemptions: r.per_thread.iter().map(|t| t.preemptions).sum(),
                frac_below_1k: r.trace.fraction_below(1 << 10),
                gc: r.gc_time,
                wall: r.wall_time,
                outcome: r.outcome.clone(),
            })
            .collect(),
    })
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn gc_workers_help_but_saturate() {
        let params = ExpParams::quick().with_scale(0.1).with_threads(vec![32]);
        let g = run_gc_workers("xalan", &params).unwrap();
        assert_eq!(g.threads, 32);
        assert!(g.rows.len() >= 5);
        let one = &g.rows[0];
        let all = g.rows.last().expect("rows");
        assert!(all.gc < one.gc, "more workers must reduce GC time");
        // diminishing returns: the last doubling helps less than the first
        let first_gain = one.gc.as_secs_f64() / g.rows[1].gc.as_secs_f64();
        let n = g.rows.len();
        let last_gain = g.rows[n - 2].gc.as_secs_f64() / all.gc.as_secs_f64();
        assert!(
            first_gain > last_gain,
            "first doubling {first_gain:.3}x, last {last_gain:.3}x"
        );
    }

    #[test]
    fn oversubscription_hurts_gc_disproportionately() {
        let params = ExpParams::quick().with_scale(0.1);
        let o = run_oversubscription("xalan", &params).unwrap();
        assert_eq!(o.rows.len(), 3);
        let matched = &o.rows[0];
        let four_x = &o.rows[2];
        // Threads time-sharing 48 cores gain no mutator capacity but keep
        // more carried objects alive, so GC time grows much faster than
        // wall time.
        let gc_growth = four_x.gc.as_secs_f64() / matched.gc.as_secs_f64();
        let wall_growth = four_x.wall.as_secs_f64() / matched.wall.as_secs_f64();
        assert!(gc_growth > 1.5, "gc growth {gc_growth:.2}");
        assert!(
            gc_growth > wall_growth,
            "gc x{gc_growth:.2} should outpace wall x{wall_growth:.2}"
        );
        // ... and lifespans never get shorter under time-sharing.
        assert!(four_x.frac_below_1k <= matched.frac_below_1k + 0.02);
    }
}

// ---------------------------------------------------------------------
// ext-heapsize: trace-driven heap-size sweep
// ---------------------------------------------------------------------

/// One row of the heap-size study.
#[derive(Debug, Clone, PartialEq)]
pub struct HeapSizeRow {
    /// Heap size as a multiple of the app's minimum requirement.
    pub factor: f64,
    /// Heap size in bytes.
    pub heap_bytes: u64,
    /// Minor collections during replay.
    pub minors: usize,
    /// Full collections during replay.
    pub fulls: usize,
    /// Total GC pause time.
    pub gc: SimDuration,
    /// Mean nursery survival rate.
    pub survival: f64,
}

/// The heap-size study: one recorded trace replayed at several heap
/// sizes (the Elephant-Tracks trace-driven GC-simulation workflow).
#[derive(Debug, Clone, PartialEq)]
pub struct HeapSizeStudy {
    /// App the trace was recorded from.
    pub app: String,
    /// Threads the trace was recorded under.
    pub threads: usize,
    /// Objects in the trace.
    pub objects: u64,
    /// One row per heap-size factor.
    pub rows: Vec<HeapSizeRow>,
}

impl HeapSizeStudy {
    /// The row for a given factor.
    #[must_use]
    pub fn row(&self, factor: f64) -> Option<&HeapSizeRow> {
        self.rows.iter().find(|r| (r.factor - factor).abs() < 1e-9)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "app",
            "threads",
            "heap (x min)",
            "minors",
            "fulls",
            "gc",
            "survival",
        ]);
        for r in &self.rows {
            t.row(vec![
                self.app.clone(),
                self.threads.to_string(),
                format!("{:.1}x", r.factor),
                r.minors.to_string(),
                r.fulls.to_string(),
                r.gc.to_string(),
                fmt_pct(r.survival),
            ]);
        }
        t
    }
}

/// Runs `ext-heapsize` on `app`: records one full object trace at the
/// sweep's largest thread count, then replays it at 1.5×–6× the app's
/// minimum heap.
///
/// Note: full-trace retention is memory-proportional to the object
/// count; prefer `--scale` ≤ 0.5 for paper-sized workloads.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors or an engine failure in the recording run.
pub fn run_heap_size(app: &str, params: &ExpParams) -> Result<HeapSizeStudy, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let threads = params.max_threads();
    let scaled = model.scaled(params.scale);

    let mut cfg = JvmConfig::builder();
    cfg.threads(threads)
        .seed(params.seed)
        .retention(Retention::Full);
    let report = Jvm::new(cfg.build()?).run(&scaled)?;
    let events = report.trace.events().ok_or_else(|| {
        SimError::Invariant(InvariantViolation {
            kind: MonitorKind::HeapConservation,
            detail: "recording run with Retention::Full kept no object events".to_owned(),
        })
    })?;

    let min_heap = scaled.spec().min_heap_bytes;
    let gc_model = GcCostModel::hotspot_like(
        threads,
        scalesim_machine::MachineTopology::amd_6168().mean_numa_factor(threads.min(48)),
    );
    let rows = [1.5f64, 2.0, 3.0, 4.0, 6.0]
        .into_iter()
        .map(|factor| {
            let heap_bytes = (min_heap as f64 * factor) as u64;
            let heap_cfg = HeapConfig::new(heap_bytes, 1.0 / 3.0, NurseryLayout::Shared);
            let out = replay_gc(events, heap_cfg, gc_model, threads);
            HeapSizeRow {
                factor,
                heap_bytes,
                minors: out.gc.count(GcKind::Minor),
                fulls: out.gc.count(GcKind::Full),
                gc: out.gc.total_pause(),
                survival: out.gc.minor_survival_rate().unwrap_or(0.0),
            }
        })
        .collect();
    Ok(HeapSizeStudy {
        app: app.to_owned(),
        threads,
        objects: report.trace.allocations(),
        rows,
    })
}

#[cfg(test)]
mod heapsize_tests {
    use super::*;

    #[test]
    fn gc_time_falls_with_heap_size_with_diminishing_returns() {
        let params = ExpParams::quick().with_scale(0.05).with_threads(vec![16]);
        let study = run_heap_size("xalan", &params).unwrap();
        assert_eq!(study.rows.len(), 5);
        assert!(study.objects > 0);

        let gc: Vec<f64> = study.rows.iter().map(|r| r.gc.as_secs_f64()).collect();
        assert!(
            gc.windows(2).all(|w| w[1] <= w[0] * 1.05),
            "GC time should fall (or hold) as the heap grows: {gc:?}"
        );
        // tight heaps pay heavily relative to generous ones
        assert!(
            gc[0] > gc[4] * 2.0,
            "1.5x min heap should cost >2x the GC time of 6x: {gc:?}"
        );
    }

    #[test]
    fn minor_count_scales_inversely_with_nursery() {
        let params = ExpParams::quick().with_scale(0.02).with_threads(vec![8]);
        let study = run_heap_size("lusearch", &params).unwrap();
        let small = study.row(1.5).expect("1.5x");
        let large = study.row(6.0).expect("6x");
        assert!(
            small.minors > large.minors * 2,
            "{} vs {}",
            small.minors,
            large.minors
        );
    }
}

// ---------------------------------------------------------------------
// ext-concurrent: mostly-concurrent old generation
// ---------------------------------------------------------------------

/// One row of the concurrent-collector study.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentRow {
    /// Thread count.
    pub threads: usize,
    /// `stw-full` or `concurrent`.
    pub policy: String,
    /// End-to-end wall time.
    pub wall: SimDuration,
    /// Total STW pause time (all collection kinds).
    pub gc_stw: SimDuration,
    /// Worst single old-generation pause (full GC, or one concurrent
    /// phase).
    pub worst_old_pause: SimDuration,
    /// Old-gen collections: full GCs, or completed concurrent cycles.
    pub old_collections: usize,
    /// STW full GCs under the concurrent policy — "concurrent mode
    /// failures".
    pub failures: usize,
    /// How the run behind this row ended.
    pub outcome: RunOutcome,
}

/// The concurrent-collector study.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentStudy {
    /// All rows.
    pub rows: Vec<ConcurrentRow>,
}

impl ConcurrentStudy {
    /// The row for `(policy, threads)`.
    #[must_use]
    pub fn row(&self, policy: &str, threads: usize) -> Option<&ConcurrentRow> {
        self.rows
            .iter()
            .find(|r| r.policy == policy && r.threads == threads)
    }

    /// Renders the table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "threads",
            "old-gen policy",
            "wall",
            "gc stw",
            "worst old pause",
            "old collections",
            "cmf",
            "outcome",
        ]);
        for r in &self.rows {
            t.row(vec![
                r.threads.to_string(),
                r.policy.clone(),
                r.wall.to_string(),
                r.gc_stw.to_string(),
                r.worst_old_pause.to_string(),
                r.old_collections.to_string(),
                r.failures.to_string(),
                outcome_cell(&r.outcome),
            ]);
        }
        t
    }
}

fn concurrent_row(policy: &str, r: &RunReport) -> ConcurrentRow {
    let max_of = |kind: GcKind| {
        r.gc.events()
            .iter()
            .filter(|e| e.kind == kind)
            .map(|e| e.pause)
            .max()
            .unwrap_or(SimDuration::ZERO)
    };
    let (worst_old, old_collections, failures) = if policy == "concurrent" {
        (
            max_of(GcKind::ConcurrentOld).max(max_of(GcKind::Full)),
            r.gc.count(GcKind::ConcurrentOld) / 2, // two phases per cycle
            r.gc.count(GcKind::Full),
        )
    } else {
        (max_of(GcKind::Full), r.gc.count(GcKind::Full), 0)
    };
    ConcurrentRow {
        threads: r.threads,
        policy: policy.to_owned(),
        wall: r.wall_time,
        gc_stw: r.gc_time,
        worst_old_pause: worst_old,
        old_collections,
        failures,
        outcome: r.outcome.clone(),
    }
}

/// Runs `ext-concurrent` on `app`: the paper's STW throughput collector
/// vs. a CMS-like mostly-concurrent old generation, across the thread
/// sweep.
///
/// # Errors
///
/// Returns [`SimError::UnknownApp`] for an unknown `app` and propagates
/// configuration errors.
pub fn run_concurrent_old_gen(app: &str, params: &ExpParams) -> Result<ConcurrentStudy, SimError> {
    let model = app_by_name(app).ok_or_else(|| SimError::UnknownApp(app.to_owned()))?;
    let mut specs = Vec::new();
    let mut labels = Vec::new();
    for &threads in &params.thread_counts {
        for (label, policy) in [
            ("stw-full", OldGenPolicy::StwFull),
            ("concurrent", OldGenPolicy::MostlyConcurrent),
        ] {
            let mut cfg = JvmConfig::builder();
            cfg.threads(threads).seed(params.seed).old_gen(policy);
            specs.push(RunSpec {
                app: model.scaled(params.scale),
                config: cfg.build()?,
            });
            labels.push(label);
        }
    }
    let reports = run_all(&specs);
    Ok(ConcurrentStudy {
        rows: labels
            .iter()
            .zip(reports.iter())
            .map(|(label, r)| concurrent_row(label, r))
            .collect(),
    })
}

#[cfg(test)]
mod concurrent_tests {
    use super::*;

    #[test]
    fn concurrent_policy_bounds_the_worst_old_gen_pause() {
        // Needs enough promotion pressure for old-gen collections: full
        // scale at 48 threads (see Figure 2's full-GC column).
        let params = ExpParams::paper().with_threads(vec![48]);
        let study = run_concurrent_old_gen("xalan", &params).unwrap();
        let stw = study.row("stw-full", 48).expect("stw row");
        let conc = study.row("concurrent", 48).expect("concurrent row");
        assert!(stw.old_collections > 0, "baseline needs full GCs");
        assert!(conc.old_collections > 0, "cycles must run");
        assert!(
            conc.worst_old_pause < stw.worst_old_pause,
            "{} vs {}",
            conc.worst_old_pause,
            stw.worst_old_pause
        );
        // mutator work is unaffected
        assert_eq!(study.table().num_rows(), 2);
    }
}
