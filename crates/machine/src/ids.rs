//! Typed identifiers for hardware resources.
//!
//! Plain `usize` indices invite mixing a core index with a socket index;
//! these newtypes make that a compile error ([C-NEWTYPE]).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(usize);

        impl $name {
            /// Creates an identifier from a raw index.
            #[must_use]
            pub const fn new(index: usize) -> Self {
                $name(index)
            }

            /// The raw index (e.g. for indexing parallel `Vec`s).
            #[must_use]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(index: usize) -> Self {
                $name(index)
            }
        }
    };
}

id_newtype!(
    /// A processing core, numbered machine-wide (not per socket).
    CoreId,
    "core"
);
id_newtype!(
    /// A processor socket (package).
    SocketId,
    "socket"
);
id_newtype!(
    /// A NUMA memory node. On the modelled machines each socket has one
    /// local memory node with the same index.
    MemNodeId,
    "mem"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_display() {
        let c = CoreId::new(5);
        assert_eq!(c.index(), 5);
        assert_eq!(c.to_string(), "core5");
        assert_eq!(SocketId::new(2).to_string(), "socket2");
        assert_eq!(MemNodeId::new(1).to_string(), "mem1");
    }

    #[test]
    fn from_usize() {
        assert_eq!(CoreId::from(3), CoreId::new(3));
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
    }
}
