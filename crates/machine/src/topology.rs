//! Machine topology: sockets, cores, memory nodes and NUMA distances.
//!
//! The ISPASS'15 paper's testbed is a four-socket AMD Opteron 6168 box —
//! 48 cores total, one memory node per socket, 64 GB RAM. The experiments
//! enable between 4 and 48 cores; [`MachineTopology::enabled`] models the
//! same socket-by-socket enablement `numactl`/hot-unplug would produce.

use std::fmt;

use crate::ids::{CoreId, MemNodeId, SocketId};

/// Relative cost multiplier for a memory access from one socket to
/// another's memory node (1.0 = local).
pub type NumaFactor = f64;

/// An immutable description of a manycore NUMA machine.
///
/// Built with [`MachineBuilder`] or the [`MachineTopology::amd_6168`]
/// preset.
///
/// # Examples
///
/// ```
/// use scalesim_machine::MachineTopology;
///
/// let m = MachineTopology::amd_6168();
/// assert_eq!(m.num_cores(), 48);
/// assert_eq!(m.num_sockets(), 4);
/// let enabled = m.enabled(16);
/// assert_eq!(enabled.len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MachineTopology {
    cores_per_socket: usize,
    num_sockets: usize,
    /// numa_distance[a][b]: access-cost multiplier from socket `a` to
    /// memory node `b`.
    numa_distance: Vec<Vec<NumaFactor>>,
    ram_bytes: u64,
    name: String,
}

impl MachineTopology {
    /// The paper's testbed: 4 × AMD Opteron 6168 (12 cores each, 48 total),
    /// 64 GB RAM, remote-socket accesses ~1.5× local cost.
    #[must_use]
    pub fn amd_6168() -> Self {
        MachineBuilder::new()
            .name("4x AMD Opteron 6168")
            .sockets(4)
            .cores_per_socket(12)
            .remote_factor(1.5)
            .ram_bytes(64 * (1 << 30))
            .build()
    }

    /// A contemporary two-socket Xeon-like box: 2 × 16 cores, 128 GB,
    /// remote accesses ~1.3× local. Useful to check that conclusions are
    /// not artifacts of the AMD testbed's four-socket layout.
    #[must_use]
    pub fn xeon_2s_32c() -> Self {
        MachineBuilder::new()
            .name("2x Xeon-like 16-core")
            .sockets(2)
            .cores_per_socket(16)
            .remote_factor(1.3)
            .ram_bytes(128 * (1 << 30))
            .build()
    }

    /// A SPARC-T3-like single-socket box in the style of van Tol's T3
    /// characterization: one socket exposing 64 hardware threads, 128 GB
    /// RAM. With everything on one socket there is no remote memory node,
    /// so the NUMA factor is uniformly 1.0 — scalability limits on this
    /// profile come from the application and the runtime alone, which is
    /// exactly what makes it a useful contrast axis against the
    /// four-socket AMD testbed.
    #[must_use]
    pub fn sparc_t3_like() -> Self {
        MachineBuilder::new()
            .name("1x SPARC-T3-like 64-thread")
            .sockets(1)
            .cores_per_socket(64)
            .remote_factor(1.0)
            .ram_bytes(128 * (1 << 30))
            .build()
    }

    /// Human-readable machine name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of cores.
    #[must_use]
    pub fn num_cores(&self) -> usize {
        self.cores_per_socket * self.num_sockets
    }

    /// Number of sockets.
    #[must_use]
    pub fn num_sockets(&self) -> usize {
        self.num_sockets
    }

    /// Cores per socket.
    #[must_use]
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Installed RAM in bytes.
    #[must_use]
    pub fn ram_bytes(&self) -> u64 {
        self.ram_bytes
    }

    /// The socket a core belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range for this machine.
    #[must_use]
    pub fn socket_of(&self, core: CoreId) -> SocketId {
        assert!(
            core.index() < self.num_cores(),
            "{core} out of range for {} cores",
            self.num_cores()
        );
        SocketId::new(core.index() / self.cores_per_socket)
    }

    /// The memory node local to a socket (one node per socket).
    #[must_use]
    pub fn local_mem_node(&self, socket: SocketId) -> MemNodeId {
        MemNodeId::new(socket.index())
    }

    /// NUMA access-cost multiplier for a core touching a memory node
    /// (1.0 when local).
    ///
    /// # Panics
    ///
    /// Panics if `core` or `node` is out of range.
    #[must_use]
    pub fn numa_factor(&self, core: CoreId, node: MemNodeId) -> NumaFactor {
        let s = self.socket_of(core);
        assert!(node.index() < self.num_sockets, "{node} out of range");
        self.numa_distance[s.index()][node.index()]
    }

    /// Average NUMA factor seen by `cores` enabled cores (socket-major
    /// enablement). See [`mean_numa_factor_of`](Self::mean_numa_factor_of).
    #[must_use]
    pub fn mean_numa_factor(&self, cores: usize) -> NumaFactor {
        self.mean_numa_factor_of(&self.enabled(cores))
    }

    /// Average NUMA factor seen by an explicit core set touching memory
    /// spread uniformly over the memory nodes their sockets own — a proxy
    /// for how "NUMA-exposed" a configuration is (1.0 on one socket,
    /// rising as the set spans sockets).
    #[must_use]
    pub fn mean_numa_factor_of(&self, enabled: &[CoreId]) -> NumaFactor {
        if enabled.is_empty() {
            return 1.0;
        }
        let sockets_used: Vec<SocketId> = {
            let mut s: Vec<_> = enabled.iter().map(|&c| self.socket_of(c)).collect();
            s.sort();
            s.dedup();
            s
        };
        let mut total = 0.0;
        for &c in enabled {
            for &s in &sockets_used {
                total += self.numa_factor(c, self.local_mem_node(s));
            }
        }
        total / (enabled.len() * sockets_used.len()) as f64
    }

    /// The first `n` cores in socket-major order — the set of cores enabled
    /// for an experiment that restricts the machine to `n` processors.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the machine's core count or is zero.
    #[must_use]
    pub fn enabled(&self, n: usize) -> Vec<CoreId> {
        assert!(n >= 1, "at least one core must be enabled");
        assert!(
            n <= self.num_cores(),
            "cannot enable {n} cores on a {}-core machine",
            self.num_cores()
        );
        (0..n).map(CoreId::new).collect()
    }

    /// The first `n` cores in *scatter* order — round-robin across
    /// sockets, the placement `numactl --interleave`-style pinning
    /// produces. Spreads even small configurations over all memory
    /// nodes, maximizing NUMA exposure (and memory bandwidth).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the machine's core count or is zero.
    #[must_use]
    pub fn enabled_scatter(&self, n: usize) -> Vec<CoreId> {
        assert!(n >= 1, "at least one core must be enabled");
        assert!(
            n <= self.num_cores(),
            "cannot enable {n} cores on a {}-core machine",
            self.num_cores()
        );
        (0..n)
            .map(|i| {
                let socket = i % self.num_sockets;
                let within = i / self.num_sockets;
                CoreId::new(socket * self.cores_per_socket + within)
            })
            .collect()
    }

    /// Iterates over all cores of the machine.
    pub fn cores(&self) -> impl Iterator<Item = CoreId> + '_ {
        (0..self.num_cores()).map(CoreId::new)
    }
}

impl fmt::Display for MachineTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} sockets x {} cores, {} GB)",
            self.name,
            self.num_sockets,
            self.cores_per_socket,
            self.ram_bytes >> 30
        )
    }
}

/// Incrementally configures a [`MachineTopology`] ([C-BUILDER]).
///
/// # Examples
///
/// ```
/// use scalesim_machine::MachineBuilder;
///
/// let m = MachineBuilder::new()
///     .sockets(2)
///     .cores_per_socket(8)
///     .remote_factor(1.3)
///     .build();
/// assert_eq!(m.num_cores(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct MachineBuilder {
    sockets: usize,
    cores_per_socket: usize,
    remote_factor: NumaFactor,
    ram_bytes: u64,
    name: String,
}

impl Default for MachineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl MachineBuilder {
    /// Starts from a modest 1-socket, 4-core default.
    #[must_use]
    pub fn new() -> Self {
        MachineBuilder {
            sockets: 1,
            cores_per_socket: 4,
            remote_factor: 1.5,
            ram_bytes: 16 * (1 << 30),
            name: "custom".to_owned(),
        }
    }

    /// Sets the number of sockets.
    pub fn sockets(&mut self, n: usize) -> &mut Self {
        self.sockets = n;
        self
    }

    /// Sets the number of cores on each socket.
    pub fn cores_per_socket(&mut self, n: usize) -> &mut Self {
        self.cores_per_socket = n;
        self
    }

    /// Sets the remote-access cost multiplier applied between distinct
    /// sockets (local accesses are always 1.0).
    pub fn remote_factor(&mut self, f: NumaFactor) -> &mut Self {
        self.remote_factor = f;
        self
    }

    /// Sets installed RAM in bytes.
    pub fn ram_bytes(&mut self, bytes: u64) -> &mut Self {
        self.ram_bytes = bytes;
        self
    }

    /// Sets the display name.
    pub fn name(&mut self, name: &str) -> &mut Self {
        self.name = name.to_owned();
        self
    }

    /// Builds the topology.
    ///
    /// # Panics
    ///
    /// Panics if sockets or cores-per-socket is zero, or if the remote
    /// factor is below 1.0 (remote memory cannot be cheaper than local).
    #[must_use]
    pub fn build(&self) -> MachineTopology {
        assert!(self.sockets >= 1, "need at least one socket");
        assert!(
            self.cores_per_socket >= 1,
            "need at least one core per socket"
        );
        assert!(
            self.remote_factor >= 1.0,
            "remote NUMA factor must be >= 1.0, got {}",
            self.remote_factor
        );
        let numa_distance = (0..self.sockets)
            .map(|a| {
                (0..self.sockets)
                    .map(|b| if a == b { 1.0 } else { self.remote_factor })
                    .collect()
            })
            .collect();
        MachineTopology {
            cores_per_socket: self.cores_per_socket,
            num_sockets: self.sockets,
            numa_distance,
            ram_bytes: self.ram_bytes,
            name: self.name.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amd_preset_matches_paper_testbed() {
        let m = MachineTopology::amd_6168();
        assert_eq!(m.num_sockets(), 4);
        assert_eq!(m.cores_per_socket(), 12);
        assert_eq!(m.num_cores(), 48);
        assert_eq!(m.ram_bytes(), 64 * (1 << 30));
    }

    #[test]
    fn xeon_preset_shape() {
        let m = MachineTopology::xeon_2s_32c();
        assert_eq!(m.num_cores(), 32);
        assert_eq!(m.num_sockets(), 2);
        assert_eq!(m.numa_factor(CoreId::new(0), MemNodeId::new(1)), 1.3);
    }

    #[test]
    fn sparc_preset_is_single_socket_and_numa_flat() {
        let m = MachineTopology::sparc_t3_like();
        assert_eq!(m.num_sockets(), 1);
        assert_eq!(m.num_cores(), 64);
        assert_eq!(m.ram_bytes(), 128 * (1 << 30));
        assert_eq!(m.numa_factor(CoreId::new(63), MemNodeId::new(0)), 1.0);
        assert_eq!(m.mean_numa_factor(64), 1.0);
        // Scatter placement degenerates to compact on one socket.
        assert_eq!(m.enabled(8), m.enabled_scatter(8));
    }

    #[test]
    fn socket_assignment_is_socket_major() {
        let m = MachineTopology::amd_6168();
        assert_eq!(m.socket_of(CoreId::new(0)), SocketId::new(0));
        assert_eq!(m.socket_of(CoreId::new(11)), SocketId::new(0));
        assert_eq!(m.socket_of(CoreId::new(12)), SocketId::new(1));
        assert_eq!(m.socket_of(CoreId::new(47)), SocketId::new(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn socket_of_out_of_range_panics() {
        let _ = MachineTopology::amd_6168().socket_of(CoreId::new(48));
    }

    #[test]
    fn numa_factor_local_is_one_remote_is_configured() {
        let m = MachineTopology::amd_6168();
        let c0 = CoreId::new(0);
        assert_eq!(m.numa_factor(c0, MemNodeId::new(0)), 1.0);
        assert_eq!(m.numa_factor(c0, MemNodeId::new(3)), 1.5);
    }

    #[test]
    fn enabled_fills_sockets_in_order() {
        let m = MachineTopology::amd_6168();
        let e = m.enabled(13);
        assert_eq!(e.len(), 13);
        assert_eq!(m.socket_of(e[12]), SocketId::new(1));
        assert!(e[..12].iter().all(|&c| m.socket_of(c) == SocketId::new(0)));
    }

    #[test]
    #[should_panic(expected = "cannot enable")]
    fn enabling_too_many_cores_panics() {
        let _ = MachineTopology::amd_6168().enabled(49);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn enabling_zero_cores_panics() {
        let _ = MachineTopology::amd_6168().enabled(0);
    }

    #[test]
    fn mean_numa_factor_grows_with_socket_span() {
        let m = MachineTopology::amd_6168();
        let one_socket = m.mean_numa_factor(12);
        let all = m.mean_numa_factor(48);
        assert_eq!(one_socket, 1.0);
        assert!(all > one_socket, "all={all} one={one_socket}");
        assert!(all <= 1.5);
    }

    #[test]
    fn scatter_round_robins_sockets() {
        let m = MachineTopology::amd_6168();
        let e = m.enabled_scatter(6);
        let sockets: Vec<usize> = e.iter().map(|&c| m.socket_of(c).index()).collect();
        assert_eq!(sockets, vec![0, 1, 2, 3, 0, 1]);
        assert_eq!(e[4], CoreId::new(1), "second core on socket 0");
    }

    #[test]
    fn scatter_is_more_numa_exposed_than_compact() {
        let m = MachineTopology::amd_6168();
        let compact = m.mean_numa_factor_of(&m.enabled(8));
        let scatter = m.mean_numa_factor_of(&m.enabled_scatter(8));
        assert_eq!(compact, 1.0, "8 compact cores fit one socket");
        assert!(
            scatter > 1.3,
            "8 scattered cores span all sockets: {scatter}"
        );
    }

    #[test]
    fn scatter_covers_all_cores_without_duplicates() {
        let m = MachineTopology::amd_6168();
        let mut e = m.enabled_scatter(48);
        e.sort();
        e.dedup();
        assert_eq!(e.len(), 48);
    }

    #[test]
    fn builder_validates() {
        let r = std::panic::catch_unwind(|| MachineBuilder::new().sockets(0).build());
        assert!(r.is_err());
        let r = std::panic::catch_unwind(|| MachineBuilder::new().remote_factor(0.5).build());
        assert!(r.is_err());
    }

    #[test]
    fn cores_iterator_covers_all() {
        let m = MachineBuilder::new().sockets(2).cores_per_socket(3).build();
        let v: Vec<_> = m.cores().collect();
        assert_eq!(v.len(), 6);
        assert_eq!(v[5], CoreId::new(5));
    }

    #[test]
    fn display_mentions_shape() {
        let s = MachineTopology::amd_6168().to_string();
        assert!(s.contains("4 sockets"), "{s}");
        assert!(s.contains("12 cores"), "{s}");
    }
}
