//! # scalesim-machine
//!
//! Manycore NUMA machine model for the `scalesim` workspace.
//!
//! The ISPASS'15 study ran on a four-socket, 48-core AMD Opteron 6168
//! system and varied the number of *enabled* cores from 4 to 48. This crate
//! provides that machine as data: a [`MachineTopology`] with sockets,
//! cores, per-socket memory nodes, a NUMA cost matrix, and the
//! socket-major core-enablement order the experiments use.
//!
//! ```
//! use scalesim_machine::{MachineTopology, CoreId};
//!
//! let m = MachineTopology::amd_6168();
//! // Core 20 lives on socket 1; touching socket 3's memory costs 1.5x.
//! let s = m.socket_of(CoreId::new(20));
//! assert_eq!(s.index(), 1);
//! assert_eq!(m.numa_factor(CoreId::new(20), m.local_mem_node(s)), 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ids;
mod topology;

pub use ids::{CoreId, MemNodeId, SocketId};
pub use topology::{MachineBuilder, MachineTopology, NumaFactor};

/// How enabled cores are chosen when a configuration uses fewer cores
/// than the machine has.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Fill sockets in order (the paper's enablement; minimizes NUMA
    /// exposure at low core counts). See [`MachineTopology::enabled`].
    #[default]
    Compact,
    /// Round-robin across sockets (interleaved pinning; maximizes NUMA
    /// exposure). See [`MachineTopology::enabled_scatter`].
    Scatter,
}

impl Placement {
    /// The core set this placement enables for `n` cores.
    #[must_use]
    pub fn enabled(self, machine: &MachineTopology, n: usize) -> Vec<CoreId> {
        match self {
            Placement::Compact => machine.enabled(n),
            Placement::Scatter => machine.enabled_scatter(n),
        }
    }
}

#[cfg(test)]
mod placement_tests {
    use super::*;

    #[test]
    fn placement_dispatches_to_the_right_order() {
        let m = MachineTopology::amd_6168();
        assert_eq!(Placement::Compact.enabled(&m, 3), m.enabled(3));
        assert_eq!(Placement::Scatter.enabled(&m, 3), m.enabled_scatter(3));
        assert_ne!(
            Placement::Compact.enabled(&m, 8),
            Placement::Scatter.enabled(&m, 8)
        );
    }

    #[test]
    fn default_is_compact() {
        assert_eq!(Placement::default(), Placement::Compact);
    }
}
