//! The managed heap: allocation clock, nursery regions, mature space,
//! TLABs.
//!
//! The heap knows nothing about *why* objects die or when collections run
//! — that is the runtime's and collector's business. It provides exact
//! occupancy accounting, the VM-wide **allocation clock** (total bytes
//! ever allocated — the x-axis of the paper's lifespan metric), and the
//! object bookkeeping a copying collector needs.

use scalesim_sched::ThreadId;

use crate::config::HeapConfig;
use crate::object::{ObjectId, ObjectRecord, ObjectTable, Space};

/// Result of an allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocResult {
    /// The object was allocated.
    Ok(ObjectId),
    /// The target nursery region cannot fit the object: a minor collection
    /// of that region is required, after which the caller retries.
    NurseryFull {
        /// The full region.
        region: usize,
    },
}

/// A dead object's vital statistics, returned by [`Heap::kill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeathRecord {
    /// Object size in bytes.
    pub size: u64,
    /// Lifespan on the allocation clock: bytes allocated VM-wide between
    /// the object's birth and its death (the paper's §II-A metric).
    pub lifespan: u64,
    /// Space the object occupied when it died.
    pub space: Space,
}

/// Cumulative heap statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Objects ever allocated.
    pub objects_allocated: u64,
    /// Bytes ever allocated (equals the final allocation clock).
    pub bytes_allocated: u64,
    /// Objects that died (had [`Heap::kill`] called).
    pub objects_died: u64,
    /// TLAB refills performed.
    pub tlab_refills: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Tlab {
    remaining: u64,
}

#[derive(Debug, Clone, Copy)]
struct Region {
    capacity: u64,
    used: u64,
}

/// The simulated generational heap.
///
/// # Examples
///
/// ```
/// use scalesim_heap::{AllocResult, Heap, HeapConfig, NurseryLayout};
/// use scalesim_sched::ThreadId;
///
/// let mut heap = Heap::new(HeapConfig::new(3 << 20, 1.0 / 3.0, NurseryLayout::Shared));
/// let t = ThreadId::new(0);
/// let AllocResult::Ok(obj) = heap.alloc(t, 128) else { panic!("1 MiB nursery fits 128 B") };
/// assert_eq!(heap.clock(), 128);
/// let death = heap.kill(obj);
/// assert_eq!(death.lifespan, 0); // nothing was allocated in between
/// ```
#[derive(Debug)]
pub struct Heap {
    config: HeapConfig,
    clock: u64,
    regions: Vec<Region>,
    mature_used: u64,
    objects: ObjectTable,
    tlabs: Vec<Tlab>,
    stats: HeapStats,
}

impl Heap {
    /// Creates a heap laid out per `config`, with zeroed occupancy.
    #[must_use]
    pub fn new(config: HeapConfig) -> Self {
        let regions = (0..config.layout().region_count())
            .map(|_| Region {
                capacity: config.region_bytes(),
                used: 0,
            })
            .collect();
        Heap {
            config,
            clock: 0,
            regions,
            mature_used: 0,
            objects: ObjectTable::new(),
            tlabs: Vec::new(),
            stats: HeapStats::default(),
        }
    }

    /// The heap's configuration.
    #[must_use]
    pub fn config(&self) -> &HeapConfig {
        &self.config
    }

    /// The allocation clock: total bytes ever allocated.
    #[must_use]
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> &HeapStats {
        &self.stats
    }

    /// The nursery region thread `tid` allocates into: region 0 under the
    /// shared layout, the thread's own compartment under heaplets.
    #[must_use]
    pub fn region_of(&self, tid: ThreadId) -> usize {
        tid.index() % self.regions.len()
    }

    /// Attempts to allocate `size` bytes for thread `tid` in its nursery
    /// region.
    ///
    /// On success the allocation clock advances by `size` and the object
    /// is born with the pre-advance clock as its birth stamp. On
    /// [`AllocResult::NurseryFull`] nothing changes; the caller must
    /// collect the region and retry.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or exceeds the region capacity (such an
    /// object could never be allocated even after collection).
    pub fn alloc(&mut self, tid: ThreadId, size: u64) -> AllocResult {
        assert!(size > 0, "zero-sized allocation");
        let region_idx = self.region_of(tid);
        let region = &mut self.regions[region_idx];
        assert!(
            size <= region.capacity,
            "object of {size} B cannot fit a {} B nursery region",
            region.capacity
        );
        if region.used + size > region.capacity {
            return AllocResult::NurseryFull { region: region_idx };
        }
        region.used += size;

        // TLAB modelling: refills are counted (a mutator-cost signal);
        // occupancy above is exact per object.
        if self.tlabs.len() <= tid.index() {
            self.tlabs.resize(tid.index() + 1, Tlab::default());
        }
        let tlab = &mut self.tlabs[tid.index()];
        if tlab.remaining < size {
            tlab.remaining = self.config.tlab_bytes();
            self.stats.tlab_refills += 1;
        }
        tlab.remaining = tlab.remaining.saturating_sub(size);

        // Birth is stamped *after* the object's own bytes: the paper's
        // lifespan metric counts memory allocated to *other* objects
        // between creation and death.
        self.clock += size;
        let id = self.objects.insert(ObjectRecord {
            size,
            birth: self.clock,
            age: 0,
            space: Space::Nursery { region: region_idx },
        });
        self.stats.objects_allocated += 1;
        self.stats.bytes_allocated += size;
        AllocResult::Ok(id)
    }

    /// Records the death of a live object and returns its vitals.
    ///
    /// Dead space is *not* reclaimed here — occupancy shrinks only when a
    /// collection runs, exactly as in a real generational heap.
    ///
    /// # Panics
    ///
    /// Panics if `obj` is stale or already dead.
    pub fn kill(&mut self, obj: ObjectId) -> DeathRecord {
        let rec = self.objects.remove(obj);
        self.stats.objects_died += 1;
        DeathRecord {
            size: rec.size,
            lifespan: self.clock - rec.birth,
            space: rec.space,
        }
    }

    /// Whether `obj` is still live.
    #[must_use]
    pub fn is_live(&self, obj: ObjectId) -> bool {
        self.objects.contains(obj)
    }

    /// Borrows a live object's record.
    ///
    /// # Panics
    ///
    /// Panics on a stale handle.
    #[must_use]
    pub fn object(&self, obj: ObjectId) -> &ObjectRecord {
        self.objects.get(obj)
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.objects.len()
    }

    /// Occupancy of a nursery region in bytes (includes dead-but-not-yet-
    /// collected space).
    #[must_use]
    pub fn region_used(&self, region: usize) -> u64 {
        self.regions[region].used
    }

    /// Capacity of one nursery region.
    #[must_use]
    pub fn region_capacity(&self, region: usize) -> u64 {
        self.regions[region].capacity
    }

    /// Number of nursery regions.
    #[must_use]
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Mature-space occupancy in bytes (live + uncollected dead).
    #[must_use]
    pub fn mature_used(&self) -> u64 {
        self.mature_used
    }

    /// Mature-space capacity in bytes: whatever the nursery regions do
    /// not occupy. Shrinking the nursery (adaptive sizing) grows the
    /// mature space and vice versa, within the fixed total heap.
    #[must_use]
    pub fn mature_capacity(&self) -> u64 {
        let nursery: u64 = self.regions.iter().map(|r| r.capacity).sum();
        self.config.total_bytes().saturating_sub(nursery)
    }

    /// Resizes a nursery region (adaptive sizing, HotSpot's
    /// `AdaptiveSizePolicy`). The new capacity is clamped so that the
    /// region can still hold its current occupancy plus one maximal
    /// object, and so the mature space keeps covering its live bytes.
    ///
    /// Returns the capacity actually applied.
    pub fn resize_region(&mut self, region: usize, new_capacity: u64) -> u64 {
        let others: u64 = self
            .regions
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != region)
            .map(|(_, r)| r.capacity)
            .sum();
        // The mature space must keep room for what already lives there.
        let max_for_mature = self
            .config
            .total_bytes()
            .saturating_sub(others)
            .saturating_sub(self.mature_used);
        let floor = self.regions[region]
            .used
            .max(self.config.total_bytes() / 64)
            .max(1);
        let applied = new_capacity.clamp(floor, max_for_mature.max(floor));
        self.regions[region].capacity = applied;
        applied
    }

    /// Checks internal accounting invariants, panicking with a
    /// description on violation. Intended for tests and debug assertions:
    ///
    /// * live bytes per region never exceed the region's occupancy
    ///   (dead space may linger, never the reverse);
    /// * live mature bytes never exceed mature occupancy;
    /// * occupancies never exceed capacities;
    /// * the allocation clock equals total bytes allocated.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn verify_consistency(&self) {
        for region in 0..self.regions.len() {
            let live: u64 = self
                .objects
                .iter()
                .filter(|(_, r)| r.space == Space::Nursery { region })
                .map(|(_, r)| r.size)
                .sum();
            assert!(
                live <= self.regions[region].used,
                "region {region}: live {live} B exceeds occupancy {} B",
                self.regions[region].used
            );
            assert!(
                self.regions[region].used <= self.regions[region].capacity,
                "region {region}: occupancy exceeds capacity"
            );
        }
        let live_mature: u64 = self
            .objects
            .iter()
            .filter(|(_, r)| r.space == Space::Mature)
            .map(|(_, r)| r.size)
            .sum();
        assert!(
            live_mature <= self.mature_used,
            "mature: live {live_mature} B exceeds occupancy {} B",
            self.mature_used
        );
        assert!(
            self.mature_used <= self.mature_capacity(),
            "mature occupancy exceeds capacity"
        );
        assert_eq!(
            self.clock, self.stats.bytes_allocated,
            "allocation clock diverged from stats"
        );
    }

    /// Non-panicking variant of [`Heap::verify_consistency`] for the
    /// runtime's always-on invariant monitors, extended with object
    /// conservation: every object ever allocated is either still live or
    /// recorded dead.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn check_conservation(&self) -> Result<(), String> {
        let live = self.live_objects() as u64;
        let died = self.stats.objects_died;
        if self.stats.objects_allocated != live + died {
            return Err(format!(
                "object conservation broken: {} allocated != {live} live + {died} died",
                self.stats.objects_allocated
            ));
        }
        for region in 0..self.regions.len() {
            if self.regions[region].used > self.regions[region].capacity {
                return Err(format!(
                    "region {region}: occupancy {} B exceeds capacity {} B",
                    self.regions[region].used, self.regions[region].capacity
                ));
            }
        }
        let live_mature: u64 = self
            .objects
            .iter()
            .filter(|(_, r)| r.space == Space::Mature)
            .map(|(_, r)| r.size)
            .sum();
        if live_mature > self.mature_used {
            return Err(format!(
                "mature: live {live_mature} B exceeds occupancy {} B",
                self.mature_used
            ));
        }
        if self.mature_used > self.mature_capacity() {
            return Err(format!(
                "mature occupancy {} B exceeds capacity {} B",
                self.mature_used,
                self.mature_capacity()
            ));
        }
        if self.clock != self.stats.bytes_allocated {
            return Err(format!(
                "allocation clock {} diverged from {} bytes allocated",
                self.clock, self.stats.bytes_allocated
            ));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Collector interface (used by `scalesim-gc`)
    // ------------------------------------------------------------------

    /// Live objects currently in nursery `region` (the collector's root
    /// survivor set, since the runtime kills objects eagerly on last use).
    #[must_use]
    pub fn nursery_live(&self, region: usize) -> Vec<ObjectId> {
        self.objects.nursery_live(region)
    }

    /// Live mature objects.
    #[must_use]
    pub fn mature_live(&self) -> Vec<ObjectId> {
        self.objects.mature_live()
    }

    /// Ages a nursery survivor in place (it stays in its region).
    ///
    /// # Panics
    ///
    /// Panics if the object is not in the nursery.
    pub fn age_survivor(&mut self, obj: ObjectId) {
        let rec = self.objects.get_mut(obj);
        assert!(
            matches!(rec.space, Space::Nursery { .. }),
            "age_survivor on non-nursery object"
        );
        rec.age = rec.age.saturating_add(1);
    }

    /// Promotes a nursery object into the mature space.
    ///
    /// # Panics
    ///
    /// Panics if the object is not in the nursery, or if promotion would
    /// overflow the mature space (the collector must run a full GC first
    /// and retry; a second overflow is a genuine OutOfMemoryError and the
    /// caller's bug).
    pub fn promote(&mut self, obj: ObjectId) {
        let mature_capacity = self.mature_capacity();
        let rec = self.objects.get_mut(obj);
        assert!(
            matches!(rec.space, Space::Nursery { .. }),
            "promote on non-nursery object"
        );
        assert!(
            self.mature_used + rec.size <= mature_capacity,
            "OutOfMemoryError: mature space overflow"
        );
        rec.space = Space::Mature;
        self.mature_used += rec.size;
    }

    /// Finishes a minor collection of `region`: occupancy becomes the sum
    /// of the survivors left in the region.
    pub fn reset_region_to_survivors(&mut self, region: usize) {
        let survivors: u64 = self
            .objects
            .iter()
            .filter(|(_, r)| r.space == Space::Nursery { region })
            .map(|(_, r)| r.size)
            .sum();
        self.regions[region].used = survivors;
    }

    /// Finishes a full collection: mature occupancy becomes the sum of
    /// live mature objects (compaction squeezes out all dead space).
    pub fn compact_mature(&mut self) {
        self.mature_used = self
            .objects
            .iter()
            .filter(|(_, r)| r.space == Space::Mature)
            .map(|(_, r)| r.size)
            .sum();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NurseryLayout;

    fn tid(n: usize) -> ThreadId {
        ThreadId::new(n)
    }

    fn small_heap() -> Heap {
        // 3 KiB heap: 1 KiB nursery, 2 KiB mature
        Heap::new(HeapConfig::new(3 << 10, 1.0 / 3.0, NurseryLayout::Shared))
    }

    fn ok(r: AllocResult) -> ObjectId {
        match r {
            AllocResult::Ok(id) => id,
            AllocResult::NurseryFull { region } => panic!("unexpected full region {region}"),
        }
    }

    #[test]
    fn clock_advances_by_allocation_size() {
        let mut h = small_heap();
        ok(h.alloc(tid(0), 100));
        ok(h.alloc(tid(1), 50));
        assert_eq!(h.clock(), 150);
        assert_eq!(h.stats().bytes_allocated, 150);
        assert_eq!(h.stats().objects_allocated, 2);
    }

    #[test]
    fn conservation_holds_through_alloc_kill_and_promote() {
        let mut h = small_heap();
        assert_eq!(h.check_conservation(), Ok(()));
        let a = ok(h.alloc(tid(0), 200));
        let b = ok(h.alloc(tid(0), 300));
        assert_eq!(h.check_conservation(), Ok(()));
        h.kill(b);
        assert_eq!(h.check_conservation(), Ok(()));
        h.age_survivor(a);
        h.promote(a);
        h.reset_region_to_survivors(0);
        assert_eq!(h.check_conservation(), Ok(()));
    }

    #[test]
    fn conservation_detects_lost_objects() {
        let mut h = small_heap();
        ok(h.alloc(tid(0), 100));
        // Simulate accounting drift: a death recorded without an object
        // actually dying, as a corrupted collector would produce.
        h.stats.objects_died += 1;
        let err = h.check_conservation().unwrap_err();
        assert!(err.contains("conservation"), "{err}");
    }

    #[test]
    fn lifespan_is_bytes_allocated_between_birth_and_death() {
        let mut h = small_heap();
        let a = ok(h.alloc(tid(0), 100));
        ok(h.alloc(tid(1), 300)); // other thread allocates
        let death = h.kill(a);
        assert_eq!(death.lifespan, 300);
        assert_eq!(death.size, 100);
        assert_eq!(h.stats().objects_died, 1);
    }

    #[test]
    fn nursery_full_when_region_exhausted() {
        let mut h = small_heap(); // 1 KiB region
        ok(h.alloc(tid(0), 600));
        match h.alloc(tid(0), 600) {
            AllocResult::NurseryFull { region } => assert_eq!(region, 0),
            AllocResult::Ok(_) => panic!("should not fit"),
        }
        // occupancy unchanged by the failed attempt
        assert_eq!(h.region_used(0), 600);
    }

    #[test]
    fn dead_space_is_not_reclaimed_until_collection() {
        let mut h = small_heap();
        let a = ok(h.alloc(tid(0), 600));
        h.kill(a);
        assert_eq!(h.region_used(0), 600, "dead space still occupies eden");
        h.reset_region_to_survivors(0);
        assert_eq!(h.region_used(0), 0);
    }

    #[test]
    fn survivors_keep_region_occupancy_after_reset() {
        let mut h = small_heap();
        let a = ok(h.alloc(tid(0), 200));
        let b = ok(h.alloc(tid(0), 300));
        h.kill(b);
        h.reset_region_to_survivors(0);
        assert_eq!(h.region_used(0), 200);
        assert!(h.is_live(a));
    }

    #[test]
    fn promote_moves_bytes_to_mature() {
        let mut h = small_heap();
        let a = ok(h.alloc(tid(0), 200));
        h.age_survivor(a);
        assert_eq!(h.object(a).age, 1);
        h.promote(a);
        assert_eq!(h.mature_used(), 200);
        assert_eq!(h.object(a).space, Space::Mature);
        h.reset_region_to_survivors(0);
        assert_eq!(h.region_used(0), 0);
    }

    #[test]
    fn compact_mature_drops_dead_bytes() {
        let mut h = small_heap();
        let a = ok(h.alloc(tid(0), 200));
        let b = ok(h.alloc(tid(0), 100));
        h.promote(a);
        h.promote(b);
        h.kill(a);
        assert_eq!(h.mature_used(), 300, "dead mature space lingers");
        h.compact_mature();
        assert_eq!(h.mature_used(), 100);
    }

    #[test]
    #[should_panic(expected = "OutOfMemoryError")]
    fn promotion_overflow_panics() {
        // mature = 2 KiB; promote 3 objects of 1 KiB ≫ capacity
        let mut h = Heap::new(
            HeapConfig::new(6 << 10, 2.0 / 3.0, NurseryLayout::Shared), // 4 KiB nursery, 2 KiB mature
        );
        for _ in 0..3 {
            let o = ok(h.alloc(tid(0), 1 << 10));
            h.promote(o);
        }
    }

    #[test]
    fn heaplets_route_threads_to_their_regions() {
        let mut h = Heap::new(HeapConfig::new(
            8 << 10,
            0.5,
            NurseryLayout::Heaplets { count: 4 },
        ));
        assert_eq!(h.region_count(), 4);
        assert_eq!(h.region_of(tid(1)), 1);
        assert_eq!(h.region_of(tid(5)), 1, "threads wrap around regions");
        ok(h.alloc(tid(1), 100));
        assert_eq!(h.region_used(1), 100);
        assert_eq!(h.region_used(0), 0);
    }

    #[test]
    fn tlab_refills_are_counted() {
        let mut h =
            Heap::new(HeapConfig::new(1 << 20, 0.5, NurseryLayout::Shared).with_tlab_bytes(256));
        for _ in 0..4 {
            ok(h.alloc(tid(0), 100));
        }
        // 100+100 fits one 256B TLAB; allocations 1, 3 trigger refills
        assert_eq!(h.stats().tlab_refills, 2);
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_panics() {
        let mut h = small_heap();
        let _ = h.alloc(tid(0), 0);
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn oversized_alloc_panics() {
        let mut h = small_heap();
        let _ = h.alloc(tid(0), 64 << 10);
    }

    #[test]
    fn verify_consistency_passes_through_a_lifecycle() {
        let mut h = small_heap();
        let a = ok(h.alloc(tid(0), 200));
        let b = ok(h.alloc(tid(0), 100));
        h.verify_consistency();
        h.kill(b);
        h.verify_consistency();
        h.promote(a);
        h.reset_region_to_survivors(0);
        h.verify_consistency();
        h.compact_mature();
        h.verify_consistency();
    }

    #[test]
    fn resize_region_trades_with_mature_space() {
        let mut h = small_heap(); // 1 KiB nursery, 2 KiB mature
        assert_eq!(h.mature_capacity(), 2 << 10);
        let applied = h.resize_region(0, 1536);
        assert_eq!(applied, 1536);
        assert_eq!(h.region_capacity(0), 1536);
        assert_eq!(h.mature_capacity(), (3 << 10) - 1536);
    }

    #[test]
    fn resize_region_floors_at_current_occupancy() {
        let mut h = Heap::new(HeapConfig::new(1 << 20, 0.5, NurseryLayout::Shared));
        ok(h.alloc(tid(0), 200 << 10));
        let applied = h.resize_region(0, 1);
        assert_eq!(applied, 200 << 10, "cannot shrink below live occupancy");
    }

    #[test]
    fn resize_region_respects_mature_occupancy() {
        let mut h = small_heap(); // 3 KiB total
        let a = ok(h.alloc(tid(0), 1024));
        h.promote(a);
        h.reset_region_to_survivors(0);
        // growing the nursery to the full heap would strand the 1 KiB of
        // mature data; the resize is clamped to leave room for it
        let applied = h.resize_region(0, 10 << 10);
        assert!(applied <= (3 << 10) - 1024);
        assert!(h.mature_capacity() >= h.mature_used());
    }

    #[test]
    fn nursery_live_lists_only_that_region() {
        let mut h = Heap::new(HeapConfig::new(
            8 << 10,
            0.5,
            NurseryLayout::Heaplets { count: 2 },
        ));
        let a = ok(h.alloc(tid(0), 64));
        let b = ok(h.alloc(tid(1), 64));
        assert_eq!(h.nursery_live(0), vec![a]);
        assert_eq!(h.nursery_live(1), vec![b]);
        assert!(h.mature_live().is_empty());
    }
}
