//! Object identity and the live-object table.
//!
//! The heap tracks every live object's size, birth stamp on the allocation
//! clock, age (minor collections survived) and the space it occupies. The
//! table is a slab with generation-tagged handles, so a stale [`ObjectId`]
//! (used after the object died) is caught deterministically rather than
//! corrupting another object's record.

use std::fmt;

/// Which space an object currently occupies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Young generation, within the given nursery region.
    Nursery {
        /// Region index (0 under the shared layout; the owner thread's
        /// compartment under heaplets).
        region: usize,
    },
    /// Old generation.
    Mature,
}

/// Handle to a live object. Tagged so reuse of a slab slot invalidates
/// old handles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjectId {
    slot: u32,
    tag: u32,
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}#{}", self.slot, self.tag)
    }
}

/// A live object's record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectRecord {
    /// Object size in bytes.
    pub size: u64,
    /// Allocation-clock reading at birth (total bytes allocated VM-wide
    /// before this object).
    pub birth: u64,
    /// Minor collections survived.
    pub age: u8,
    /// Current space.
    pub space: Space,
}

#[derive(Debug, Clone)]
struct Slot {
    tag: u32,
    record: Option<ObjectRecord>,
}

/// Slab of live objects with tagged handles and O(1) alloc/free.
///
/// # Examples
///
/// ```
/// use scalesim_heap::{ObjectRecord, ObjectTable, Space};
///
/// let mut table = ObjectTable::new();
/// let id = table.insert(ObjectRecord {
///     size: 64, birth: 0, age: 0, space: Space::Nursery { region: 0 },
/// });
/// assert_eq!(table.get(id).size, 64);
/// let dead = table.remove(id);
/// assert_eq!(dead.size, 64);
/// assert!(!table.contains(id));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ObjectTable {
    slots: Vec<Slot>,
    free: Vec<u32>,
    live: usize,
}

impl ObjectTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        ObjectTable::default()
    }

    /// Number of live objects.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no objects are live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Inserts a record, returning its handle.
    pub fn insert(&mut self, record: ObjectRecord) -> ObjectId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.record.is_none());
            s.record = Some(record);
            ObjectId { slot, tag: s.tag }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("object table overflow");
            self.slots.push(Slot {
                tag: 0,
                record: Some(record),
            });
            ObjectId { slot, tag: 0 }
        }
    }

    /// Whether `id` refers to a live object.
    #[must_use]
    pub fn contains(&self, id: ObjectId) -> bool {
        self.slots
            .get(id.slot as usize)
            .is_some_and(|s| s.tag == id.tag && s.record.is_some())
    }

    /// Borrows a live object's record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or was never issued.
    #[must_use]
    pub fn get(&self, id: ObjectId) -> &ObjectRecord {
        let s = &self.slots[id.slot as usize];
        assert_eq!(s.tag, id.tag, "stale handle {id}");
        s.record
            .as_ref()
            .unwrap_or_else(|| panic!("dead object {id}"))
    }

    /// Mutably borrows a live object's record.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or was never issued.
    pub fn get_mut(&mut self, id: ObjectId) -> &mut ObjectRecord {
        let s = &mut self.slots[id.slot as usize];
        assert_eq!(s.tag, id.tag, "stale handle {id}");
        s.record
            .as_mut()
            .unwrap_or_else(|| panic!("dead object {id}"))
    }

    /// Removes a live object, returning its final record. The slot is
    /// recycled with a bumped tag, invalidating the handle.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale or already removed.
    pub fn remove(&mut self, id: ObjectId) -> ObjectRecord {
        let s = &mut self.slots[id.slot as usize];
        assert_eq!(s.tag, id.tag, "stale handle {id}");
        let rec = s
            .record
            .take()
            .unwrap_or_else(|| panic!("double-free of {id}"));
        s.tag = s.tag.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        rec
    }

    /// Iterates over `(handle, record)` for every live object.
    ///
    /// Iteration order is slab order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (ObjectId, &ObjectRecord)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.record.as_ref().map(|r| {
                (
                    ObjectId {
                        slot: i as u32,
                        tag: s.tag,
                    },
                    r,
                )
            })
        })
    }

    /// Handles of live objects in the given nursery region.
    #[must_use]
    pub fn nursery_live(&self, region: usize) -> Vec<ObjectId> {
        self.iter()
            .filter(|(_, r)| r.space == Space::Nursery { region })
            .map(|(id, _)| id)
            .collect()
    }

    /// Handles of live mature objects.
    #[must_use]
    pub fn mature_live(&self) -> Vec<ObjectId> {
        self.iter()
            .filter(|(_, r)| r.space == Space::Mature)
            .map(|(id, _)| id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(size: u64, region: usize) -> ObjectRecord {
        ObjectRecord {
            size,
            birth: 0,
            age: 0,
            space: Space::Nursery { region },
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(10, 0));
        let b = t.insert(rec(20, 0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(a).size, 10);
        assert_eq!(t.get(b).size, 20);
        assert_eq!(t.remove(a).size, 10);
        assert_eq!(t.len(), 1);
        assert!(!t.contains(a));
        assert!(t.contains(b));
    }

    #[test]
    fn slots_recycle_with_fresh_tags() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(10, 0));
        t.remove(a);
        let b = t.insert(rec(30, 0));
        assert_ne!(a, b, "recycled slot must carry a new tag");
        assert!(!t.contains(a));
        assert!(t.contains(b));
    }

    #[test]
    #[should_panic(expected = "stale handle")]
    fn stale_handle_get_panics() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(10, 0));
        t.remove(a);
        t.insert(rec(30, 0)); // reuses the slot
        let _ = t.get(a);
    }

    #[test]
    #[should_panic(expected = "double-free")]
    fn double_remove_panics() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(10, 0));
        t.remove(a);
        // the tag changed, so this is stale... re-create a same-tag case:
        // removing twice without reuse hits the double-free branch only if
        // tags matched, so craft it via a fresh slot's id kept around.
        let b = t.insert(rec(5, 0));
        t.remove(b);
        // b's slot tag bumped; removing b again is stale:
        // to exercise double-free we need an empty slot with matching tag,
        // which cannot happen through the public API — stale covers it.
        let s = &mut t.slots[b_slot(b)];
        s.tag = s.tag.wrapping_sub(1); // simulate internal corruption
        t.remove(b);
    }

    fn b_slot(id: ObjectId) -> usize {
        id.slot as usize
    }

    #[test]
    fn age_mutation_via_get_mut() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(10, 0));
        t.get_mut(a).age += 1;
        t.get_mut(a).space = Space::Mature;
        assert_eq!(t.get(a).age, 1);
        assert_eq!(t.get(a).space, Space::Mature);
    }

    #[test]
    fn per_space_queries() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(10, 0));
        let b = t.insert(rec(20, 1));
        let c = t.insert(rec(30, 0));
        t.get_mut(b).space = Space::Mature;

        let r0 = t.nursery_live(0);
        assert_eq!(r0, vec![a, c]);
        assert!(t.nursery_live(1).is_empty());
        assert_eq!(t.mature_live(), vec![b]);
    }

    #[test]
    fn iter_is_deterministic_slab_order() {
        let mut t = ObjectTable::new();
        let ids: Vec<_> = (0..5).map(|i| t.insert(rec(i, 0))).collect();
        t.remove(ids[2]);
        let seen: Vec<_> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(seen, vec![ids[0], ids[1], ids[3], ids[4]]);
    }

    #[test]
    fn display_of_object_id() {
        let mut t = ObjectTable::new();
        let a = t.insert(rec(1, 0));
        assert_eq!(a.to_string(), "obj0#0");
    }
}
