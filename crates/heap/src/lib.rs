//! # scalesim-heap
//!
//! Generational managed-heap model: TLAB bump allocation, nursery regions,
//! a mature space, and the VM-wide **allocation clock**.
//!
//! The paper measures object lifespan "by observing the amount of heap
//! memory that has been allocated to other objects between its creation
//! and its death" (§II-A). [`Heap::clock`] is that measure: every
//! allocation advances it by the object's size, and [`Heap::kill`] returns
//! the object's lifespan as the clock delta since birth.
//!
//! Occupancy follows real generational-heap semantics: dead space lingers
//! until a collection ([`Heap::reset_region_to_survivors`] /
//! [`Heap::compact_mature`]) reclaims it. The nursery is either one shared
//! region (HotSpot's layout, the paper's measured configuration) or
//! per-thread *heaplets* ([`NurseryLayout::Heaplets`]) implementing the
//! paper's compartmentalized-heap future-work proposal.
//!
//! ```
//! use scalesim_heap::{AllocResult, Heap, HeapConfig, HeapSizer, NurseryLayout};
//! use scalesim_sched::ThreadId;
//!
//! // The paper sizes heaps at 3x the minimum requirement.
//! let total = HeapSizer::three_times_min(1 << 20);
//! let mut heap = Heap::new(HeapConfig::new(total, 1.0 / 3.0, NurseryLayout::Shared));
//! let AllocResult::Ok(obj) = heap.alloc(ThreadId::new(0), 256) else { unreachable!() };
//! assert!(heap.is_live(obj));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
#[allow(clippy::module_inception)]
mod heap;
mod object;

pub use config::{HeapConfig, HeapSizer, NurseryLayout};
pub use heap::{AllocResult, DeathRecord, Heap, HeapStats};
pub use object::{ObjectId, ObjectRecord, ObjectTable, Space};
