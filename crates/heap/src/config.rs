//! Heap sizing configuration.
//!
//! The paper's methodology (§II-C) sizes the heap at **three times the
//! minimum heap requirement** of each benchmark — "a common approach that
//! has been used to evaluate GC performance". [`HeapSizer`] encodes that
//! rule; [`HeapConfig`] carries the resulting layout.

use std::fmt;

/// How the nursery is organized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NurseryLayout {
    /// One nursery shared by every thread (HotSpot's default; the paper's
    /// measured configuration).
    Shared,
    /// One private nursery *heaplet* per mutator thread — the paper's
    /// second future-work proposal ("compartmentalized heap to isolate
    /// objects from lifetime interference").
    Heaplets {
        /// Number of per-thread compartments (= mutator thread count).
        count: usize,
    },
}

impl NurseryLayout {
    /// Number of independent nursery regions under this layout.
    #[must_use]
    pub fn region_count(self) -> usize {
        match self {
            NurseryLayout::Shared => 1,
            NurseryLayout::Heaplets { count } => count,
        }
    }
}

/// Sizes and layout of a simulated generational heap.
///
/// # Examples
///
/// ```
/// use scalesim_heap::{HeapConfig, NurseryLayout};
///
/// let cfg = HeapConfig::new(96 << 20, 1.0 / 3.0, NurseryLayout::Shared);
/// assert_eq!(cfg.nursery_bytes(), 32 << 20);
/// assert_eq!(cfg.mature_bytes(), 64 << 20);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeapConfig {
    total_bytes: u64,
    nursery_fraction: f64,
    layout: NurseryLayout,
    /// Fraction of a nursery region reserved for survivors between minor
    /// collections (HotSpot survivor spaces); overflow promotes directly.
    survivor_fraction: f64,
    /// Survivor age at which an object is tenured into the mature space.
    tenure_threshold: u8,
    /// TLAB (thread-local allocation buffer) size in bytes.
    tlab_bytes: u64,
}

impl HeapConfig {
    /// Creates a config with the given total size, nursery fraction and
    /// layout, using HotSpot-like defaults for the survivor fraction
    /// (10 %), the tenuring threshold (2 collections survived), and the
    /// TLAB size (64 KiB).
    ///
    /// # Panics
    ///
    /// Panics if `total_bytes` is zero or `nursery_fraction` is outside
    /// `(0, 1)`.
    #[must_use]
    pub fn new(total_bytes: u64, nursery_fraction: f64, layout: NurseryLayout) -> Self {
        assert!(total_bytes > 0, "heap must have nonzero size");
        assert!(
            nursery_fraction > 0.0 && nursery_fraction < 1.0,
            "nursery fraction must be in (0,1), got {nursery_fraction}"
        );
        HeapConfig {
            total_bytes,
            nursery_fraction,
            layout,
            survivor_fraction: 0.10,
            tenure_threshold: 2,
            tlab_bytes: 64 << 10,
        }
    }

    /// Overrides the survivor-space fraction of each nursery region.
    ///
    /// # Panics
    ///
    /// Panics if `f` is outside `(0, 1)`.
    #[must_use]
    pub fn with_survivor_fraction(mut self, f: f64) -> Self {
        assert!(f > 0.0 && f < 1.0, "survivor fraction must be in (0,1)");
        self.survivor_fraction = f;
        self
    }

    /// Overrides the tenuring threshold.
    #[must_use]
    pub fn with_tenure_threshold(mut self, ages: u8) -> Self {
        self.tenure_threshold = ages;
        self
    }

    /// Overrides the TLAB size.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    #[must_use]
    pub fn with_tlab_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "TLAB size must be nonzero");
        self.tlab_bytes = bytes;
        self
    }

    /// Total heap size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes given to the nursery (young generation) overall.
    #[must_use]
    pub fn nursery_bytes(&self) -> u64 {
        (self.total_bytes as f64 * self.nursery_fraction) as u64
    }

    /// Bytes of one nursery region (the whole nursery when shared, a
    /// per-thread slice under heaplets).
    #[must_use]
    pub fn region_bytes(&self) -> u64 {
        self.nursery_bytes() / self.layout.region_count() as u64
    }

    /// Bytes given to the mature (old) generation.
    #[must_use]
    pub fn mature_bytes(&self) -> u64 {
        self.total_bytes - self.nursery_bytes()
    }

    /// The nursery layout.
    #[must_use]
    pub fn layout(&self) -> NurseryLayout {
        self.layout
    }

    /// Survivor fraction of each region.
    #[must_use]
    pub fn survivor_fraction(&self) -> f64 {
        self.survivor_fraction
    }

    /// Tenuring threshold in survived collections.
    #[must_use]
    pub fn tenure_threshold(&self) -> u8 {
        self.tenure_threshold
    }

    /// TLAB size in bytes.
    #[must_use]
    pub fn tlab_bytes(&self) -> u64 {
        self.tlab_bytes
    }
}

impl fmt::Display for HeapConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "heap {} MiB (nursery {} MiB x {} region(s), mature {} MiB)",
            self.total_bytes >> 20,
            self.region_bytes() >> 20,
            self.layout.region_count(),
            self.mature_bytes() >> 20
        )
    }
}

/// The paper's heap-sizing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapSizer;

impl HeapSizer {
    /// "We then ran these applications by setting the heap size to three
    /// times the minimum heap requirements" (§II-C).
    #[must_use]
    pub fn three_times_min(min_heap_bytes: u64) -> u64 {
        min_heap_bytes.saturating_mul(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizer_triples() {
        assert_eq!(HeapSizer::three_times_min(32 << 20), 96 << 20);
    }

    #[test]
    fn split_adds_up() {
        let cfg = HeapConfig::new(90, 1.0 / 3.0, NurseryLayout::Shared);
        assert_eq!(cfg.nursery_bytes() + cfg.mature_bytes(), 90);
        assert_eq!(cfg.nursery_bytes(), 30);
    }

    #[test]
    fn heaplets_split_the_nursery() {
        let cfg = HeapConfig::new(120, 0.5, NurseryLayout::Heaplets { count: 4 });
        assert_eq!(cfg.nursery_bytes(), 60);
        assert_eq!(cfg.region_bytes(), 15);
        assert_eq!(cfg.layout().region_count(), 4);
    }

    #[test]
    fn defaults_and_overrides() {
        let cfg = HeapConfig::new(100, 0.3, NurseryLayout::Shared)
            .with_survivor_fraction(0.2)
            .with_tenure_threshold(5)
            .with_tlab_bytes(1024);
        assert_eq!(cfg.survivor_fraction(), 0.2);
        assert_eq!(cfg.tenure_threshold(), 5);
        assert_eq!(cfg.tlab_bytes(), 1024);
    }

    #[test]
    #[should_panic(expected = "nonzero size")]
    fn zero_heap_panics() {
        let _ = HeapConfig::new(0, 0.3, NurseryLayout::Shared);
    }

    #[test]
    #[should_panic(expected = "nursery fraction")]
    fn bad_fraction_panics() {
        let _ = HeapConfig::new(100, 1.5, NurseryLayout::Shared);
    }

    #[test]
    fn display_mentions_regions() {
        let cfg = HeapConfig::new(96 << 20, 1.0 / 3.0, NurseryLayout::Heaplets { count: 8 });
        assert!(cfg.to_string().contains("8 region(s)"));
    }
}
