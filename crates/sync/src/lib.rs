//! # scalesim-sync
//!
//! Simulated Java monitor (lock) subsystem with a DTrace-style profiler.
//!
//! The paper profiles application-level lock usage with DTrace and reports
//! two per-application curves as the thread count grows: total lock
//! **acquisitions** (Figure 1a) and **instances of contention** (Figure
//! 1b) — an acquisition attempt that finds the lock already held. This
//! crate reproduces those observables exactly: every [`LockTable::acquire`]
//! either takes the monitor on the fast path or enqueues the thread (one
//! recorded contention), and every release hands the monitor to the oldest
//! waiter. [`LockTable::report`] yields the per-class and global counts the
//! figures plot.
//!
//! ```
//! use scalesim_sync::{AcquireOutcome, LockTable};
//! use scalesim_sched::ThreadId;
//! use scalesim_simkit::SimTime;
//!
//! let mut locks = LockTable::new();
//! let queue = locks.create("workqueue");
//! let (a, b) = (ThreadId::new(0), ThreadId::new(1));
//! locks.acquire(queue, a, SimTime::ZERO);
//! assert_eq!(locks.acquire(queue, b, SimTime::from_nanos(5)), AcquireOutcome::Contended);
//! let grant = locks.release(queue, a, SimTime::from_nanos(9)).unwrap();
//! assert_eq!(grant.next, b);
//! assert_eq!(locks.report().total.contentions, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod monitor;
mod table;

pub use monitor::{AcquireOutcome, Grant, MonitorId, MonitorStats};
pub use table::{LockReport, LockTable};
