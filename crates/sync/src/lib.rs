//! # scalesim-sync
//!
//! Simulated Java monitor (lock) subsystem with a DTrace-style profiler.
//!
//! The paper profiles application-level lock usage with DTrace and reports
//! two per-application curves as the thread count grows: total lock
//! **acquisitions** (Figure 1a) and **instances of contention** (Figure
//! 1b) — an acquisition attempt that finds the lock already held. This
//! crate reproduces those observables exactly: every [`LockTable::acquire`]
//! either takes the monitor on the fast path or enqueues the thread (one
//! recorded contention), and every release hands the monitor to a waiter.
//! [`LockTable::report`] yields the per-class and global counts the
//! figures plot.
//!
//! *Which* waiter a release hands the monitor to — and at what modeled
//! cost — is a pluggable [`LockAlgorithm`]: the paper-calibrated FIFO
//! baseline, an MCS/CLH-style queue lock, or a Malthusian
//! concurrency-restricting lock (see [`LockAlg`] and the [`alg`] module
//! docs).
//!
//! ```
//! use scalesim_sync::{AcquireOutcome, LockTable};
//! use scalesim_sched::ThreadId;
//! use scalesim_simkit::SimTime;
//!
//! let mut locks = LockTable::new();
//! let queue = locks.create("workqueue");
//! let (a, b) = (ThreadId::new(0), ThreadId::new(1));
//! locks.acquire(queue, a, SimTime::ZERO).unwrap();
//! assert_eq!(
//!     locks.acquire(queue, b, SimTime::from_nanos(5)),
//!     Ok(AcquireOutcome::Contended)
//! );
//! let grant = locks.release(queue, a, SimTime::from_nanos(9)).unwrap().unwrap();
//! assert_eq!(grant.next, b);
//! assert_eq!(locks.report().total.contentions, 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alg;
mod monitor;
mod table;

pub use alg::{FifoLock, LockAlg, LockAlgorithm, LockMisuse, MalthusianLock, McsLock};
pub use monitor::{AcquireOutcome, Grant, MonitorId, MonitorStats};
pub use table::{LockReport, LockTable};
