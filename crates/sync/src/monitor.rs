//! Java-style monitors with per-lock statistics.
//!
//! A [`Monitor`] models an object monitor under the JVM's inflated-lock
//! slow path: one owner, a FIFO wait queue, and direct handoff on release.
//! Every acquisition and every *contention instance* (an acquire attempt
//! that finds the monitor held — the quantity DTrace's lockstat probes
//! count, and the y-axis of the paper's Figure 1b) is recorded.

use std::collections::VecDeque;
use std::fmt;

use scalesim_sched::ThreadId;
use scalesim_simkit::{SimDuration, SimTime};

/// Identifies a monitor within a [`LockTable`](crate::LockTable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonitorId(pub(crate) usize);

impl MonitorId {
    /// The raw index within the owning table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor{}", self.0)
    }
}

/// Outcome of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The monitor was free; the caller now owns it (fast path).
    Acquired,
    /// The monitor was held; the caller was enqueued and must block until
    /// a release hands the monitor over.
    Contended,
}

/// A completed handoff returned by [`LockTable::release`].
///
/// [`LockTable::release`]: crate::LockTable::release
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The thread that now owns the monitor.
    pub next: ThreadId,
    /// How long that thread waited in the queue.
    pub waited: SimDuration,
}

/// Cumulative statistics for one monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorStats {
    /// Successful lock acquisitions (fast path + granted handoffs) —
    /// Figure 1a's quantity.
    pub acquisitions: u64,
    /// Acquire attempts that found the monitor held — Figure 1b's
    /// quantity.
    pub contentions: u64,
    /// Total time threads spent waiting in this monitor's queue.
    pub total_wait: SimDuration,
    /// Longest single wait.
    pub max_wait: SimDuration,
    /// Total time the monitor was held.
    pub total_hold: SimDuration,
}

impl MonitorStats {
    /// Fraction of acquisitions that were contended (0 when never
    /// acquired).
    #[must_use]
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contentions as f64 / self.acquisitions as f64
        }
    }

    /// Adds another monitor's statistics into this one (class and global
    /// aggregation).
    pub fn merge(&mut self, other: &MonitorStats) {
        self.acquisitions += other.acquisitions;
        self.contentions += other.contentions;
        self.total_wait += other.total_wait;
        self.max_wait = self.max_wait.max(other.max_wait);
        self.total_hold += other.total_hold;
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Monitor {
    pub class: String,
    owner: Option<ThreadId>,
    held_since: SimTime,
    waiters: VecDeque<(ThreadId, SimTime)>,
    pub stats: MonitorStats,
}

impl Monitor {
    pub fn new(class: &str) -> Self {
        Monitor {
            class: class.to_owned(),
            owner: None,
            held_since: SimTime::ZERO,
            waiters: VecDeque::new(),
            stats: MonitorStats::default(),
        }
    }

    pub fn owner(&self) -> Option<ThreadId> {
        self.owner
    }

    /// When the current owner took the monitor (meaningless if unowned).
    pub fn held_since(&self) -> SimTime {
        self.held_since
    }

    pub fn queue_len(&self) -> usize {
        self.waiters.len()
    }

    pub fn is_waiting(&self, tid: ThreadId) -> bool {
        self.waiters.iter().any(|&(w, _)| w == tid)
    }

    /// Attempts to acquire for `tid` at `now`.
    ///
    /// # Panics
    ///
    /// Panics on re-entrant acquisition (the workload models never
    /// re-enter a monitor they hold) and on double-enqueue.
    pub fn acquire(&mut self, tid: ThreadId, now: SimTime) -> AcquireOutcome {
        assert_ne!(self.owner, Some(tid), "{tid} re-entered a held monitor");
        match self.owner {
            None => {
                self.owner = Some(tid);
                self.held_since = now;
                self.stats.acquisitions += 1;
                AcquireOutcome::Acquired
            }
            Some(_) => {
                assert!(
                    !self.waiters.iter().any(|&(w, _)| w == tid),
                    "{tid} enqueued twice on one monitor"
                );
                self.waiters.push_back((tid, now));
                self.stats.contentions += 1;
                AcquireOutcome::Contended
            }
        }
    }

    /// Releases the monitor, handing it directly to the oldest waiter if
    /// one exists.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not the current owner.
    pub fn release(&mut self, tid: ThreadId, now: SimTime) -> Option<Grant> {
        assert_eq!(
            self.owner,
            Some(tid),
            "{tid} released a monitor it does not own"
        );
        self.stats.total_hold += now.saturating_since(self.held_since);
        match self.waiters.pop_front() {
            None => {
                self.owner = None;
                None
            }
            Some((next, enqueued_at)) => {
                let waited = now.saturating_since(enqueued_at);
                self.owner = Some(next);
                self.held_since = now;
                self.stats.acquisitions += 1;
                self.stats.total_wait += waited;
                self.stats.max_wait = self.stats.max_wait.max(waited);
                Some(Grant { next, waited })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn tid(n: usize) -> ThreadId {
        ThreadId::new(n)
    }

    #[test]
    fn fast_path_acquire_release() {
        let mut m = Monitor::new("q");
        assert_eq!(m.acquire(tid(0), t(0)), AcquireOutcome::Acquired);
        assert_eq!(m.owner(), Some(tid(0)));
        assert_eq!(m.release(tid(0), t(10)), None);
        assert_eq!(m.owner(), None);
        assert_eq!(m.stats.acquisitions, 1);
        assert_eq!(m.stats.contentions, 0);
        assert_eq!(m.stats.total_hold, SimDuration::from_nanos(10));
    }

    #[test]
    fn contended_acquire_queues_fifo_and_hands_off() {
        let mut m = Monitor::new("q");
        m.acquire(tid(0), t(0));
        assert_eq!(m.acquire(tid(1), t(2)), AcquireOutcome::Contended);
        assert_eq!(m.acquire(tid(2), t(3)), AcquireOutcome::Contended);
        assert_eq!(m.queue_len(), 2);
        assert_eq!(m.stats.contentions, 2);

        let g = m.release(tid(0), t(10)).expect("handoff");
        assert_eq!(g.next, tid(1));
        assert_eq!(g.waited, SimDuration::from_nanos(8));
        assert_eq!(m.owner(), Some(tid(1)));
        assert_eq!(m.stats.acquisitions, 2);

        let g = m.release(tid(1), t(20)).expect("handoff");
        assert_eq!(g.next, tid(2));
        assert_eq!(g.waited, SimDuration::from_nanos(17));
        assert_eq!(m.release(tid(2), t(25)), None);
        assert_eq!(m.stats.total_wait, SimDuration::from_nanos(8 + 17));
        assert_eq!(m.stats.max_wait, SimDuration::from_nanos(17));
    }

    #[test]
    #[should_panic(expected = "re-entered")]
    fn reentrant_acquire_panics() {
        let mut m = Monitor::new("q");
        m.acquire(tid(0), t(0));
        m.acquire(tid(0), t(1));
    }

    #[test]
    #[should_panic(expected = "does not own")]
    fn release_by_non_owner_panics() {
        let mut m = Monitor::new("q");
        m.acquire(tid(0), t(0));
        m.release(tid(1), t(1));
    }

    #[test]
    #[should_panic(expected = "enqueued twice")]
    fn double_enqueue_panics() {
        let mut m = Monitor::new("q");
        m.acquire(tid(0), t(0));
        m.acquire(tid(1), t(1));
        m.acquire(tid(1), t(2));
    }

    #[test]
    fn contention_rate() {
        let mut s = MonitorStats::default();
        assert_eq!(s.contention_rate(), 0.0);
        s.acquisitions = 10;
        s.contentions = 3;
        assert!((s.contention_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = MonitorStats {
            acquisitions: 1,
            contentions: 1,
            total_wait: SimDuration::from_nanos(5),
            max_wait: SimDuration::from_nanos(5),
            total_hold: SimDuration::from_nanos(9),
        };
        let b = MonitorStats {
            acquisitions: 2,
            contentions: 0,
            total_wait: SimDuration::from_nanos(1),
            max_wait: SimDuration::from_nanos(1),
            total_hold: SimDuration::from_nanos(2),
        };
        a.merge(&b);
        assert_eq!(a.acquisitions, 3);
        assert_eq!(a.max_wait, SimDuration::from_nanos(5));
        assert_eq!(a.total_hold, SimDuration::from_nanos(11));
    }

    #[test]
    fn monitor_id_display() {
        assert_eq!(MonitorId(4).to_string(), "monitor4");
        assert_eq!(MonitorId(4).index(), 4);
    }
}
