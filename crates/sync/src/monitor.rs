//! Java-style monitors with per-lock statistics.
//!
//! A [`Monitor`] models an object monitor under the JVM's inflated-lock
//! slow path: one owner, a wait queue, and direct handoff on release.
//! Every acquisition and every *contention instance* (an acquire attempt
//! that finds the monitor held — the quantity DTrace's lockstat probes
//! count, and the y-axis of the paper's Figure 1b) is recorded.
//!
//! The handoff discipline — who waits where and which waiter a release
//! hands the monitor to — is a pluggable [`LockAlgorithm`]
//! (see [`crate::alg`]). Statistics are accrued here in the wrapper,
//! derived purely from acquire outcomes and release grants, so every
//! algorithm shares one arithmetic path and the counters stay
//! comparable across algorithms.

use std::fmt;

use scalesim_sched::ThreadId;
use scalesim_simkit::{SimDuration, SimTime};

use crate::alg::{instantiate, FifoLock, LockAlg, LockAlgorithm, LockMisuse};

/// Identifies a monitor within a [`LockTable`](crate::LockTable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MonitorId(pub(crate) usize);

impl MonitorId {
    /// The raw index within the owning table.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for MonitorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "monitor{}", self.0)
    }
}

/// Outcome of an acquire attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The monitor was free; the caller now owns it (fast path).
    Acquired,
    /// The monitor was held; the caller was enqueued and must block until
    /// a release hands the monitor over.
    Contended,
}

/// A completed handoff returned by [`LockTable::release`].
///
/// [`LockTable::release`]: crate::LockTable::release
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The thread that now owns the monitor.
    pub next: ThreadId,
    /// How long that thread waited in the queue (exactly grant time minus
    /// enqueue time, for every algorithm — the audit pass reconstructs
    /// enqueue instants from this).
    pub waited: SimDuration,
    /// Modeled handoff cost charged to the new owner's critical section
    /// (park/wake latency on the lock's critical path). Always zero for
    /// the baseline FIFO algorithm.
    pub penalty: SimDuration,
}

/// Cumulative statistics for one monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MonitorStats {
    /// Successful lock acquisitions (fast path + granted handoffs) —
    /// Figure 1a's quantity.
    pub acquisitions: u64,
    /// Acquire attempts that found the monitor held — Figure 1b's
    /// quantity.
    pub contentions: u64,
    /// Total time threads spent waiting in this monitor's queue,
    /// including partial waits of threads still queued when a run
    /// truncates (see [`queued`](MonitorStats::queued)).
    pub total_wait: SimDuration,
    /// Longest single wait.
    pub max_wait: SimDuration,
    /// Total time the monitor was held.
    pub total_hold: SimDuration,
    /// Waiters still queued when the run ended (budget truncation or
    /// quarantine). Each was counted in `contentions` at enqueue but
    /// never granted, so without this the contention/acquisition
    /// equalities — and [`contention_rate`](MonitorStats::contention_rate)
    /// — would skew on truncated runs.
    pub queued: u64,
}

impl MonitorStats {
    /// Fraction of acquire attempts that were contended (0 when there
    /// were no attempts). Still-queued waiters at truncation count as
    /// attempts: every contention instance has a matching attempt in the
    /// denominator, completed or not.
    #[must_use]
    pub fn contention_rate(&self) -> f64 {
        let attempts = self.acquisitions + self.queued;
        if attempts == 0 {
            0.0
        } else {
            self.contentions as f64 / attempts as f64
        }
    }

    /// Adds another monitor's statistics into this one (class and global
    /// aggregation).
    pub fn merge(&mut self, other: &MonitorStats) {
        self.acquisitions += other.acquisitions;
        self.contentions += other.contentions;
        self.total_wait += other.total_wait;
        self.max_wait = self.max_wait.max(other.max_wait);
        self.total_hold += other.total_hold;
        self.queued += other.queued;
    }
}

/// The handoff algorithm behind one monitor. The default FIFO algorithm
/// is stored inline and statically dispatched — the seed model's hot
/// path pays nothing for the pluggability. Every other algorithm (and
/// the bench-only [`LockAlg::FifoDyn`]) goes through a trait object.
#[derive(Debug)]
enum LockImpl {
    Fifo(FifoLock),
    Dyn(Box<dyn LockAlgorithm>),
}

#[derive(Debug)]
pub(crate) struct Monitor {
    pub class: String,
    imp: LockImpl,
    pub stats: MonitorStats,
}

impl Monitor {
    pub fn new(class: &str, alg: LockAlg) -> Self {
        let imp = match alg {
            LockAlg::Fifo => LockImpl::Fifo(FifoLock::default()),
            other => LockImpl::Dyn(instantiate(other)),
        };
        Monitor {
            class: class.to_owned(),
            imp,
            stats: MonitorStats::default(),
        }
    }

    pub fn owner(&self) -> Option<ThreadId> {
        match &self.imp {
            LockImpl::Fifo(f) => f.owner_impl(),
            LockImpl::Dyn(d) => d.owner(),
        }
    }

    /// When the current owner took the monitor; `None` while unowned.
    pub fn held_since(&self) -> Option<SimTime> {
        match &self.imp {
            LockImpl::Fifo(f) => f.held_since_impl(),
            LockImpl::Dyn(d) => d.held_since(),
        }
    }

    pub fn queue_len(&self) -> usize {
        match &self.imp {
            LockImpl::Fifo(f) => f.queue_len_impl(),
            LockImpl::Dyn(d) => d.queue_len(),
        }
    }

    pub fn is_waiting(&self, tid: ThreadId) -> bool {
        match &self.imp {
            LockImpl::Fifo(f) => f.is_waiting_impl(tid),
            LockImpl::Dyn(d) => d.is_waiting(tid),
        }
    }

    /// Every queued waiter with its enqueue time.
    pub fn queued_waiters(&self) -> Vec<(ThreadId, SimTime)> {
        match &self.imp {
            LockImpl::Fifo(f) => f.queued_waiters_impl(),
            LockImpl::Dyn(d) => d.queued_waiters(),
        }
    }

    /// Attempts to acquire for `tid` at `now`.
    ///
    /// # Errors
    ///
    /// Returns the [`LockMisuse`] on re-entrant acquisition (the
    /// workload models never re-enter a monitor they hold), double
    /// enqueue, or other protocol misuse, leaving the monitor state and
    /// statistics untouched.
    pub fn acquire(&mut self, tid: ThreadId, now: SimTime) -> Result<AcquireOutcome, LockMisuse> {
        let outcome = match &mut self.imp {
            LockImpl::Fifo(f) => f.acquire_impl(tid, now)?,
            LockImpl::Dyn(d) => d.acquire(tid, now)?,
        };
        match outcome {
            AcquireOutcome::Acquired => self.stats.acquisitions += 1,
            AcquireOutcome::Contended => self.stats.contentions += 1,
        }
        Ok(outcome)
    }

    /// Releases the monitor, handing it to the waiter the algorithm
    /// chooses (the oldest one, under the default FIFO discipline).
    ///
    /// # Errors
    ///
    /// Returns [`LockMisuse::ReleaseByNonOwner`] if `tid` is not the
    /// current owner, leaving the monitor state and statistics untouched.
    pub fn release(&mut self, tid: ThreadId, now: SimTime) -> Result<Option<Grant>, LockMisuse> {
        let held_since = self.held_since();
        let grant = match &mut self.imp {
            LockImpl::Fifo(f) => f.release_impl(tid, now)?,
            LockImpl::Dyn(d) => d.release(tid, now)?,
        };
        // Only accrue after the algorithm accepted the release; a
        // misused release must not perturb the counters.
        if let Some(held_since) = held_since {
            self.stats.total_hold += now.saturating_since(held_since);
        }
        if let Some(g) = &grant {
            self.stats.acquisitions += 1;
            self.stats.total_wait += g.waited;
            self.stats.max_wait = self.stats.max_wait.max(g.waited);
        }
        Ok(grant)
    }

    /// Accounts for waiters still queued at `now` when the run ends
    /// mid-wait: their partial waits enter `total_wait`/`max_wait` and
    /// they are tallied in [`MonitorStats::queued`].
    pub fn account_truncated(&mut self, now: SimTime) {
        for (_, enqueued_at) in self.queued_waiters() {
            let waited = now.saturating_since(enqueued_at);
            self.stats.total_wait += waited;
            self.stats.max_wait = self.stats.max_wait.max(waited);
            self.stats.queued += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn tid(n: usize) -> ThreadId {
        ThreadId::new(n)
    }
    fn fifo(class: &str) -> Monitor {
        Monitor::new(class, LockAlg::Fifo)
    }

    #[test]
    fn fast_path_acquire_release() {
        let mut m = fifo("q");
        assert_eq!(m.acquire(tid(0), t(0)), Ok(AcquireOutcome::Acquired));
        assert_eq!(m.owner(), Some(tid(0)));
        assert_eq!(m.held_since(), Some(t(0)));
        assert_eq!(m.release(tid(0), t(10)), Ok(None));
        assert_eq!(m.owner(), None);
        assert_eq!(m.held_since(), None);
        assert_eq!(m.stats.acquisitions, 1);
        assert_eq!(m.stats.contentions, 0);
        assert_eq!(m.stats.total_hold, SimDuration::from_nanos(10));
    }

    #[test]
    fn contended_acquire_queues_fifo_and_hands_off() {
        let mut m = fifo("q");
        m.acquire(tid(0), t(0)).unwrap();
        assert_eq!(m.acquire(tid(1), t(2)), Ok(AcquireOutcome::Contended));
        assert_eq!(m.acquire(tid(2), t(3)), Ok(AcquireOutcome::Contended));
        assert_eq!(m.queue_len(), 2);
        assert_eq!(m.stats.contentions, 2);

        let g = m.release(tid(0), t(10)).unwrap().expect("handoff");
        assert_eq!(g.next, tid(1));
        assert_eq!(g.waited, SimDuration::from_nanos(8));
        assert_eq!(g.penalty, SimDuration::ZERO);
        assert_eq!(m.owner(), Some(tid(1)));
        assert_eq!(m.stats.acquisitions, 2);

        let g = m.release(tid(1), t(20)).unwrap().expect("handoff");
        assert_eq!(g.next, tid(2));
        assert_eq!(g.waited, SimDuration::from_nanos(17));
        assert_eq!(m.release(tid(2), t(25)), Ok(None));
        assert_eq!(m.stats.total_wait, SimDuration::from_nanos(8 + 17));
        assert_eq!(m.stats.max_wait, SimDuration::from_nanos(17));
    }

    #[test]
    fn reentrant_acquire_is_typed_misuse() {
        let mut m = fifo("q");
        m.acquire(tid(0), t(0)).unwrap();
        assert_eq!(
            m.acquire(tid(0), t(1)),
            Err(LockMisuse::ReentrantAcquire(tid(0)))
        );
        // State and stats untouched.
        assert_eq!(m.owner(), Some(tid(0)));
        assert_eq!(m.stats.acquisitions, 1);
    }

    #[test]
    fn release_by_non_owner_is_typed_misuse() {
        let mut m = fifo("q");
        m.acquire(tid(0), t(0)).unwrap();
        assert_eq!(
            m.release(tid(1), t(1)),
            Err(LockMisuse::ReleaseByNonOwner(tid(1)))
        );
        assert_eq!(m.owner(), Some(tid(0)));
        assert_eq!(m.stats.total_hold, SimDuration::ZERO);
    }

    #[test]
    fn double_enqueue_is_typed_misuse() {
        let mut m = fifo("q");
        m.acquire(tid(0), t(0)).unwrap();
        m.acquire(tid(1), t(1)).unwrap();
        assert_eq!(
            m.acquire(tid(1), t(2)),
            Err(LockMisuse::DoubleEnqueue(tid(1)))
        );
        assert_eq!(m.queue_len(), 1);
        assert_eq!(m.stats.contentions, 1);
    }

    #[test]
    fn truncation_accounts_still_queued_waiters() {
        let mut m = fifo("q");
        m.acquire(tid(0), t(0)).unwrap();
        m.acquire(tid(1), t(10)).unwrap();
        m.acquire(tid(2), t(20)).unwrap();
        m.account_truncated(t(100));
        assert_eq!(m.stats.queued, 2);
        assert_eq!(m.stats.total_wait, SimDuration::from_nanos(90 + 80));
        assert_eq!(m.stats.max_wait, SimDuration::from_nanos(90));
        // Contention rate denominator now includes the truncated
        // attempts: 2 contentions / (1 acquisition + 2 queued).
        assert!((m.stats.contention_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn contention_rate() {
        let mut s = MonitorStats::default();
        assert_eq!(s.contention_rate(), 0.0);
        s.acquisitions = 10;
        s.contentions = 3;
        assert!((s.contention_rate() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = MonitorStats {
            acquisitions: 1,
            contentions: 1,
            total_wait: SimDuration::from_nanos(5),
            max_wait: SimDuration::from_nanos(5),
            total_hold: SimDuration::from_nanos(9),
            queued: 1,
        };
        let b = MonitorStats {
            acquisitions: 2,
            contentions: 0,
            total_wait: SimDuration::from_nanos(1),
            max_wait: SimDuration::from_nanos(1),
            total_hold: SimDuration::from_nanos(2),
            queued: 0,
        };
        a.merge(&b);
        assert_eq!(a.acquisitions, 3);
        assert_eq!(a.max_wait, SimDuration::from_nanos(5));
        assert_eq!(a.total_hold, SimDuration::from_nanos(11));
        assert_eq!(a.queued, 1);
    }

    #[test]
    fn monitor_id_display() {
        assert_eq!(MonitorId(4).to_string(), "monitor4");
        assert_eq!(MonitorId(4).index(), 4);
    }

    #[test]
    fn dyn_fifo_matches_static_fifo() {
        let mut a = fifo("q");
        let mut b = Monitor::new("q", LockAlg::FifoDyn);
        for m in [&mut a, &mut b] {
            m.acquire(tid(0), t(0)).unwrap();
            m.acquire(tid(1), t(2)).unwrap();
            m.acquire(tid(2), t(3)).unwrap();
            let g = m.release(tid(0), t(10)).unwrap().unwrap();
            m.release(g.next, t(20)).unwrap().unwrap();
        }
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.owner(), b.owner());
        assert_eq!(a.queue_len(), b.queue_len());
    }
}
