//! Pluggable monitor handoff algorithms.
//!
//! The paper *measures* lock contention as a scalability limiter; the
//! related work (Dice & Kogan, "Malthusian Locks" / "Avoiding Scalability
//! Collapse by Restricting Concurrency") shows how the handoff discipline
//! itself decides whether a saturated lock collapses. This module makes
//! the discipline a strategy:
//!
//! * [`FifoLock`] — the paper-calibrated baseline: strict FIFO handoff
//!   with no modeled handoff cost (the seed model every figure table was
//!   produced with; it must stay byte-identical).
//! * [`McsLock`] — an MCS/CLH-style queue lock: the same strict FIFO
//!   order, but a waiter that spins longer than [`MCS_SPIN_BOUND`] parks,
//!   and waking a parked successor puts [`PARK_WAKE_COST`] on the lock's
//!   critical path. Under saturation every handoff pays it — the
//!   scalability collapse knee.
//! * [`MalthusianLock`] — concurrency restriction: at most
//!   [`MALTHUSIAN_ACTIVE_CAP`] waiters stay active (spinning); the
//!   surplus parks in a passive list. Handoffs go to active waiters, so
//!   the wake cost stays off the critical path; passive waiters are
//!   culled back in periodically for long-term fairness.
//!
//! Every algorithm reports `Grant::waited` as exactly `now − enqueue
//! time`, keeps contention counting at enqueue, and exposes its full
//! waiter set through [`LockAlgorithm::is_waiting`] — the invariant
//! scanner, the tracing layer, and the offline audit crate rely on those
//! three contracts and run unchanged across algorithms.

use std::collections::VecDeque;
use std::fmt;

use scalesim_sched::ThreadId;
use scalesim_simkit::{SimDuration, SimTime};

use crate::monitor::{AcquireOutcome, Grant};

/// A waiter spinning longer than this is modeled as parked (MCS).
pub const MCS_SPIN_BOUND: SimDuration = SimDuration::from_micros(5);

/// Cost of waking a parked waiter when the wake sits on the lock's
/// critical path: scheduler latency plus the refill of the
/// lock-protected cache lines. Charged by extending the new owner's
/// hold (the runtime adds [`Grant::penalty`] to the critical step).
pub const PARK_WAKE_COST: SimDuration = SimDuration::from_micros(25);

/// Maximum concurrently *active* (spinning) waiters under the
/// Malthusian lock; everyone else parks in the passive list.
pub const MALTHUSIAN_ACTIVE_CAP: usize = 2;

/// Every this-many grants the Malthusian lock readmits the oldest
/// passive waiter into the active set (long-term fairness).
pub const MALTHUSIAN_CULL_PERIOD: u64 = 64;

/// Selects the monitor handoff algorithm for a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LockAlg {
    /// The paper-calibrated FIFO handoff monitor (statically dispatched;
    /// byte-identical to the pre-refactor seed model).
    #[default]
    Fifo,
    /// The same FIFO algorithm routed through trait-object dispatch.
    /// Behaviorally identical to [`LockAlg::Fifo`]; exists so the bench
    /// harness can price the dispatch indirection honestly
    /// (`lock_alg_overhead_pct`).
    FifoDyn,
    /// MCS/CLH-style queue lock with bounded spinning before parking.
    Mcs,
    /// Malthusian / concurrency-restricting lock (active + passive sets).
    Malthusian,
}

impl LockAlg {
    /// The three user-facing algorithms (the bench-only
    /// [`LockAlg::FifoDyn`] variant is excluded).
    pub const ALL: [LockAlg; 3] = [LockAlg::Fifo, LockAlg::Mcs, LockAlg::Malthusian];

    /// Parses a CLI/env spelling. Returns `None` for unknown names.
    #[must_use]
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(LockAlg::Fifo),
            "fifo-dyn" => Some(LockAlg::FifoDyn),
            "mcs" => Some(LockAlg::Mcs),
            "malthusian" => Some(LockAlg::Malthusian),
            _ => None,
        }
    }

    /// The canonical spelling [`LockAlg::parse`] accepts.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            LockAlg::Fifo => "fifo",
            LockAlg::FifoDyn => "fifo-dyn",
            LockAlg::Mcs => "mcs",
            LockAlg::Malthusian => "malthusian",
        }
    }

    /// Reads `SCALESIM_LOCK_ALG`; unset or unrecognized values fall back
    /// to the default FIFO algorithm (lenient like the other env knobs).
    #[must_use]
    pub fn from_env() -> Self {
        std::env::var("SCALESIM_LOCK_ALG")
            .ok()
            .and_then(|v| LockAlg::parse(&v))
            .unwrap_or_default()
    }
}

impl fmt::Display for LockAlg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A protocol misuse detected by a lock algorithm. Previously these were
/// `assert!`s on the run path; returning them typed lets chaos-injected
/// misuse quarantine the run instead of crashing the sweep worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMisuse {
    /// A thread tried to acquire a monitor it already owns (the workload
    /// models never re-enter).
    ReentrantAcquire(ThreadId),
    /// A thread tried to enqueue twice on one monitor.
    DoubleEnqueue(ThreadId),
    /// A thread released a monitor it does not own.
    ReleaseByNonOwner(ThreadId),
}

impl fmt::Display for LockMisuse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockMisuse::ReentrantAcquire(tid) => write!(f, "{tid} re-entered a held monitor"),
            LockMisuse::DoubleEnqueue(tid) => write!(f, "{tid} enqueued twice on one monitor"),
            LockMisuse::ReleaseByNonOwner(tid) => {
                write!(f, "{tid} released a monitor it does not own")
            }
        }
    }
}

/// One monitor's handoff discipline: who owns it, who waits, and which
/// waiter a release hands it to (at what modeled cost).
///
/// Contracts every implementation must keep (the invariant scanner, the
/// trace layer, and the audit crate depend on them):
///
/// * mutual exclusion — at most one owner at a time, changed only by
///   `acquire` on a free lock or a release handoff;
/// * `Grant::waited` is exactly `now − enqueue time`, so the audit
///   pass can reconstruct the enqueue instant from the wait span;
/// * contention is observable at enqueue: `acquire` on a held lock
///   returns [`AcquireOutcome::Contended`] and the waiter is visible
///   through [`LockAlgorithm::is_waiting`] until granted (parked or
///   not);
/// * eventual admission — every waiter is granted after finitely many
///   releases (no starvation).
pub trait LockAlgorithm: fmt::Debug {
    /// Attempts to acquire for `tid` at `now`.
    ///
    /// # Errors
    ///
    /// [`LockMisuse::ReentrantAcquire`] when `tid` already owns the
    /// monitor, [`LockMisuse::DoubleEnqueue`] when it is already queued.
    fn acquire(&mut self, tid: ThreadId, now: SimTime) -> Result<AcquireOutcome, LockMisuse>;

    /// Releases the monitor, handing it to the algorithm's chosen waiter.
    ///
    /// # Errors
    ///
    /// [`LockMisuse::ReleaseByNonOwner`] when `tid` is not the owner.
    fn release(&mut self, tid: ThreadId, now: SimTime) -> Result<Option<Grant>, LockMisuse>;

    /// The current owner.
    fn owner(&self) -> Option<ThreadId>;

    /// When the current owner took the monitor; `None` while unowned.
    fn held_since(&self) -> Option<SimTime>;

    /// Number of queued waiters (active and parked).
    fn queue_len(&self) -> usize;

    /// Whether `tid` is queued (active or parked).
    fn is_waiting(&self, tid: ThreadId) -> bool;

    /// Every queued waiter with its enqueue time (used to account for
    /// still-queued waiters when a run truncates mid-wait).
    fn queued_waiters(&self) -> Vec<(ThreadId, SimTime)>;
}

/// Constructs the algorithm instance for one monitor.
pub(crate) fn instantiate(alg: LockAlg) -> Box<dyn LockAlgorithm> {
    match alg {
        // `LockAlg::Fifo` never reaches this: the monitor stores it
        // inline and statically dispatched. `FifoDyn` is the same code
        // behind the trait object.
        LockAlg::Fifo | LockAlg::FifoDyn => Box::new(FifoLock::default()),
        LockAlg::Mcs => Box::new(McsLock::default()),
        LockAlg::Malthusian => Box::new(MalthusianLock::default()),
    }
}

// ---------------------------------------------------------------------
// FIFO (the seed model)
// ---------------------------------------------------------------------

/// The paper-calibrated baseline: one owner, a FIFO wait queue, direct
/// handoff on release, no modeled handoff cost.
#[derive(Debug, Clone, Default)]
pub struct FifoLock {
    owner: Option<ThreadId>,
    held_since: SimTime,
    waiters: VecDeque<(ThreadId, SimTime)>,
}

impl FifoLock {
    // Inherent mirrors of the trait methods, so the default-algorithm
    // monitor can call them statically dispatched (and inlined) — the
    // FIFO hot path must not pay for the pluggability.
    pub(crate) fn acquire_impl(
        &mut self,
        tid: ThreadId,
        now: SimTime,
    ) -> Result<AcquireOutcome, LockMisuse> {
        if self.owner == Some(tid) {
            return Err(LockMisuse::ReentrantAcquire(tid));
        }
        match self.owner {
            None => {
                self.owner = Some(tid);
                self.held_since = now;
                Ok(AcquireOutcome::Acquired)
            }
            Some(_) => {
                if self.waiters.iter().any(|&(w, _)| w == tid) {
                    return Err(LockMisuse::DoubleEnqueue(tid));
                }
                self.waiters.push_back((tid, now));
                Ok(AcquireOutcome::Contended)
            }
        }
    }

    pub(crate) fn release_impl(
        &mut self,
        tid: ThreadId,
        now: SimTime,
    ) -> Result<Option<Grant>, LockMisuse> {
        if self.owner != Some(tid) {
            return Err(LockMisuse::ReleaseByNonOwner(tid));
        }
        match self.waiters.pop_front() {
            None => {
                self.owner = None;
                Ok(None)
            }
            Some((next, enqueued_at)) => {
                let waited = now.saturating_since(enqueued_at);
                self.owner = Some(next);
                self.held_since = now;
                Ok(Some(Grant {
                    next,
                    waited,
                    penalty: SimDuration::ZERO,
                }))
            }
        }
    }

    pub(crate) fn owner_impl(&self) -> Option<ThreadId> {
        self.owner
    }

    pub(crate) fn held_since_impl(&self) -> Option<SimTime> {
        self.owner.map(|_| self.held_since)
    }

    pub(crate) fn queue_len_impl(&self) -> usize {
        self.waiters.len()
    }

    pub(crate) fn is_waiting_impl(&self, tid: ThreadId) -> bool {
        self.waiters.iter().any(|&(w, _)| w == tid)
    }

    pub(crate) fn queued_waiters_impl(&self) -> Vec<(ThreadId, SimTime)> {
        self.waiters.iter().copied().collect()
    }
}

impl LockAlgorithm for FifoLock {
    fn acquire(&mut self, tid: ThreadId, now: SimTime) -> Result<AcquireOutcome, LockMisuse> {
        self.acquire_impl(tid, now)
    }
    fn release(&mut self, tid: ThreadId, now: SimTime) -> Result<Option<Grant>, LockMisuse> {
        self.release_impl(tid, now)
    }
    fn owner(&self) -> Option<ThreadId> {
        self.owner_impl()
    }
    fn held_since(&self) -> Option<SimTime> {
        self.held_since_impl()
    }
    fn queue_len(&self) -> usize {
        self.queue_len_impl()
    }
    fn is_waiting(&self, tid: ThreadId) -> bool {
        self.is_waiting_impl(tid)
    }
    fn queued_waiters(&self) -> Vec<(ThreadId, SimTime)> {
        self.queued_waiters_impl()
    }
}

// ---------------------------------------------------------------------
// MCS/CLH queue lock
// ---------------------------------------------------------------------

/// MCS/CLH-style queue lock: strict FIFO order like the baseline, but a
/// waiter that queued longer than [`MCS_SPIN_BOUND`] is modeled as
/// parked, and handing off to a parked waiter charges
/// [`PARK_WAKE_COST`] on the critical path. Under saturation every
/// waiter exceeds the spin bound, so every handoff pays — throughput
/// collapses as threads grow.
#[derive(Debug, Clone, Default)]
pub struct McsLock {
    fifo: FifoLock,
}

impl LockAlgorithm for McsLock {
    fn acquire(&mut self, tid: ThreadId, now: SimTime) -> Result<AcquireOutcome, LockMisuse> {
        self.fifo.acquire_impl(tid, now)
    }

    fn release(&mut self, tid: ThreadId, now: SimTime) -> Result<Option<Grant>, LockMisuse> {
        Ok(self.fifo.release_impl(tid, now)?.map(|mut g| {
            if g.waited > MCS_SPIN_BOUND {
                g.penalty = PARK_WAKE_COST;
            }
            g
        }))
    }

    fn owner(&self) -> Option<ThreadId> {
        self.fifo.owner_impl()
    }
    fn held_since(&self) -> Option<SimTime> {
        self.fifo.held_since_impl()
    }
    fn queue_len(&self) -> usize {
        self.fifo.queue_len_impl()
    }
    fn is_waiting(&self, tid: ThreadId) -> bool {
        self.fifo.is_waiting_impl(tid)
    }
    fn queued_waiters(&self) -> Vec<(ThreadId, SimTime)> {
        self.fifo.queued_waiters_impl()
    }
}

// ---------------------------------------------------------------------
// Malthusian / concurrency-restricting lock
// ---------------------------------------------------------------------

/// Malthusian lock (Dice & Kogan): at most [`MALTHUSIAN_ACTIVE_CAP`]
/// waiters stay *active* (spinning, cheap to hand to); the surplus parks
/// in a *passive* list. Handoffs prefer the active set, keeping
/// [`PARK_WAKE_COST`] off the critical path; a direct grant from the
/// passive list (only when the active set is empty) pays it. Every
/// [`MALTHUSIAN_CULL_PERIOD`] grants the oldest passive waiter is
/// readmitted to the active tail — its wakeup happens while the lock
/// keeps moving, so readmission itself is free on the critical path —
/// which bounds passive waiting and preserves eventual admission.
#[derive(Debug, Clone, Default)]
pub struct MalthusianLock {
    owner: Option<ThreadId>,
    held_since: SimTime,
    /// Spinning waiters, FIFO among themselves.
    active: VecDeque<(ThreadId, SimTime)>,
    /// Parked surplus, FIFO; readmitted by culling or drained when the
    /// active set empties.
    passive: VecDeque<(ThreadId, SimTime)>,
    /// Grant counter driving the culling cadence.
    grants: u64,
}

impl LockAlgorithm for MalthusianLock {
    fn acquire(&mut self, tid: ThreadId, now: SimTime) -> Result<AcquireOutcome, LockMisuse> {
        if self.owner == Some(tid) {
            return Err(LockMisuse::ReentrantAcquire(tid));
        }
        match self.owner {
            None => {
                self.owner = Some(tid);
                self.held_since = now;
                Ok(AcquireOutcome::Acquired)
            }
            Some(_) => {
                if self.is_waiting(tid) {
                    return Err(LockMisuse::DoubleEnqueue(tid));
                }
                if self.active.len() < MALTHUSIAN_ACTIVE_CAP {
                    self.active.push_back((tid, now));
                } else {
                    self.passive.push_back((tid, now));
                }
                Ok(AcquireOutcome::Contended)
            }
        }
    }

    fn release(&mut self, tid: ThreadId, now: SimTime) -> Result<Option<Grant>, LockMisuse> {
        if self.owner != Some(tid) {
            return Err(LockMisuse::ReleaseByNonOwner(tid));
        }
        let (next, enqueued_at, penalty) = match self.active.pop_front() {
            Some((next, at)) => (next, at, SimDuration::ZERO),
            None => match self.passive.pop_front() {
                // The active set ran dry: wake a parked waiter on the
                // critical path.
                Some((next, at)) => (next, at, PARK_WAKE_COST),
                None => {
                    self.owner = None;
                    return Ok(None);
                }
            },
        };
        self.owner = Some(next);
        self.held_since = now;
        self.grants += 1;
        // Long-term fairness: periodically readmit the oldest parked
        // waiter. It starts spinning while the current owner holds the
        // lock, so the wakeup is off the critical path.
        if self.grants.is_multiple_of(MALTHUSIAN_CULL_PERIOD) {
            if let Some(parked) = self.passive.pop_front() {
                self.active.push_back(parked);
            }
        }
        Ok(Some(Grant {
            next,
            waited: now.saturating_since(enqueued_at),
            penalty,
        }))
    }

    fn owner(&self) -> Option<ThreadId> {
        self.owner
    }

    fn held_since(&self) -> Option<SimTime> {
        self.owner.map(|_| self.held_since)
    }

    fn queue_len(&self) -> usize {
        self.active.len() + self.passive.len()
    }

    fn is_waiting(&self, tid: ThreadId) -> bool {
        self.active.iter().any(|&(w, _)| w == tid) || self.passive.iter().any(|&(w, _)| w == tid)
    }

    fn queued_waiters(&self) -> Vec<(ThreadId, SimTime)> {
        self.active
            .iter()
            .chain(self.passive.iter())
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn tid(n: usize) -> ThreadId {
        ThreadId::new(n)
    }

    #[test]
    fn parse_round_trips_every_algorithm() {
        for alg in [
            LockAlg::Fifo,
            LockAlg::FifoDyn,
            LockAlg::Mcs,
            LockAlg::Malthusian,
        ] {
            assert_eq!(LockAlg::parse(alg.as_str()), Some(alg));
            assert_eq!(alg.to_string(), alg.as_str());
        }
        assert_eq!(LockAlg::parse("nope"), None);
        assert_eq!(LockAlg::default(), LockAlg::Fifo);
    }

    #[test]
    fn misuse_displays_name_the_thread() {
        assert_eq!(
            LockMisuse::ReentrantAcquire(tid(3)).to_string(),
            "thread3 re-entered a held monitor"
        );
        assert!(LockMisuse::ReleaseByNonOwner(tid(1))
            .to_string()
            .contains("does not own"));
    }

    #[test]
    fn mcs_charges_park_wake_only_past_the_spin_bound() {
        let mut m = McsLock::default();
        m.acquire(tid(0), t(0)).unwrap();
        m.acquire(tid(1), t(100)).unwrap();
        // tid1 waited 900 ns < 5 µs: still spinning, free handoff.
        let g = m.release(tid(0), t(1_000)).unwrap().unwrap();
        assert_eq!(g.next, tid(1));
        assert_eq!(g.penalty, SimDuration::ZERO);
        // tid2 waits 50 µs > 5 µs: parked, the handoff pays the wake.
        m.acquire(tid(2), t(2_000)).unwrap();
        let g = m.release(tid(1), t(52_000)).unwrap().unwrap();
        assert_eq!(g.next, tid(2));
        assert_eq!(g.waited, SimDuration::from_micros(50));
        assert_eq!(g.penalty, PARK_WAKE_COST);
    }

    #[test]
    fn malthusian_parks_surplus_and_prefers_active() {
        let mut m = MalthusianLock::default();
        m.acquire(tid(0), t(0)).unwrap();
        // Fill the active set, then overflow into the passive list.
        for i in 1..=MALTHUSIAN_ACTIVE_CAP + 2 {
            assert_eq!(
                m.acquire(tid(i), t(i as u64)).unwrap(),
                AcquireOutcome::Contended
            );
        }
        assert_eq!(m.queue_len(), MALTHUSIAN_ACTIVE_CAP + 2);
        // Parked waiters are still visible to the invariant scanner.
        assert!(m.is_waiting(tid(MALTHUSIAN_ACTIVE_CAP + 2)));
        // Handoffs come from the active set, penalty-free, FIFO order.
        let g = m.release(tid(0), t(100_000)).unwrap().unwrap();
        assert_eq!(g.next, tid(1));
        assert_eq!(g.penalty, SimDuration::ZERO);
        assert_eq!(g.waited, t(100_000).saturating_since(t(1)));
    }

    #[test]
    fn malthusian_wakes_passive_when_active_runs_dry() {
        let mut m = MalthusianLock::default();
        m.acquire(tid(0), t(0)).unwrap();
        for i in 1..=MALTHUSIAN_ACTIVE_CAP + 1 {
            m.acquire(tid(i), t(i as u64)).unwrap();
        }
        // Drain the active set.
        let mut owner = tid(0);
        for _ in 0..MALTHUSIAN_ACTIVE_CAP {
            let g = m.release(owner, t(1_000)).unwrap().unwrap();
            assert_eq!(g.penalty, SimDuration::ZERO);
            owner = g.next;
        }
        // The next grant must come from the passive list and pay the wake.
        let g = m.release(owner, t(2_000)).unwrap().unwrap();
        assert_eq!(g.next, tid(MALTHUSIAN_ACTIVE_CAP + 1));
        assert_eq!(g.penalty, PARK_WAKE_COST);
        assert_eq!(m.release(g.next, t(3_000)).unwrap(), None);
        assert_eq!(m.owner(), None);
        assert_eq!(m.held_since(), None);
    }

    #[test]
    fn malthusian_culls_passive_waiters_back_in() {
        let mut m = MalthusianLock::default();
        m.acquire(tid(0), t(0)).unwrap();
        // A tagged waiter parks behind a full active set.
        for i in 1..=MALTHUSIAN_ACTIVE_CAP {
            m.acquire(tid(i), t(1)).unwrap();
        }
        let tagged = tid(900);
        m.acquire(tagged, t(2)).unwrap();
        // Churn: every grant is followed by a fresh arrival that retakes
        // the freed active slot, so only culling can admit the tagged
        // waiter.
        let mut owner = tid(0);
        for (fresh, round) in (1000..).zip(0..2 * MALTHUSIAN_CULL_PERIOD) {
            let g = m
                .release(owner, t(10_000 + round))
                .unwrap()
                .expect("queue never empties");
            if g.next == tagged {
                return; // admitted — no starvation
            }
            owner = g.next;
            m.acquire(tid(fresh), t(10_000 + round)).unwrap();
        }
        panic!("tagged waiter starved past two cull periods");
    }
}
