//! The lock table and the DTrace-analog profiler report.

use std::collections::BTreeMap;
use std::fmt;

use scalesim_metrics::LogHistogram;
use scalesim_sched::ThreadId;
use scalesim_simkit::SimTime;
use scalesim_trace::{EventKind, Timeline};

use crate::alg::{LockAlg, LockMisuse};
use crate::monitor::{AcquireOutcome, Grant, Monitor, MonitorId, MonitorStats};

/// Owns every monitor in a simulated JVM and aggregates their statistics.
///
/// Monitors are created with a *class* label (e.g. `"workqueue"`,
/// `"dtm-cache"`) so the profiler can report per-class breakdowns the way
/// a DTrace lockstat script groups probes by call site. Every monitor in
/// a table uses the same handoff algorithm (a [`LockAlg`], default FIFO).
///
/// # Examples
///
/// ```
/// use scalesim_sync::{AcquireOutcome, LockTable};
/// use scalesim_sched::ThreadId;
/// use scalesim_simkit::SimTime;
///
/// let mut locks = LockTable::new();
/// let q = locks.create("workqueue");
/// let t0 = ThreadId::new(0);
/// assert_eq!(
///     locks.acquire(q, t0, SimTime::ZERO),
///     Ok(AcquireOutcome::Acquired)
/// );
/// locks.release(q, t0, SimTime::from_nanos(100)).unwrap();
/// assert_eq!(locks.report().total.acquisitions, 1);
/// ```
#[derive(Debug, Default)]
pub struct LockTable {
    monitors: Vec<Monitor>,
    /// Handoff algorithm newly created monitors use.
    alg: LockAlg,
    /// Timeline recorder for hold/wait spans (disabled by default).
    timeline: Timeline,
    /// Distribution of completed hold durations (ns) over every monitor
    /// — the monitor-hold percentiles the analytics layer reports.
    hold_hist: LogHistogram,
    /// Distribution of completed contended-wait durations (ns) — the
    /// lock-acquisition latency percentiles.
    wait_hist: LogHistogram,
}

impl LockTable {
    /// Creates an empty table using the default FIFO handoff algorithm.
    #[must_use]
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Creates an empty table whose monitors use `alg` for handoff.
    #[must_use]
    pub fn with_algorithm(alg: LockAlg) -> Self {
        LockTable {
            alg,
            ..LockTable::default()
        }
    }

    /// The handoff algorithm this table's monitors use.
    #[must_use]
    pub fn algorithm(&self) -> LockAlg {
        self.alg
    }

    /// Installs a timeline recorder; each release then records the closed
    /// hold span (and the granted waiter's wait span, on a handoff).
    ///
    /// Holds and waits still open when the run ends are not emitted.
    pub fn set_timeline(&mut self, timeline: Timeline) {
        self.timeline = timeline;
    }

    /// Removes the recorder (leaving a disabled one) and returns it.
    pub fn take_timeline(&mut self) -> Timeline {
        std::mem::take(&mut self.timeline)
    }

    /// Creates a monitor with a class label and returns its id.
    pub fn create(&mut self, class: &str) -> MonitorId {
        let id = MonitorId(self.monitors.len());
        self.monitors.push(Monitor::new(class, self.alg));
        id
    }

    /// Number of monitors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.monitors.len()
    }

    /// Whether the table holds no monitors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.monitors.is_empty()
    }

    /// Attempts to acquire monitor `m` for `tid`.
    ///
    /// On [`AcquireOutcome::Contended`] the caller must block the thread;
    /// it will be granted ownership by a future release.
    ///
    /// # Errors
    ///
    /// Returns the [`LockMisuse`] on re-entrant acquisition or double
    /// enqueue (state and statistics untouched) so callers can quarantine
    /// the run instead of crashing.
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn acquire(
        &mut self,
        m: MonitorId,
        tid: ThreadId,
        now: SimTime,
    ) -> Result<AcquireOutcome, LockMisuse> {
        let outcome = self.monitors[m.0].acquire(tid, now)?;
        if outcome == AcquireOutcome::Contended {
            // Wait-begin marker: the audit pass pairs it with the closing
            // MonitorWait span emitted on handoff; an enqueue that is never
            // closed is a dangling wait.
            self.timeline.instant(
                EventKind::MonitorEnqueue,
                m.0 as u32,
                now,
                tid.index() as u64,
            );
        }
        Ok(outcome)
    }

    /// Releases monitor `m`; returns the handoff grant if a waiter took
    /// over.
    ///
    /// # Errors
    ///
    /// Returns [`LockMisuse::ReleaseByNonOwner`] if `tid` is not the
    /// owner (state and statistics untouched).
    ///
    /// # Panics
    ///
    /// Panics if `m` is out of range.
    pub fn release(
        &mut self,
        m: MonitorId,
        tid: ThreadId,
        now: SimTime,
    ) -> Result<Option<Grant>, LockMisuse> {
        let held_since = self.monitors[m.0].held_since();
        let grant = self.monitors[m.0].release(tid, now)?;
        // The release was accepted, so `tid` owned the monitor and the
        // hold start is known.
        let held_since = held_since.expect("accepted release implies an owned monitor");
        let track = m.0 as u32;
        self.hold_hist
            .record(now.saturating_since(held_since).as_nanos());
        if let Some(g) = grant {
            self.wait_hist.record(g.waited.as_nanos());
        }
        self.timeline.span(
            EventKind::MonitorHold,
            track,
            held_since,
            now,
            tid.index() as u64,
        );
        if let Some(g) = grant {
            let enqueued = SimTime::from_nanos(now.as_nanos().saturating_sub(g.waited.as_nanos()));
            self.timeline.span(
                EventKind::MonitorWait,
                track,
                enqueued,
                now,
                g.next.index() as u64,
            );
        }
        Ok(grant)
    }

    /// Accounts for threads still queued on any monitor when a run ends
    /// mid-wait (budget truncation or quarantine): their partial waits
    /// enter the wait totals and [`MonitorStats::queued`] tallies them,
    /// keeping [`MonitorStats::contention_rate`] honest on truncated
    /// runs. Completed-sample histograms are deliberately untouched.
    pub fn finalize(&mut self, now: SimTime) {
        for mon in &mut self.monitors {
            mon.account_truncated(now);
        }
    }

    /// The current owner of monitor `m`.
    #[must_use]
    pub fn owner(&self, m: MonitorId) -> Option<ThreadId> {
        self.monitors[m.0].owner()
    }

    /// When monitor `m`'s current owner took it; `None` while unowned.
    #[must_use]
    pub fn held_since(&self, m: MonitorId) -> Option<SimTime> {
        self.monitors[m.0].held_since()
    }

    /// Number of threads queued on monitor `m`.
    #[must_use]
    pub fn queue_len(&self, m: MonitorId) -> usize {
        self.monitors[m.0].queue_len()
    }

    /// Whether `tid` is queued on monitor `m` (invariant monitors
    /// cross-check this against the scheduler's blocked state).
    #[must_use]
    pub fn is_waiting(&self, m: MonitorId, tid: ThreadId) -> bool {
        self.monitors[m.0].is_waiting(tid)
    }

    /// Statistics for a single monitor.
    #[must_use]
    pub fn stats(&self, m: MonitorId) -> &MonitorStats {
        &self.monitors[m.0].stats
    }

    /// The class label of monitor `m`.
    #[must_use]
    pub fn class(&self, m: MonitorId) -> &str {
        &self.monitors[m.0].class
    }

    /// Builds the profiler report: per-class and global aggregates.
    #[must_use]
    pub fn report(&self) -> LockReport {
        let mut by_class: BTreeMap<String, MonitorStats> = BTreeMap::new();
        let mut total = MonitorStats::default();
        for mon in &self.monitors {
            by_class
                .entry(mon.class.clone())
                .or_default()
                .merge(&mon.stats);
            total.merge(&mon.stats);
        }
        LockReport {
            by_class,
            total,
            hold_hist: self.hold_hist.clone(),
            wait_hist: self.wait_hist.clone(),
        }
    }
}

/// The DTrace-analog lock-usage report: what Figures 1a/1b are plotted
/// from.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LockReport {
    /// Aggregated statistics per lock class, sorted by class name.
    pub by_class: BTreeMap<String, MonitorStats>,
    /// Statistics over every monitor in the VM.
    pub total: MonitorStats,
    /// Distribution of hold durations (ns) across all monitors.
    pub hold_hist: LogHistogram,
    /// Distribution of contended-wait durations (ns) across all monitors.
    pub wait_hist: LogHistogram,
}

impl LockReport {
    /// Acquisition count for one class (0 if the class never appeared).
    #[must_use]
    pub fn acquisitions_of(&self, class: &str) -> u64 {
        self.by_class.get(class).map_or(0, |s| s.acquisitions)
    }

    /// Contention count for one class (0 if the class never appeared).
    #[must_use]
    pub fn contentions_of(&self, class: &str) -> u64 {
        self.by_class.get(class).map_or(0, |s| s.contentions)
    }
}

impl fmt::Display for LockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "locks: {} acquisitions, {} contentions ({:.1}% contended)",
            self.total.acquisitions,
            self.total.contentions,
            self.total.contention_rate() * 100.0
        )?;
        for (class, s) in &self.by_class {
            writeln!(
                f,
                "  {class}: acq={} cont={} wait={} hold={}",
                s.acquisitions, s.contentions, s.total_wait, s.total_hold
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_simkit::SimDuration;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }
    fn tid(n: usize) -> ThreadId {
        ThreadId::new(n)
    }

    #[test]
    fn create_and_query() {
        let mut lt = LockTable::new();
        assert!(lt.is_empty());
        assert_eq!(lt.algorithm(), LockAlg::Fifo);
        let a = lt.create("queue");
        let b = lt.create("cache");
        assert_eq!(lt.len(), 2);
        assert_eq!(lt.class(a), "queue");
        assert_eq!(lt.class(b), "cache");
        assert_eq!(lt.owner(a), None);
        assert_eq!(lt.held_since(a), None);
        assert_eq!(lt.queue_len(a), 0);
    }

    #[test]
    fn report_aggregates_by_class_and_total() {
        let mut lt = LockTable::new();
        let q1 = lt.create("queue");
        let q2 = lt.create("queue");
        let c = lt.create("cache");

        lt.acquire(q1, tid(0), t(0)).unwrap();
        lt.acquire(q1, tid(1), t(1)).unwrap(); // contention
        lt.release(q1, tid(0), t(5)).unwrap(); // handoff -> acquisition 2
        lt.release(q1, tid(1), t(6)).unwrap();
        lt.acquire(q2, tid(2), t(2)).unwrap();
        lt.release(q2, tid(2), t(3)).unwrap();
        lt.acquire(c, tid(3), t(4)).unwrap();
        lt.release(c, tid(3), t(9)).unwrap();

        let r = lt.report();
        assert_eq!(r.acquisitions_of("queue"), 3);
        assert_eq!(r.contentions_of("queue"), 1);
        assert_eq!(r.acquisitions_of("cache"), 1);
        assert_eq!(r.contentions_of("cache"), 0);
        assert_eq!(r.acquisitions_of("nope"), 0);
        assert_eq!(r.total.acquisitions, 4);
        assert_eq!(r.total.contentions, 1);
        assert_eq!(
            r.by_class["queue"].total_wait,
            SimDuration::from_nanos(4) // tid1 waited 1..5
        );
    }

    #[test]
    fn handoff_grant_propagates_through_table() {
        let mut lt = LockTable::new();
        let m = lt.create("db");
        lt.acquire(m, tid(0), t(0)).unwrap();
        assert_eq!(lt.acquire(m, tid(1), t(10)), Ok(AcquireOutcome::Contended));
        let g = lt.release(m, tid(0), t(30)).unwrap().expect("grant");
        assert_eq!(g.next, tid(1));
        assert_eq!(g.waited, SimDuration::from_nanos(20));
        assert_eq!(lt.owner(m), Some(tid(1)));
    }

    #[test]
    fn misuse_propagates_without_side_effects() {
        let mut lt = LockTable::new();
        lt.set_timeline(scalesim_trace::Timeline::with_capacity(16));
        let m = lt.create("db");
        lt.acquire(m, tid(0), t(0)).unwrap();
        assert_eq!(
            lt.acquire(m, tid(0), t(1)),
            Err(LockMisuse::ReentrantAcquire(tid(0)))
        );
        assert_eq!(
            lt.release(m, tid(1), t(2)),
            Err(LockMisuse::ReleaseByNonOwner(tid(1)))
        );
        assert_eq!(lt.owner(m), Some(tid(0)));
        assert_eq!(lt.stats(m).acquisitions, 1);
        // No spurious timeline events or histogram samples were emitted.
        assert_eq!(lt.take_timeline().len(), 0);
        assert_eq!(lt.report().hold_hist.count(), 0);
    }

    #[test]
    fn finalize_accounts_queued_waiters() {
        let mut lt = LockTable::new();
        let m = lt.create("db");
        lt.acquire(m, tid(0), t(0)).unwrap();
        lt.acquire(m, tid(1), t(10)).unwrap();
        lt.acquire(m, tid(2), t(20)).unwrap();
        lt.finalize(t(100));
        let r = lt.report();
        assert_eq!(r.total.queued, 2);
        assert_eq!(r.total.contentions, 2);
        assert_eq!(r.total.total_wait, SimDuration::from_nanos(90 + 80));
        // 2 contentions over (1 acquisition + 2 truncated attempts).
        assert!((r.total.contention_rate() - 2.0 / 3.0).abs() < 1e-12);
        // Histograms only hold completed samples.
        assert_eq!(r.wait_hist.count(), 0);
    }

    #[test]
    fn timeline_records_hold_and_wait_spans() {
        use scalesim_trace::EventKind;

        let mut lt = LockTable::new();
        lt.set_timeline(scalesim_trace::Timeline::with_capacity(16));
        let m = lt.create("db");
        lt.acquire(m, tid(0), t(0)).unwrap();
        lt.acquire(m, tid(1), t(10)).unwrap(); // contended
        lt.release(m, tid(0), t(30)).unwrap(); // handoff to tid 1
        lt.release(m, tid(1), t(45)).unwrap();

        let tl = lt.take_timeline();
        let events: Vec<_> = tl.events().copied().collect();
        let holds: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::MonitorHold)
            .collect();
        assert_eq!(holds.len(), 2);
        assert_eq!(holds[0].at, t(0));
        assert_eq!(holds[0].end(), t(30));
        assert_eq!(holds[0].arg, 0, "owner attribution");
        assert_eq!(holds[1].arg, 1);
        let waits: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::MonitorWait)
            .collect();
        assert_eq!(waits.len(), 1);
        assert_eq!(waits[0].at, t(10));
        assert_eq!(waits[0].end(), t(30));
        assert_eq!(waits[0].arg, 1, "waiter attribution");
        let enqueues: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::MonitorEnqueue)
            .collect();
        assert_eq!(enqueues.len(), 1);
        assert_eq!(enqueues[0].at, t(10));
        assert_eq!(enqueues[0].arg, 1, "waiter attribution");
        // The recorder left behind is disabled.
        assert_eq!(lt.take_timeline().len(), 0);
    }

    #[test]
    fn timeline_works_for_every_algorithm() {
        use scalesim_trace::EventKind;

        for alg in LockAlg::ALL {
            let mut lt = LockTable::with_algorithm(alg);
            assert_eq!(lt.algorithm(), alg);
            lt.set_timeline(scalesim_trace::Timeline::with_capacity(16));
            let m = lt.create("db");
            lt.acquire(m, tid(0), t(0)).unwrap();
            lt.acquire(m, tid(1), t(10)).unwrap();
            let g = lt.release(m, tid(0), t(30)).unwrap().expect("grant");
            assert_eq!(g.next, tid(1));
            lt.release(m, g.next, t(45)).unwrap();

            // Every algorithm emits the same trace shape: one enqueue,
            // one closed wait span, two closed hold spans — and the wait
            // span reconstructs the enqueue instant exactly.
            let events: Vec<_> = lt.take_timeline().events().copied().collect();
            let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
            assert_eq!(count(EventKind::MonitorEnqueue), 1, "{alg}");
            assert_eq!(count(EventKind::MonitorHold), 2, "{alg}");
            let waits: Vec<_> = events
                .iter()
                .filter(|e| e.kind == EventKind::MonitorWait)
                .collect();
            assert_eq!(waits.len(), 1, "{alg}");
            assert_eq!(waits[0].at, t(10), "{alg}: wait span starts at enqueue");
            assert_eq!(waits[0].end(), t(30), "{alg}");
        }
    }

    #[test]
    fn report_histograms_record_holds_and_waits() {
        let mut lt = LockTable::new();
        let m = lt.create("db");
        // Uncontended acquire/release: one hold sample, no wait sample.
        lt.acquire(m, tid(0), t(0)).unwrap();
        lt.release(m, tid(0), t(100)).unwrap();
        // Contended handoff: second hold sample plus one wait sample.
        lt.acquire(m, tid(0), t(200)).unwrap();
        lt.acquire(m, tid(1), t(210)).unwrap();
        lt.release(m, tid(0), t(250)).unwrap(); // tid1 waited 40 ns
        lt.release(m, tid(1), t(300)).unwrap(); // tid1 held 50 ns

        let r = lt.report();
        assert_eq!(r.hold_hist.count(), 3);
        assert_eq!(r.wait_hist.count(), 1);
        assert_eq!(r.hold_hist.sum(), 100 + 50 + 50);
        assert_eq!(r.wait_hist.sum(), 40);
        // Quantiles report power-of-two bucket upper bounds.
        let p50 = r.hold_hist.quantile(0.5).expect("non-empty");
        assert!(p50 >= 50, "{p50}");
        assert!(r.wait_hist.quantile(0.99).expect("non-empty") >= 40);
    }

    #[test]
    fn display_report_is_readable() {
        let mut lt = LockTable::new();
        let m = lt.create("db");
        lt.acquire(m, tid(0), t(0)).unwrap();
        lt.release(m, tid(0), t(5)).unwrap();
        let text = lt.report().to_string();
        assert!(text.contains("1 acquisitions"), "{text}");
        assert!(text.contains("db:"), "{text}");
    }
}
