//! Property tests over every [`LockAlg`]: mutual exclusion, exact wait
//! accounting, and eventual admission (no starvation), driven by a
//! deterministic pseudo-random schedule (std-only splitmix64 — the
//! workspace deliberately has no property-testing dependency).

use std::collections::HashMap;

use scalesim_sched::ThreadId;
use scalesim_simkit::SimTime;
use scalesim_sync::{AcquireOutcome, LockAlg, LockTable};

/// splitmix64: the same tiny deterministic generator the chaos layer
/// uses; good enough to shuffle acquire/release schedules.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Idle,
    Waiting { enqueued: SimTime },
    Owner,
}

/// Drives one monitor through a random schedule of acquires and
/// releases, checking the algorithm contracts at every step.
fn drive(alg: LockAlg, seed: u64, threads: usize, steps: u64) {
    let mut lt = LockTable::with_algorithm(alg);
    let m = lt.create("prop");
    let mut rng = Rng(seed);
    let mut state = vec![State::Idle; threads];
    let mut now = SimTime::ZERO;
    let mut grants_while_waiting: HashMap<usize, u64> = HashMap::new();
    // Eventual-admission bound: generous (cull period × queue capacity
    // amply covered), but finite — a starving waiter trips it.
    let starvation_bound = 64 * threads as u64 + 256;

    let on_grant = |state: &mut Vec<State>,
                    grants_while_waiting: &mut HashMap<usize, u64>,
                    next: ThreadId,
                    waited: scalesim_simkit::SimDuration,
                    now: SimTime| {
        let idx = next.index();
        let State::Waiting { enqueued } = state[idx] else {
            panic!("{alg}: granted {next} which was not waiting");
        };
        // Exact wait accounting: the audit layer reconstructs enqueue
        // instants from `waited`, so it must be exact for every
        // algorithm, parked or spinning.
        assert_eq!(
            waited,
            now.saturating_since(enqueued),
            "{alg}: grant.waited must be exactly now - enqueue time"
        );
        state[idx] = State::Owner;
        grants_while_waiting.remove(&idx);
    };

    for _ in 0..steps {
        now = SimTime::from_nanos(now.as_nanos() + 1 + rng.below(1000));
        let tid = rng.below(threads as u64) as usize;
        match state[tid] {
            State::Idle => match lt.acquire(m, ThreadId::new(tid), now).unwrap() {
                AcquireOutcome::Acquired => {
                    state[tid] = State::Owner;
                    // Mutual exclusion: a fast-path acquire only happens
                    // on a free monitor.
                    assert_eq!(
                        state.iter().filter(|&&s| s == State::Owner).count(),
                        1,
                        "{alg}: fast-path acquire on a held monitor"
                    );
                }
                AcquireOutcome::Contended => {
                    state[tid] = State::Waiting { enqueued: now };
                    grants_while_waiting.insert(tid, 0);
                    assert!(
                        lt.is_waiting(m, ThreadId::new(tid)),
                        "{alg}: contended waiter invisible to is_waiting"
                    );
                }
            },
            State::Owner => {
                if let Some(g) = lt.release(m, ThreadId::new(tid), now).unwrap() {
                    state[tid] = State::Idle;
                    on_grant(&mut state, &mut grants_while_waiting, g.next, g.waited, now);
                    for count in grants_while_waiting.values_mut() {
                        *count += 1;
                        assert!(
                            *count < starvation_bound,
                            "{alg}: a waiter starved past {starvation_bound} grants"
                        );
                    }
                } else {
                    state[tid] = State::Idle;
                    assert_eq!(lt.owner(m), None, "{alg}: empty release left an owner");
                    assert_eq!(
                        lt.held_since(m),
                        None,
                        "{alg}: held_since must be None while unowned"
                    );
                }
            }
            State::Waiting { .. } => {} // blocked; nothing to do
        }

        // Mutual exclusion, continuously: the table's owner matches the
        // unique thread in Owner state.
        let owners: Vec<_> = (0..threads).filter(|&i| state[i] == State::Owner).collect();
        assert!(owners.len() <= 1, "{alg}: two threads own one monitor");
        assert_eq!(
            lt.owner(m),
            owners.first().map(|&i| ThreadId::new(i)),
            "{alg}: table owner disagrees with driver state"
        );
    }

    // Drain: the owner releases until the queue empties. Every waiter
    // must be admitted (eventual admission at shutdown).
    let mut drained = 0u64;
    while let Some(owner) = lt.owner(m) {
        now = SimTime::from_nanos(now.as_nanos() + 1);
        let grant = lt.release(m, owner, now).unwrap();
        if let Some(g) = grant {
            on_grant(&mut state, &mut grants_while_waiting, g.next, g.waited, now);
        } else {
            state[owner.index()] = State::Idle;
        }
        drained += 1;
        assert!(drained < 10_000, "{alg}: drain loop did not terminate");
    }
    assert_eq!(
        lt.queue_len(m),
        0,
        "{alg}: drained monitor still has waiters"
    );
    assert!(
        state.iter().all(|s| !matches!(s, State::Waiting { .. })),
        "{alg}: a waiter was never admitted"
    );

    // Counter equality on a fully drained run: every contention was
    // eventually granted, so no truncation residue remains.
    let r = lt.report();
    assert_eq!(r.total.queued, 0, "{alg}");
    assert!(r.total.acquisitions >= r.total.contentions, "{alg}");
}

#[test]
fn every_algorithm_upholds_exclusion_and_admission() {
    for alg in LockAlg::ALL {
        for seed in [1_u64, 42, 0xdead_beef] {
            for threads in [2usize, 5, 16] {
                drive(alg, seed, threads, 4_000);
            }
        }
    }
}

#[test]
fn fifo_dyn_upholds_the_same_properties() {
    drive(LockAlg::FifoDyn, 7, 8, 4_000);
}
