//! Typed errors for the run path.
//!
//! A bad configuration or a detected invariant violation is a structured,
//! reportable failure — not a process abort. [`ConfigError`] covers
//! validation at build time, [`InvariantViolation`] covers the always-on
//! monitors checked while a run executes, and [`SimError`] is the umbrella
//! the public entry points return.

use std::fmt;

/// A rejected [`JvmConfig`](crate::JvmConfig).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The config asked for zero mutator threads.
    ZeroThreads,
    /// The nursery fraction is outside `(0, 1)` — the nursery would be
    /// empty or swallow the whole heap.
    NurseryOutOfRange {
        /// The rejected fraction.
        fraction_millis: i64,
    },
    /// The scheduler time slice is zero.
    ZeroQuantum,
    /// More parallel GC workers than enabled cores.
    GcWorkersExceedCores {
        /// Requested GC workers.
        workers: usize,
        /// Enabled cores.
        cores: usize,
    },
    /// An explicit heap-size override of zero bytes.
    ZeroHeap,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroThreads => write!(f, "need at least one mutator thread"),
            ConfigError::NurseryOutOfRange { fraction_millis } => write!(
                f,
                "nursery fraction must be in (0, 1), got {:.3}",
                *fraction_millis as f64 / 1000.0
            ),
            ConfigError::ZeroQuantum => write!(f, "scheduler quantum must be positive"),
            ConfigError::GcWorkersExceedCores { workers, cores } => {
                write!(f, "{workers} GC workers exceed the {cores} enabled cores")
            }
            ConfigError::ZeroHeap => write!(f, "heap size override must be positive"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which invariant monitor flagged a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorKind {
    /// Scheduler sanity: at most one thread per core, no lost runnable
    /// threads, occupancy consistent with per-thread state.
    Scheduler,
    /// Monitor protocol: mutual exclusion and well-formed handoff of the
    /// grant under the configured lock algorithm (re-entrant acquire,
    /// double enqueue, and non-owner release all land here).
    MonitorProtocol,
    /// Heap conservation: every allocated object is live or collected and
    /// per-region accounting is consistent.
    HeapConservation,
    /// Event-queue liveness: unfinished mutators with no pending events.
    QueueLiveness,
    /// A GC pause exceeded any physically plausible bound for the heap.
    GcPauseBound,
}

impl fmt::Display for MonitorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            MonitorKind::Scheduler => "scheduler",
            MonitorKind::MonitorProtocol => "monitor-protocol",
            MonitorKind::HeapConservation => "heap-conservation",
            MonitorKind::QueueLiveness => "queue-liveness",
            MonitorKind::GcPauseBound => "gc-pause-bound",
        };
        f.write_str(name)
    }
}

/// A violated runtime invariant, as caught by one of the always-on
/// monitors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantViolation {
    /// The monitor that flagged it.
    pub kind: MonitorKind,
    /// Human-readable description of the inconsistent state.
    pub detail: String,
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violated [{}]: {}", self.kind, self.detail)
    }
}

impl std::error::Error for InvariantViolation {}

/// Any failure the simulator's public entry points can report.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration was rejected.
    Config(ConfigError),
    /// An invariant monitor detected inconsistent runtime state.
    Invariant(InvariantViolation),
    /// An experiment driver was asked for a workload it does not know.
    UnknownApp(String),
    /// A persisted snapshot (checkpoint record or repro spec) failed to
    /// parse or reconstruct.
    Snapshot(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "bad config: {e}"),
            SimError::Invariant(v) => v.fmt(f),
            SimError::UnknownApp(name) => write!(f, "unknown app {name}"),
            SimError::Snapshot(detail) => write!(f, "snapshot: {detail}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Invariant(v) => Some(v),
            SimError::UnknownApp(_) | SimError::Snapshot(_) => None,
        }
    }
}

impl From<crate::snapshot::SnapshotError> for SimError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        SimError::Snapshot(e.0)
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<InvariantViolation> for SimError {
    fn from(v: InvariantViolation) -> Self {
        SimError::Invariant(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_errors_display() {
        assert!(ConfigError::ZeroThreads.to_string().contains("thread"));
        assert!(ConfigError::NurseryOutOfRange {
            fraction_millis: 1500
        }
        .to_string()
        .contains("1.500"));
        assert!(ConfigError::ZeroQuantum.to_string().contains("quantum"));
        assert!(ConfigError::GcWorkersExceedCores {
            workers: 9,
            cores: 4
        }
        .to_string()
        .contains("9 GC workers"));
        assert!(ConfigError::ZeroHeap.to_string().contains("heap"));
    }

    #[test]
    fn sim_error_wraps_and_sources() {
        use std::error::Error;
        let e: SimError = ConfigError::ZeroThreads.into();
        assert!(matches!(e, SimError::Config(_)));
        assert!(e.source().is_some());

        let v: SimError = InvariantViolation {
            kind: MonitorKind::Scheduler,
            detail: "two threads on core 3".to_owned(),
        }
        .into();
        assert!(v.to_string().contains("scheduler"));
        assert!(v.to_string().contains("core 3"));

        let u = SimError::UnknownApp("frobnicate".to_owned());
        assert!(u.to_string().contains("frobnicate"));
        assert!(u.source().is_none());
    }
}
