//! Trace-driven GC simulation.
//!
//! Elephant Tracks exists precisely to decouple *measuring* object
//! lifetimes from *evaluating* collectors: a recorded trace can be
//! replayed through different heap configurations without re-running the
//! application. The paper's methodology (heap fixed at 3× the minimum)
//! comes from that tradition; [`replay_gc`] reproduces it — record a
//! trace once with [`Retention::Full`], then sweep heap sizes, layouts or
//! cost models over the same object population.
//!
//! Replay is exact with respect to the allocation clock: events carry
//! their original order, so lifespans, survival and promotion decisions
//! depend only on the replayed heap configuration.
//!
//! [`Retention::Full`]: scalesim_objtrace::Retention::Full

use std::collections::HashMap;

use scalesim_gc::{Collector, GcCostModel, GcLog};
use scalesim_heap::{AllocResult, Heap, HeapConfig, ObjectId};
use scalesim_objtrace::{ObjSeq, TraceEvent};
use scalesim_sched::ThreadId;
use scalesim_simkit::SimTime;

/// Results of replaying a trace through one heap configuration.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// Every collection the replay triggered.
    pub gc: GcLog,
    /// Objects/bytes processed (equals the trace's totals).
    pub objects: u64,
    /// Bytes allocated over the whole replay.
    pub bytes: u64,
    /// Peak live bytes observed (a lower bound on any workable heap).
    pub peak_live_bytes: u64,
}

/// Replays an in-order object trace against a fresh heap, running the
/// collector whenever an allocation does not fit.
///
/// `mutator_threads` is used for the safepoint component of the pause
/// model (the thread count the trace was recorded under).
///
/// # Panics
///
/// Panics if the trace is malformed (a death without a matching
/// allocation, or an allocation larger than a nursery region of the
/// replayed configuration), or if the configuration is genuinely too
/// small (promotion overflows the mature space even after a full
/// collection).
#[must_use]
pub fn replay_gc(
    events: &[TraceEvent],
    config: HeapConfig,
    model: GcCostModel,
    mutator_threads: usize,
) -> ReplayOutcome {
    let mut heap = Heap::new(config);
    let mut collector = Collector::new(model);
    let mut live: HashMap<ObjSeq, ObjectId> = HashMap::new();
    let mut live_bytes = 0u64;
    let mut peak_live_bytes = 0u64;

    for event in events {
        match *event {
            TraceEvent::Alloc {
                obj, thread, size, ..
            } => {
                let tid = ThreadId::new(thread);
                let id = loop {
                    match heap.alloc(tid, size) {
                        AllocResult::Ok(id) => break id,
                        AllocResult::NurseryFull { region } => {
                            let at = SimTime::from_nanos(heap.clock());
                            collector.collect_minor(&mut heap, region, mutator_threads, at);
                        }
                    }
                };
                let previous = live.insert(obj, id);
                assert!(previous.is_none(), "trace allocates object {obj} twice");
                live_bytes += size;
                peak_live_bytes = peak_live_bytes.max(live_bytes);
            }
            TraceEvent::Death { obj, .. } => {
                let id = live
                    .remove(&obj)
                    .unwrap_or_else(|| panic!("trace kills unknown object {obj}"));
                let death = heap.kill(id);
                live_bytes -= death.size;
            }
        }
    }

    let stats = *heap.stats();
    ReplayOutcome {
        gc: collector.into_log(),
        objects: stats.objects_allocated,
        bytes: stats.bytes_allocated,
        peak_live_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_gc::GcKind;
    use scalesim_heap::NurseryLayout;

    /// A synthetic trace: `n` objects of `size` bytes, each dying after
    /// `overlap` further allocations.
    fn synthetic_trace(n: u64, size: u64, overlap: u64) -> Vec<TraceEvent> {
        let mut events = Vec::new();
        let mut clock = 0;
        for i in 0..n {
            clock += size;
            events.push(TraceEvent::Alloc {
                obj: i,
                thread: (i % 4) as usize,
                size,
                clock,
            });
            if i >= overlap {
                events.push(TraceEvent::Death {
                    obj: i - overlap,
                    lifespan: overlap * size,
                    clock,
                });
            }
        }
        for i in n.saturating_sub(overlap)..n {
            events.push(TraceEvent::Death {
                obj: i,
                lifespan: (n - i) * size,
                clock,
            });
        }
        events
    }

    fn config(total: u64) -> HeapConfig {
        HeapConfig::new(total, 1.0 / 3.0, NurseryLayout::Shared)
    }

    fn model() -> GcCostModel {
        GcCostModel::hotspot_like(4, 1.0)
    }

    #[test]
    fn replay_collects_when_the_nursery_fills() {
        // 1 MiB of allocation through a 340 KiB nursery region
        let trace = synthetic_trace(1024, 1024, 8);
        let out = replay_gc(&trace, config(1 << 20), model(), 4);
        assert_eq!(out.objects, 1024);
        assert_eq!(out.bytes, 1 << 20);
        assert!(out.gc.count(GcKind::Minor) >= 2);
        assert_eq!(out.peak_live_bytes, 9 * 1024);
    }

    #[test]
    fn bigger_heaps_collect_less() {
        let trace = synthetic_trace(4096, 1024, 16);
        let small = replay_gc(&trace, config(1 << 20), model(), 4);
        let big = replay_gc(&trace, config(8 << 20), model(), 4);
        assert!(
            big.gc.collections() < small.gc.collections(),
            "{} vs {}",
            big.gc.collections(),
            small.gc.collections()
        );
        assert!(big.gc.total_pause() < small.gc.total_pause());
    }

    #[test]
    fn long_overlaps_survive_and_promote() {
        // objects live across ~2 nursery fills -> survivors -> promotions
        let trace = synthetic_trace(4096, 1024, 700);
        let out = replay_gc(&trace, config(1 << 20), model(), 4);
        assert!(out.gc.survived_bytes() > 0);
        assert!(out.gc.promoted_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "kills unknown object")]
    fn malformed_trace_panics() {
        let events = vec![TraceEvent::Death {
            obj: 7,
            lifespan: 0,
            clock: 0,
        }];
        let _ = replay_gc(&events, config(1 << 20), model(), 1);
    }

    #[test]
    fn replaying_a_recorded_run_matches_its_allocation_totals() {
        use crate::{Jvm, JvmConfig};
        use scalesim_objtrace::Retention;
        use scalesim_workloads::{xalan, AppModel};

        let app = xalan().scaled(0.005);
        let report = Jvm::new(
            JvmConfig::builder()
                .threads(4)
                .retention(Retention::Full)
                .seed(42)
                .build()
                .unwrap(),
        )
        .run(&app)
        .unwrap();
        let events = report.trace.events().expect("full retention");
        let cfg = config(3 * app.min_heap_bytes());
        let out = replay_gc(events, cfg, model(), 4);
        assert_eq!(out.objects, report.trace.allocations());
        assert_eq!(out.bytes, report.trace.allocated_bytes());
    }
}
