//! # scalesim-core
//!
//! The JVM-like managed runtime simulator — the measurement system at the
//! heart of the ISPASS'15 reproduction.
//!
//! [`Jvm`] glues the substrates together: a [`MachineTopology`] supplies
//! cores, the [`CpuScheduler`] time-shares them among mutator and helper
//! threads, the [`LockTable`] arbitrates monitors, the [`Heap`] tracks the
//! allocation clock and occupancy, the [`Collector`] runs stop-the-world
//! generational collections, and the [`ObjectTracer`] records every
//! object's lifespan. A run executes an [`AppModel`] to completion and
//! yields a [`RunReport`] carrying exactly the observables the paper's
//! figures plot.
//!
//! The paper's two future-work proposals are first-class configuration:
//! [`SchedPolicy::Biased`] cohort scheduling and per-thread nursery
//! heaplets (`JvmConfigBuilder::heaplets`).
//!
//! [`MachineTopology`]: scalesim_machine::MachineTopology
//! [`CpuScheduler`]: scalesim_sched::CpuScheduler
//! [`LockTable`]: scalesim_sync::LockTable
//! [`Heap`]: scalesim_heap::Heap
//! [`Collector`]: scalesim_gc::Collector
//! [`ObjectTracer`]: scalesim_objtrace::ObjectTracer
//! [`AppModel`]: scalesim_workloads::AppModel
//! [`SchedPolicy::Biased`]: scalesim_sched::SchedPolicy::Biased
//!
//! ```
//! use scalesim_core::{Jvm, JvmConfig};
//! use scalesim_workloads::lusearch;
//!
//! let config = JvmConfig::builder().threads(8).build().unwrap();
//! let report = Jvm::new(config).run(&lusearch().scaled(0.01)).unwrap();
//! println!("{report}");
//! assert!(report.gc_share() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod error;
pub mod json;
mod replay;
mod report;
mod runtime;
mod server;
pub mod snapshot;

pub use config::{JvmConfig, JvmConfigBuilder, OldGenPolicy};
pub use error::{ConfigError, InvariantViolation, MonitorKind, SimError};
pub use json::JsonValue;
pub use replay::{replay_gc, ReplayOutcome};
pub use report::{RunOutcome, RunReport, ServerStats, ThreadReport};
pub use runtime::Jvm;
pub use scalesim_sync::LockAlg;
pub use scalesim_trace::TraceConfig;
pub use snapshot::{report_from_json, report_to_json, ReproSpec, SnapshotError};
