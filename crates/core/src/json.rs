//! Minimal lossless JSON for checkpoint and repro records.
//!
//! The CI validator in `scalesim-trace` parses numbers into `f64`, which
//! silently rounds integers above 2^53 — fatal for checkpoint records
//! that must round-trip `u64::MAX` sentinels bit-exactly. This module is
//! the persistence-grade counterpart: integers are `u64` end to end,
//! anything wider (or floating) travels as a string, and the writer and
//! parser are exact inverses on every value the snapshot layer emits.

use std::fmt;

/// A JSON value restricted to what lossless persistence needs: no
/// floats, no negatives, no `null`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonValue {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, held exactly.
    U64(u64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, as ordered `(key, value)` pairs.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON document; trailing garbage is an error.
    ///
    /// Numbers must be unsigned integers that fit in `u64` — the only
    /// numeric shape the snapshot writer emits.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.parse_value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing data after document"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::U64(n) => write!(f, "{n}"),
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, key)?;
                    write!(f, ":{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> String {
        format!("json byte {}: {}", self.pos, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(self.error(&format!("unexpected byte `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected `{lit}`")))
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.pos += 1; // '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            if self.bump() != Some(b':') {
                return Err(self.error("expected `:` in object"));
            }
            pairs.push((key, self.parse_value()?));
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(JsonValue::Obj(pairs)),
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(JsonValue::Arr(items)),
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        if self.bump() != Some(b'"') {
            return Err(self.error("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = self
                            .bytes
                            .get(self.pos..self.pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| self.error("truncated \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| self.error("bad \\u escape"))?;
                        self.pos += 4;
                        // The writer never emits surrogate pairs.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.error("bad escape")),
                },
                Some(b) if b < 0x20 => return Err(self.error("raw control byte in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Re-assemble multi-byte UTF-8 by copying raw bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xc0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(self.error("only unsigned integers are supported"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        raw.parse::<u64>()
            .map(JsonValue::U64)
            .map_err(|_| self.error(&format!("integer out of range `{raw}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_shape() {
        let doc = JsonValue::Obj(vec![
            ("max".to_owned(), JsonValue::U64(u64::MAX)),
            ("zero".to_owned(), JsonValue::U64(0)),
            ("flag".to_owned(), JsonValue::Bool(true)),
            (
                "text".to_owned(),
                JsonValue::Str("quote \" slash \\ nl \n tab \t café".to_owned()),
            ),
            (
                "arr".to_owned(),
                JsonValue::Arr(vec![JsonValue::U64(1), JsonValue::Obj(vec![])]),
            ),
        ]);
        let text = doc.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn u64_max_survives_exactly() {
        let text = JsonValue::U64(u64::MAX).to_string();
        assert_eq!(text, u64::MAX.to_string());
        assert_eq!(JsonValue::parse(&text).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_floats_negatives_null_and_garbage() {
        assert!(JsonValue::parse("1.5").is_err());
        assert!(JsonValue::parse("-3").is_err());
        assert!(JsonValue::parse("1e3").is_err());
        assert!(JsonValue::parse("null").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 3").is_err());
        assert!(JsonValue::parse("18446744073709551616").is_err()); // u64::MAX + 1
    }

    #[test]
    fn control_chars_escape_and_decode() {
        let doc = JsonValue::Str("\u{1} bell \u{7}".to_owned());
        let text = doc.to_string();
        assert!(text.contains("\\u0001"));
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
    }

    #[test]
    fn object_lookup_and_accessors() {
        let doc = JsonValue::parse(r#"{"a":7,"b":"x","c":[true]}"#).unwrap();
        assert_eq!(doc.get("a").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(doc.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap().len(), 1);
        assert_eq!(
            doc.get("c").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert!(doc.get("missing").is_none());
    }
}
