//! Lossless persistence for run reports and minimal repro specs.
//!
//! The checkpoint store (PR 4's durable sweep resume) persists each
//! completed `(app, config, seed) → RunReport` and verifies it on load by
//! recomputing the report's fingerprint — a hash of its `Debug`
//! rendering. That only works if serialization is *exactly* lossless:
//! every internal sentinel (`u64::MAX` histogram minima, raw ring-buffer
//! order in timelines) must survive the round trip so the rebuilt report
//! is `Debug`-identical to the original. [`report_to_json`] and
//! [`report_from_json`] are that pair of inverses.
//!
//! [`ReproSpec`] is the companion for failure shrinking: a self-contained
//! description of one failing run (app, workload size, config knobs,
//! chaos plan, budget) that `scalesim repro <file>` can re-execute
//! without the sweep that produced it.

use std::fmt;

use scalesim_gc::{GcEvent, GcKind, GcLog};
use scalesim_heap::HeapStats;
use scalesim_metrics::LogHistogram;
use scalesim_objtrace::{ObjectTracer, Retention, TraceEvent, TracerSnapshot};
use scalesim_sched::StateTimes;
use scalesim_simkit::{AbortReason, ChaosConfig, RunBudget, SimDuration, SimTime};
use scalesim_sync::{LockAlg, LockReport, MonitorStats};
use scalesim_trace::{CounterId, Counters, EventKind, Timeline, TimelineEvent, TraceConfig};
use scalesim_workloads::{
    app_by_name, AppModel, ArrivalProcess, Backoff, ClientPolicy, LockProfile, RequestClass,
    ServerPolicy, ServerSpec, SyntheticApp,
};

use crate::config::JvmConfig;
use crate::error::SimError;
use crate::json::JsonValue;
use crate::report::{RunOutcome, RunReport, ServerStats, ThreadReport};

/// A snapshot (de)serialization failure: a missing key, a wrong shape,
/// or an unknown enum tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError(pub String);

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "snapshot: {}", self.0)
    }
}

impl std::error::Error for SnapshotError {}

fn err(message: impl Into<String>) -> SnapshotError {
    SnapshotError(message.into())
}

// ---------------------------------------------------------------------
// JSON building / reading helpers
// ---------------------------------------------------------------------

fn u(n: u64) -> JsonValue {
    JsonValue::U64(n)
}

fn s(text: &str) -> JsonValue {
    JsonValue::Str(text.to_owned())
}

fn obj(pairs: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
}

fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, SnapshotError> {
    v.get(key)
        .ok_or_else(|| err(format!("missing key `{key}`")))
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, SnapshotError> {
    get(v, key)?
        .as_u64()
        .ok_or_else(|| err(format!("`{key}` is not an integer")))
}

fn get_usize(v: &JsonValue, key: &str) -> Result<usize, SnapshotError> {
    usize::try_from(get_u64(v, key)?).map_err(|_| err(format!("`{key}` exceeds usize")))
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, SnapshotError> {
    get(v, key)?
        .as_bool()
        .ok_or_else(|| err(format!("`{key}` is not a boolean")))
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, SnapshotError> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| err(format!("`{key}` is not a string")))
}

fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], SnapshotError> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| err(format!("`{key}` is not an array")))
}

fn item_u64(items: &[JsonValue], i: usize, what: &str) -> Result<u64, SnapshotError> {
    items
        .get(i)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| err(format!("{what}[{i}] is not an integer")))
}

// ---------------------------------------------------------------------
// Leaf encoders/decoders
// ---------------------------------------------------------------------

fn dur(d: SimDuration) -> JsonValue {
    u(d.as_nanos())
}

fn hist_to_json(h: &LogHistogram) -> JsonValue {
    let buckets: Vec<JsonValue> = h
        .bucket_counts()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| JsonValue::Arr(vec![u(i as u64), u(c)]))
        .collect();
    obj(vec![
        ("buckets", JsonValue::Arr(buckets)),
        ("count", u(h.count())),
        // u128 exceeds the JSON integer range we guarantee; decimal text.
        ("sum", s(&h.sum().to_string())),
        ("min", u(h.raw_min())),
        ("max", u(h.raw_max())),
    ])
}

fn hist_from_json(v: &JsonValue) -> Result<LogHistogram, SnapshotError> {
    let mut buckets = [0u64; 64];
    for entry in get_arr(v, "buckets")? {
        let pair = entry
            .as_arr()
            .ok_or_else(|| err("histogram bucket is not a pair"))?;
        let idx = usize::try_from(item_u64(pair, 0, "bucket")?)
            .ok()
            .filter(|&i| i < 64)
            .ok_or_else(|| err("histogram bucket index out of range"))?;
        buckets[idx] = item_u64(pair, 1, "bucket")?;
    }
    let sum: u128 = get_str(v, "sum")?
        .parse()
        .map_err(|_| err("histogram sum is not a u128"))?;
    Ok(LogHistogram::from_raw_parts(
        buckets,
        get_u64(v, "count")?,
        sum,
        get_u64(v, "min")?,
        get_u64(v, "max")?,
    ))
}

fn server_stats_to_json(stats: &ServerStats) -> JsonValue {
    obj(vec![
        ("policy", s(&stats.policy)),
        ("arrivals", u(stats.arrivals)),
        ("goodput", u(stats.goodput)),
        ("orphans", u(stats.orphan_completions)),
        ("sheds", u(stats.sheds)),
        ("timeouts", u(stats.timeouts)),
        ("retries", u(stats.retries)),
        ("in_flight", u(stats.in_flight)),
        ("degraded", JsonValue::Bool(stats.degraded)),
        ("latency", hist_to_json(&stats.latency)),
        ("queue_depth", hist_to_json(&stats.queue_depth)),
        ("tail_goodput", u(stats.tail_goodput)),
        ("tail_arrivals", u(stats.tail_arrivals)),
    ])
}

fn server_stats_from_json(v: &JsonValue) -> Result<ServerStats, SnapshotError> {
    Ok(ServerStats {
        policy: get_str(v, "policy")?.to_owned(),
        arrivals: get_u64(v, "arrivals")?,
        goodput: get_u64(v, "goodput")?,
        orphan_completions: get_u64(v, "orphans")?,
        sheds: get_u64(v, "sheds")?,
        timeouts: get_u64(v, "timeouts")?,
        retries: get_u64(v, "retries")?,
        in_flight: get_u64(v, "in_flight")?,
        degraded: get_bool(v, "degraded")?,
        latency: hist_from_json(get(v, "latency")?)?,
        queue_depth: hist_from_json(get(v, "queue_depth")?)?,
        tail_goodput: get_u64(v, "tail_goodput")?,
        tail_arrivals: get_u64(v, "tail_arrivals")?,
    })
}

fn gc_kind_name(kind: GcKind) -> &'static str {
    match kind {
        GcKind::Minor => "minor",
        GcKind::LocalMinor => "local",
        GcKind::Full => "full",
        GcKind::ConcurrentOld => "conc",
    }
}

fn gc_kind_from_name(name: &str) -> Result<GcKind, SnapshotError> {
    match name {
        "minor" => Ok(GcKind::Minor),
        "local" => Ok(GcKind::LocalMinor),
        "full" => Ok(GcKind::Full),
        "conc" => Ok(GcKind::ConcurrentOld),
        other => Err(err(format!("unknown gc kind `{other}`"))),
    }
}

fn gc_log_to_json(log: &GcLog) -> JsonValue {
    JsonValue::Arr(
        log.events()
            .iter()
            .map(|e| {
                JsonValue::Arr(vec![
                    s(gc_kind_name(e.kind)),
                    u(e.at.as_nanos()),
                    dur(e.pause),
                    u(e.region as u64),
                    u(e.collected_bytes),
                    u(e.survived_bytes),
                    u(e.promoted_bytes),
                ])
            })
            .collect(),
    )
}

fn gc_log_from_json(v: &JsonValue) -> Result<GcLog, SnapshotError> {
    let mut log = GcLog::new();
    for entry in v.as_arr().ok_or_else(|| err("`gc` is not an array"))? {
        let row = entry
            .as_arr()
            .filter(|r| r.len() == 7)
            .ok_or_else(|| err("gc event is not a 7-tuple"))?;
        let kind = gc_kind_from_name(
            row[0]
                .as_str()
                .ok_or_else(|| err("gc event kind is not a string"))?,
        )?;
        log.push(GcEvent {
            kind,
            at: SimTime::from_nanos(item_u64(row, 1, "gc")?),
            pause: SimDuration::from_nanos(item_u64(row, 2, "gc")?),
            region: usize::try_from(item_u64(row, 3, "gc")?)
                .map_err(|_| err("gc region exceeds usize"))?,
            collected_bytes: item_u64(row, 4, "gc")?,
            survived_bytes: item_u64(row, 5, "gc")?,
            promoted_bytes: item_u64(row, 6, "gc")?,
        });
    }
    Ok(log)
}

fn stats_to_json(m: &MonitorStats) -> JsonValue {
    JsonValue::Arr(vec![
        u(m.acquisitions),
        u(m.contentions),
        dur(m.total_wait),
        dur(m.max_wait),
        dur(m.total_hold),
        u(m.queued),
    ])
}

fn stats_from_json(v: &JsonValue) -> Result<MonitorStats, SnapshotError> {
    // 5-tuples are accepted for compatibility with snapshots written
    // before truncated-waiter accounting (`queued` defaults to 0).
    let row = v
        .as_arr()
        .filter(|r| r.len() == 5 || r.len() == 6)
        .ok_or_else(|| err("monitor stats is not a 5- or 6-tuple"))?;
    Ok(MonitorStats {
        acquisitions: item_u64(row, 0, "stats")?,
        contentions: item_u64(row, 1, "stats")?,
        total_wait: SimDuration::from_nanos(item_u64(row, 2, "stats")?),
        max_wait: SimDuration::from_nanos(item_u64(row, 3, "stats")?),
        total_hold: SimDuration::from_nanos(item_u64(row, 4, "stats")?),
        queued: if row.len() == 6 {
            item_u64(row, 5, "stats")?
        } else {
            0
        },
    })
}

fn locks_to_json(locks: &LockReport) -> JsonValue {
    let by_class: Vec<JsonValue> = locks
        .by_class
        .iter()
        .map(|(name, stats)| JsonValue::Arr(vec![s(name), stats_to_json(stats)]))
        .collect();
    obj(vec![
        ("total", stats_to_json(&locks.total)),
        ("by_class", JsonValue::Arr(by_class)),
        ("hold_hist", hist_to_json(&locks.hold_hist)),
        ("wait_hist", hist_to_json(&locks.wait_hist)),
    ])
}

fn locks_from_json(v: &JsonValue) -> Result<LockReport, SnapshotError> {
    let mut by_class = std::collections::BTreeMap::new();
    for entry in get_arr(v, "by_class")? {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| err("lock class entry is not a pair"))?;
        let name = pair[0]
            .as_str()
            .ok_or_else(|| err("lock class name is not a string"))?;
        by_class.insert(name.to_owned(), stats_from_json(&pair[1])?);
    }
    Ok(LockReport {
        by_class,
        total: stats_from_json(get(v, "total")?)?,
        hold_hist: hist_from_json(get(v, "hold_hist")?)?,
        wait_hist: hist_from_json(get(v, "wait_hist")?)?,
    })
}

fn retention_name(retention: Retention) -> &'static str {
    match retention {
        Retention::HistogramOnly => "hist",
        Retention::Full => "full",
    }
}

fn retention_from_name(name: &str) -> Result<Retention, SnapshotError> {
    match name {
        "hist" => Ok(Retention::HistogramOnly),
        "full" => Ok(Retention::Full),
        other => Err(err(format!("unknown retention `{other}`"))),
    }
}

fn trace_event_to_json(e: &TraceEvent) -> JsonValue {
    match *e {
        TraceEvent::Alloc {
            obj: o,
            thread,
            size,
            clock,
        } => JsonValue::Arr(vec![s("A"), u(o), u(thread as u64), u(size), u(clock)]),
        TraceEvent::Death {
            obj: o,
            lifespan,
            clock,
        } => JsonValue::Arr(vec![s("D"), u(o), u(lifespan), u(clock)]),
    }
}

fn trace_event_from_json(v: &JsonValue) -> Result<TraceEvent, SnapshotError> {
    let row = v
        .as_arr()
        .ok_or_else(|| err("trace event is not an array"))?;
    match row.first().and_then(JsonValue::as_str) {
        Some("A") if row.len() == 5 => Ok(TraceEvent::Alloc {
            obj: item_u64(row, 1, "trace")?,
            thread: usize::try_from(item_u64(row, 2, "trace")?)
                .map_err(|_| err("trace thread exceeds usize"))?,
            size: item_u64(row, 3, "trace")?,
            clock: item_u64(row, 4, "trace")?,
        }),
        Some("D") if row.len() == 4 => Ok(TraceEvent::Death {
            obj: item_u64(row, 1, "trace")?,
            lifespan: item_u64(row, 2, "trace")?,
            clock: item_u64(row, 3, "trace")?,
        }),
        _ => Err(err("malformed trace event")),
    }
}

fn tracer_to_json(tracer: &ObjectTracer) -> JsonValue {
    let snap = tracer.snapshot();
    obj(vec![
        ("retention", s(retention_name(snap.retention))),
        ("hist", hist_to_json(&snap.hist)),
        (
            "exact",
            JsonValue::Arr(snap.exact.iter().map(|&v| u(v)).collect()),
        ),
        (
            "events",
            JsonValue::Arr(snap.events.iter().map(trace_event_to_json).collect()),
        ),
        ("next_seq", u(snap.next_seq)),
        (
            "owners",
            JsonValue::Arr(snap.owners.iter().map(|&t| u(t as u64)).collect()),
        ),
        (
            "per_thread",
            JsonValue::Arr(snap.per_thread.iter().map(hist_to_json).collect()),
        ),
        ("allocations", u(snap.allocations)),
        ("allocated_bytes", u(snap.allocated_bytes)),
        ("deaths", u(snap.deaths)),
        ("censored", u(snap.censored)),
    ])
}

fn tracer_from_json(v: &JsonValue) -> Result<ObjectTracer, SnapshotError> {
    let exact = get_arr(v, "exact")?
        .iter()
        .map(|e| e.as_u64().ok_or_else(|| err("exact lifespan not integer")))
        .collect::<Result<Vec<u64>, _>>()?;
    let events = get_arr(v, "events")?
        .iter()
        .map(trace_event_from_json)
        .collect::<Result<Vec<TraceEvent>, _>>()?;
    let owners = get_arr(v, "owners")?
        .iter()
        .map(|e| {
            e.as_u64()
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| err("owner not a thread index"))
        })
        .collect::<Result<Vec<usize>, _>>()?;
    let per_thread = get_arr(v, "per_thread")?
        .iter()
        .map(hist_from_json)
        .collect::<Result<Vec<LogHistogram>, _>>()?;
    Ok(ObjectTracer::from_snapshot(TracerSnapshot {
        retention: retention_from_name(get_str(v, "retention")?)?,
        hist: hist_from_json(get(v, "hist")?)?,
        exact,
        events,
        next_seq: get_u64(v, "next_seq")?,
        owners,
        per_thread,
        allocations: get_u64(v, "allocations")?,
        allocated_bytes: get_u64(v, "allocated_bytes")?,
        deaths: get_u64(v, "deaths")?,
        censored: get_u64(v, "censored")?,
    }))
}

fn thread_report_to_json(t: &ThreadReport) -> JsonValue {
    JsonValue::Arr(vec![
        u(t.items_done),
        dur(t.times.running),
        dur(t.times.runnable_wait),
        dur(t.times.blocked_monitor),
        dur(t.times.blocked_starved),
        dur(t.times.blocked_sleep),
        dur(t.times.gc_paused),
        u(t.dispatches),
        u(t.preemptions),
    ])
}

fn thread_report_from_json(v: &JsonValue) -> Result<ThreadReport, SnapshotError> {
    let row = v
        .as_arr()
        .filter(|r| r.len() == 9)
        .ok_or_else(|| err("thread report is not a 9-tuple"))?;
    let d = |i: usize| -> Result<SimDuration, SnapshotError> {
        Ok(SimDuration::from_nanos(item_u64(row, i, "thread")?))
    };
    Ok(ThreadReport {
        items_done: item_u64(row, 0, "thread")?,
        times: StateTimes {
            running: d(1)?,
            runnable_wait: d(2)?,
            blocked_monitor: d(3)?,
            blocked_starved: d(4)?,
            blocked_sleep: d(5)?,
            gc_paused: d(6)?,
        },
        dispatches: item_u64(row, 7, "thread")?,
        preemptions: item_u64(row, 8, "thread")?,
    })
}

fn timeline_to_json(timeline: &Timeline) -> JsonValue {
    // Raw ring order + head, so the rebuilt recorder's internal state
    // (and therefore its Debug rendering) matches the original exactly.
    let (enabled, capacity, events, head, dropped) = timeline.raw_parts();
    let rows: Vec<JsonValue> = events
        .iter()
        .map(|e| {
            JsonValue::Arr(vec![
                s(e.kind.name()),
                u(u64::from(e.track)),
                u(e.at.as_nanos()),
                dur(e.dur),
                u(e.arg),
            ])
        })
        .collect();
    obj(vec![
        ("enabled", JsonValue::Bool(enabled)),
        ("capacity", u(capacity as u64)),
        ("head", u(head as u64)),
        ("dropped", u(dropped)),
        ("events", JsonValue::Arr(rows)),
    ])
}

fn timeline_from_json(v: &JsonValue) -> Result<Timeline, SnapshotError> {
    let events = get_arr(v, "events")?
        .iter()
        .map(|entry| {
            let row = entry
                .as_arr()
                .filter(|r| r.len() == 5)
                .ok_or_else(|| err("timeline event is not a 5-tuple"))?;
            let kind_name = row[0]
                .as_str()
                .ok_or_else(|| err("timeline kind is not a string"))?;
            let kind = EventKind::from_name(kind_name)
                .ok_or_else(|| err(format!("unknown timeline kind `{kind_name}`")))?;
            Ok(TimelineEvent {
                kind,
                track: u32::try_from(item_u64(row, 1, "timeline")?)
                    .map_err(|_| err("timeline track exceeds u32"))?,
                at: SimTime::from_nanos(item_u64(row, 2, "timeline")?),
                dur: SimDuration::from_nanos(item_u64(row, 3, "timeline")?),
                arg: item_u64(row, 4, "timeline")?,
            })
        })
        .collect::<Result<Vec<TimelineEvent>, SnapshotError>>()?;
    Ok(Timeline::from_raw_parts(
        get_bool(v, "enabled")?,
        get_usize(v, "capacity")?,
        events,
        get_usize(v, "head")?,
        get_u64(v, "dropped")?,
    ))
}

fn counters_to_json(counters: &Counters) -> JsonValue {
    JsonValue::Arr(
        CounterId::ALL
            .iter()
            .map(|&id| u(counters.get(id)))
            .collect(),
    )
}

fn counters_from_json(v: &JsonValue) -> Result<Counters, SnapshotError> {
    let rows = v
        .as_arr()
        .filter(|r| r.len() == CounterId::ALL.len())
        .ok_or_else(|| err("counters is not a full slot array"))?;
    let mut counters = Counters::new();
    for (i, &id) in CounterId::ALL.iter().enumerate() {
        counters.set(id, item_u64(rows, i, "counters")?);
    }
    Ok(counters)
}

fn outcome_to_json(outcome: &RunOutcome) -> JsonValue {
    match outcome {
        RunOutcome::Ok => s("ok"),
        RunOutcome::Truncated(reason) => {
            let tagged = match reason {
                AbortReason::MaxEvents(n) => JsonValue::Arr(vec![s("events"), u(*n)]),
                AbortReason::MaxSimTime(d) => JsonValue::Arr(vec![s("sim_ns"), dur(*d)]),
                AbortReason::MaxHostMs(ms) => JsonValue::Arr(vec![s("host_ms"), u(*ms)]),
                AbortReason::Watchdog => JsonValue::Arr(vec![s("watchdog")]),
            };
            obj(vec![("trunc", tagged)])
        }
        RunOutcome::Quarantined(why) => obj(vec![("quar", s(why))]),
    }
}

fn outcome_from_json(v: &JsonValue) -> Result<RunOutcome, SnapshotError> {
    if v.as_str() == Some("ok") {
        return Ok(RunOutcome::Ok);
    }
    if let Some(why) = v.get("quar") {
        let why = why
            .as_str()
            .ok_or_else(|| err("quarantine reason is not a string"))?;
        return Ok(RunOutcome::Quarantined(why.to_owned()));
    }
    let tagged = v
        .get("trunc")
        .and_then(JsonValue::as_arr)
        .ok_or_else(|| err("malformed outcome"))?;
    let reason = match tagged.first().and_then(JsonValue::as_str) {
        Some("events") => AbortReason::MaxEvents(item_u64(tagged, 1, "trunc")?),
        Some("sim_ns") => {
            AbortReason::MaxSimTime(SimDuration::from_nanos(item_u64(tagged, 1, "trunc")?))
        }
        Some("host_ms") => AbortReason::MaxHostMs(item_u64(tagged, 1, "trunc")?),
        Some("watchdog") => AbortReason::Watchdog,
        _ => return Err(err("unknown truncation reason")),
    };
    Ok(RunOutcome::Truncated(reason))
}

// ---------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------

/// Serializes a [`RunReport`] losslessly. [`report_from_json`] inverts
/// this exactly: the rebuilt report is `Debug`-identical to the
/// original, so fingerprints computed over the `Debug` rendering verify
/// checkpointed records byte for byte.
#[must_use]
pub fn report_to_json(report: &RunReport) -> JsonValue {
    let mut pairs = vec![
        ("v", u(1)),
        ("app", s(&report.app)),
        ("threads", u(report.threads as u64)),
        ("cores", u(report.cores as u64)),
        ("wall_ns", dur(report.wall_time)),
        ("gc_ns", dur(report.gc_time)),
        ("mutator_cpu_ns", dur(report.mutator_cpu)),
        ("gc", gc_log_to_json(&report.gc)),
        ("locks", locks_to_json(&report.locks)),
        ("tracer", tracer_to_json(&report.trace)),
        (
            "heap",
            JsonValue::Arr(vec![
                u(report.heap.objects_allocated),
                u(report.heap.bytes_allocated),
                u(report.heap.objects_died),
                u(report.heap.tlab_refills),
            ]),
        ),
        (
            "per_thread",
            JsonValue::Arr(
                report
                    .per_thread
                    .iter()
                    .map(thread_report_to_json)
                    .collect(),
            ),
        ),
        ("events_processed", u(report.events_processed)),
        ("counters", counters_to_json(&report.counters)),
        ("timeline", timeline_to_json(&report.timeline)),
        ("host_ns", u(report.host_ns)),
        ("outcome", outcome_to_json(&report.outcome)),
    ];
    if let Some(stats) = &report.server {
        pairs.push(("server", server_stats_to_json(stats)));
    }
    obj(pairs)
}

/// Rebuilds a [`RunReport`] from [`report_to_json`] output.
///
/// # Errors
///
/// Returns a [`SnapshotError`] naming the first missing or malformed
/// field (including an unknown schema version).
pub fn report_from_json(v: &JsonValue) -> Result<RunReport, SnapshotError> {
    let version = get_u64(v, "v")?;
    if version != 1 {
        return Err(err(format!("unsupported snapshot version {version}")));
    }
    let heap_row = get_arr(v, "heap")?;
    if heap_row.len() != 4 {
        return Err(err("`heap` is not a 4-tuple"));
    }
    Ok(RunReport {
        app: get_str(v, "app")?.to_owned(),
        threads: get_usize(v, "threads")?,
        cores: get_usize(v, "cores")?,
        wall_time: SimDuration::from_nanos(get_u64(v, "wall_ns")?),
        gc_time: SimDuration::from_nanos(get_u64(v, "gc_ns")?),
        mutator_cpu: SimDuration::from_nanos(get_u64(v, "mutator_cpu_ns")?),
        gc: gc_log_from_json(get(v, "gc")?)?,
        locks: locks_from_json(get(v, "locks")?)?,
        trace: tracer_from_json(get(v, "tracer")?)?,
        heap: HeapStats {
            objects_allocated: item_u64(heap_row, 0, "heap")?,
            bytes_allocated: item_u64(heap_row, 1, "heap")?,
            objects_died: item_u64(heap_row, 2, "heap")?,
            tlab_refills: item_u64(heap_row, 3, "heap")?,
        },
        per_thread: get_arr(v, "per_thread")?
            .iter()
            .map(thread_report_from_json)
            .collect::<Result<Vec<ThreadReport>, SnapshotError>>()?,
        events_processed: get_u64(v, "events_processed")?,
        counters: counters_from_json(get(v, "counters")?)?,
        timeline: timeline_from_json(get(v, "timeline")?)?,
        host_ns: get_u64(v, "host_ns")?,
        outcome: outcome_from_json(get(v, "outcome")?)?,
        server: match v.get("server") {
            None => None,
            Some(stats) => Some(server_stats_from_json(stats)?),
        },
    })
}

// ---------------------------------------------------------------------
// ReproSpec
// ---------------------------------------------------------------------

/// A self-contained description of one run — enough to re-execute a
/// failing spec outside the sweep that found it.
///
/// Produced by the failure shrinker (`repro-<key>.json` files), consumed
/// by the `scalesim repro` subcommand. The config is captured as the
/// knobs the sweep drivers actually vary; everything else reconstructs
/// from builder defaults. [`ReproSpec::exact`] records whether the
/// reconstructed spec's memo key matched the original at emit time.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproSpec {
    /// Application name (must resolve via the workload registry).
    pub app: String,
    /// Workload size (the scaled `total_items` of the failing spec).
    pub total_items: u64,
    /// Configured mutator threads.
    pub threads: usize,
    /// Explicit core-count override, if the spec had one.
    pub cores_override: Option<usize>,
    /// Master seed.
    pub seed: u64,
    /// Explicit heap sizing, if the spec had one.
    pub heap_bytes_override: Option<u64>,
    /// Invariant monitors on/off.
    pub monitors: bool,
    /// Object-trace retention mode.
    pub retention: Retention,
    /// Chaos fault plan.
    pub chaos: ChaosConfig,
    /// Run budget (including any watchdog deadline).
    pub budget: RunBudget,
    /// Server-workload spec, when the failing run was a request-serving
    /// run rather than a batch benchmark (the app is then only a memo
    /// carrier).
    pub server: Option<ServerSpec>,
    /// Monitor handoff algorithm of the failing run.
    pub lock_alg: LockAlg,
    /// Memo key of the spec this file reproduces.
    pub spec_key: u64,
    /// Whether reconstruction was verified key-exact at emit time.
    pub exact: bool,
}

fn chaos_to_json(chaos: &ChaosConfig) -> JsonValue {
    obj(vec![
        ("drop_wakeup", u(chaos.drop_wakeup_period)),
        ("spurious", u(chaos.spurious_wakeup_period)),
        ("gc_stall", u(chaos.gc_stall_period)),
        // f64 Display is shortest-round-trip, so the text parses back
        // to the identical bits.
        ("gc_stall_factor", s(&chaos.gc_stall_factor.to_string())),
        ("memo", u(chaos.memo_corrupt_period)),
        ("request_drop", u(chaos.request_drop_period)),
        ("panic_at", u(chaos.panic_at_event)),
    ])
}

fn chaos_from_json(v: &JsonValue) -> Result<ChaosConfig, SnapshotError> {
    Ok(ChaosConfig {
        drop_wakeup_period: get_u64(v, "drop_wakeup")?,
        spurious_wakeup_period: get_u64(v, "spurious")?,
        gc_stall_period: get_u64(v, "gc_stall")?,
        gc_stall_factor: get_str(v, "gc_stall_factor")?
            .parse()
            .map_err(|_| err("gc_stall_factor is not a float"))?,
        memo_corrupt_period: get_u64(v, "memo")?,
        request_drop_period: get_u64(v, "request_drop")?,
        panic_at_event: get_u64(v, "panic_at")?,
    })
}

fn server_spec_to_json(spec: &ServerSpec) -> JsonValue {
    let arrival = match &spec.arrival {
        ArrivalProcess::OpenPoisson { rate_per_sec } => obj(vec![
            ("kind", s("open")),
            ("rate_per_sec", u(*rate_per_sec)),
        ]),
        ArrivalProcess::ClosedLoop { clients, think_ns } => obj(vec![
            ("kind", s("closed")),
            ("clients", u(*clients as u64)),
            ("think_lo", u(think_ns.0)),
            ("think_hi", u(think_ns.1)),
        ]),
    };
    let classes: Vec<JsonValue> = spec
        .classes
        .iter()
        .map(|c| {
            let mut pairs = vec![
                ("name", s(&c.name)),
                ("weight", u(u64::from(c.weight))),
                ("priority", u(u64::from(c.priority))),
                ("svc_lo", u(c.service_ns.0)),
                ("svc_hi", u(c.service_ns.1)),
                ("alloc_bytes", u(c.alloc_bytes)),
            ];
            if let Some(lock) = &c.lock {
                pairs.extend([
                    ("lock_class", s(&lock.class)),
                    ("hold_lo", u(lock.held_ns.0)),
                    ("hold_hi", u(lock.held_ns.1)),
                ]);
            }
            obj(pairs)
        })
        .collect();
    let backoff = match spec.client.backoff {
        Backoff::None => obj(vec![("kind", s("none"))]),
        Backoff::Exponential { base_ns, cap_ns } => obj(vec![
            ("kind", s("exp")),
            ("base_ns", u(base_ns)),
            ("cap_ns", u(cap_ns)),
        ]),
    };
    let client = obj(vec![
        ("timeout_ns", u(spec.client.timeout_ns)),
        ("max_retries", u(u64::from(spec.client.max_retries))),
        ("backoff", backoff),
        ("retry_budget", u(spec.client.retry_budget)),
    ]);
    let mut policy = vec![("queue_cap", u(spec.policy.queue_cap as u64))];
    if let Some(cap) = spec.policy.admission_cap {
        policy.push(("admission_cap", u(cap as u64)));
    }
    if let Some(ns) = spec.policy.deadline_shed_ns {
        policy.push(("deadline_shed_ns", u(ns)));
    }
    if let Some(mark) = spec.policy.degrade_above {
        policy.push(("degrade_above", u(mark as u64)));
    }
    let mut pairs = vec![
        ("name", s(&spec.name)),
        ("arrival", arrival),
        ("horizon_ns", u(spec.horizon_ns)),
        ("classes", JsonValue::Arr(classes)),
        ("client", client),
        ("policy", obj(policy)),
        ("measure_from_ns", u(spec.measure_from_ns)),
    ];
    if let Some((start, end)) = spec.fault_window_ns {
        pairs.push(("fault_start", u(start)));
        pairs.push(("fault_end", u(end)));
    }
    obj(pairs)
}

fn opt_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, SnapshotError> {
    match v.get(key) {
        None => Ok(None),
        Some(entry) => entry
            .as_u64()
            .map(Some)
            .ok_or_else(|| err(format!("`{key}` is not an integer"))),
    }
}

fn server_spec_from_json(v: &JsonValue) -> Result<ServerSpec, SnapshotError> {
    let av = get(v, "arrival")?;
    let arrival = match get_str(av, "kind")? {
        "open" => ArrivalProcess::OpenPoisson {
            rate_per_sec: get_u64(av, "rate_per_sec")?,
        },
        "closed" => ArrivalProcess::ClosedLoop {
            clients: get_usize(av, "clients")?,
            think_ns: (get_u64(av, "think_lo")?, get_u64(av, "think_hi")?),
        },
        other => return Err(err(format!("unknown arrival kind `{other}`"))),
    };
    let mut classes = Vec::new();
    for cv in get_arr(v, "classes")? {
        let lock = match cv.get("lock_class") {
            None => None,
            Some(_) => Some(LockProfile {
                class: get_str(cv, "lock_class")?.to_owned(),
                held_ns: (get_u64(cv, "hold_lo")?, get_u64(cv, "hold_hi")?),
            }),
        };
        classes.push(RequestClass {
            name: get_str(cv, "name")?.to_owned(),
            weight: u32::try_from(get_u64(cv, "weight")?)
                .map_err(|_| err("class weight exceeds u32"))?,
            priority: u8::try_from(get_u64(cv, "priority")?)
                .map_err(|_| err("class priority exceeds u8"))?,
            service_ns: (get_u64(cv, "svc_lo")?, get_u64(cv, "svc_hi")?),
            lock,
            alloc_bytes: get_u64(cv, "alloc_bytes")?,
        });
    }
    let clv = get(v, "client")?;
    let bv = get(clv, "backoff")?;
    let backoff = match get_str(bv, "kind")? {
        "none" => Backoff::None,
        "exp" => Backoff::Exponential {
            base_ns: get_u64(bv, "base_ns")?,
            cap_ns: get_u64(bv, "cap_ns")?,
        },
        other => return Err(err(format!("unknown backoff kind `{other}`"))),
    };
    let client = ClientPolicy {
        timeout_ns: get_u64(clv, "timeout_ns")?,
        max_retries: u32::try_from(get_u64(clv, "max_retries")?)
            .map_err(|_| err("max_retries exceeds u32"))?,
        backoff,
        retry_budget: get_u64(clv, "retry_budget")?,
    };
    let pv = get(v, "policy")?;
    let policy = ServerPolicy {
        queue_cap: get_usize(pv, "queue_cap")?,
        admission_cap: opt_u64(pv, "admission_cap")?.map(|n| n as usize),
        deadline_shed_ns: opt_u64(pv, "deadline_shed_ns")?,
        degrade_above: opt_u64(pv, "degrade_above")?.map(|n| n as usize),
    };
    let fault_window_ns = match (opt_u64(v, "fault_start")?, opt_u64(v, "fault_end")?) {
        (Some(start), Some(end)) => Some((start, end)),
        (None, None) => None,
        _ => return Err(err("fault_start/fault_end must appear together")),
    };
    Ok(ServerSpec {
        name: get_str(v, "name")?.to_owned(),
        arrival,
        horizon_ns: get_u64(v, "horizon_ns")?,
        classes,
        client,
        policy,
        fault_window_ns,
        measure_from_ns: get_u64(v, "measure_from_ns")?,
    })
}

fn budget_to_json(budget: &RunBudget) -> JsonValue {
    let mut pairs = vec![("max_events", u(budget.max_events))];
    if let Some(limit) = budget.max_sim_time {
        pairs.push(("max_sim_ns", dur(limit)));
    }
    if let Some(ms) = budget.max_host_ms {
        pairs.push(("max_host_ms", u(ms)));
    }
    if let Some(ms) = budget.watchdog_ms {
        pairs.push(("watchdog_ms", u(ms)));
    }
    obj(pairs)
}

fn budget_from_json(v: &JsonValue) -> Result<RunBudget, SnapshotError> {
    let opt = |key: &str| -> Result<Option<u64>, SnapshotError> {
        match v.get(key) {
            None => Ok(None),
            Some(entry) => entry
                .as_u64()
                .map(Some)
                .ok_or_else(|| err(format!("`{key}` is not an integer"))),
        }
    };
    Ok(RunBudget {
        max_events: get_u64(v, "max_events")?,
        max_sim_time: opt("max_sim_ns")?.map(SimDuration::from_nanos),
        max_host_ms: opt("max_host_ms")?,
        watchdog_ms: opt("watchdog_ms")?,
    })
}

impl ReproSpec {
    /// Captures the reproducible knobs of one `(app, config)` pair.
    /// `spec_key` is the run's memo key; `exact` is set by the caller
    /// once reconstruction has been verified against it.
    #[must_use]
    pub fn capture(app: &SyntheticApp, config: &JvmConfig, spec_key: u64) -> Self {
        ReproSpec {
            app: app.name().to_owned(),
            total_items: app.spec().total_items,
            threads: config.threads,
            cores_override: config.cores_override,
            seed: config.seed,
            heap_bytes_override: config.heap_bytes_override,
            monitors: config.monitors,
            retention: config.retention,
            chaos: config.chaos,
            budget: config.budget,
            server: config.server.clone(),
            lock_alg: config.lock_alg,
            spec_key,
            exact: false,
        }
    }

    /// Serializes the spec; [`ReproSpec::from_json`] inverts this.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![
            ("v", u(1)),
            ("app", s(&self.app)),
            ("total_items", u(self.total_items)),
            ("threads", u(self.threads as u64)),
        ];
        if let Some(cores) = self.cores_override {
            pairs.push(("cores", u(cores as u64)));
        }
        pairs.push(("seed", u(self.seed)));
        if let Some(bytes) = self.heap_bytes_override {
            pairs.push(("heap_bytes", u(bytes)));
        }
        pairs.extend([
            ("monitors", JsonValue::Bool(self.monitors)),
            ("retention", s(retention_name(self.retention))),
            ("chaos", chaos_to_json(&self.chaos)),
            ("budget", budget_to_json(&self.budget)),
        ]);
        if let Some(spec) = &self.server {
            pairs.push(("server", server_spec_to_json(spec)));
        }
        // Written only when non-default, so pre-existing repro files
        // (and their hashes) are unchanged for FIFO runs.
        if self.lock_alg != LockAlg::Fifo {
            pairs.push(("lock_alg", s(self.lock_alg.as_str())));
        }
        pairs.extend([
            ("spec_key", s(&format!("{:016x}", self.spec_key))),
            ("exact", JsonValue::Bool(self.exact)),
        ]);
        obj(pairs)
    }

    /// Rebuilds a spec from [`ReproSpec::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] naming the first missing or malformed
    /// field.
    pub fn from_json(v: &JsonValue) -> Result<Self, SnapshotError> {
        let version = get_u64(v, "v")?;
        if version != 1 {
            return Err(err(format!("unsupported repro version {version}")));
        }
        let opt_usize = |key: &str| -> Result<Option<usize>, SnapshotError> {
            match v.get(key) {
                None => Ok(None),
                Some(entry) => entry
                    .as_u64()
                    .and_then(|n| usize::try_from(n).ok())
                    .map(Some)
                    .ok_or_else(|| err(format!("`{key}` is not an integer"))),
            }
        };
        let spec_key = u64::from_str_radix(get_str(v, "spec_key")?, 16)
            .map_err(|_| err("spec_key is not a hex key"))?;
        Ok(ReproSpec {
            app: get_str(v, "app")?.to_owned(),
            total_items: get_u64(v, "total_items")?,
            threads: get_usize(v, "threads")?,
            cores_override: opt_usize("cores")?,
            seed: get_u64(v, "seed")?,
            heap_bytes_override: v.get("heap_bytes").and_then(JsonValue::as_u64),
            monitors: get_bool(v, "monitors")?,
            retention: retention_from_name(get_str(v, "retention")?)?,
            chaos: chaos_from_json(get(v, "chaos")?)?,
            budget: budget_from_json(get(v, "budget")?)?,
            server: match v.get("server") {
                None => None,
                Some(spec) => Some(server_spec_from_json(spec)?),
            },
            lock_alg: match v.get("lock_alg") {
                None => LockAlg::Fifo,
                Some(name) => name
                    .as_str()
                    .and_then(LockAlg::parse)
                    .ok_or_else(|| err("lock_alg is not a known algorithm"))?,
            },
            spec_key,
            exact: get_bool(v, "exact")?,
        })
    }

    /// Rebuilds the runnable `(app, config)` pair this spec describes.
    ///
    /// The app comes from the workload registry with its `total_items`
    /// overridden; the config is built from defaults plus the captured
    /// knobs, with tracing forced off (a repro run must not depend on
    /// the invoking environment).
    ///
    /// # Errors
    ///
    /// [`SimError::UnknownApp`] when the app name no longer resolves,
    /// or [`SimError::Config`] when the captured knobs fail validation.
    pub fn reconstruct(&self) -> Result<(SyntheticApp, JvmConfig), SimError> {
        let proto = app_by_name(&self.app).ok_or_else(|| SimError::UnknownApp(self.app.clone()))?;
        let mut spec = proto.spec().clone();
        spec.total_items = self.total_items;
        let app = SyntheticApp::new(spec);
        let mut builder = JvmConfig::builder();
        builder
            .threads(self.threads)
            .seed(self.seed)
            .monitors(self.monitors)
            .retention(self.retention)
            .chaos(self.chaos)
            .budget(self.budget)
            .lock_alg(self.lock_alg)
            .trace(TraceConfig::off());
        if let Some(spec) = &self.server {
            builder.server(spec.clone());
        }
        if let Some(cores) = self.cores_override {
            builder.cores(cores);
        }
        if let Some(bytes) = self.heap_bytes_override {
            builder.heap_bytes(bytes);
        }
        Ok((app, builder.build()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Jvm;
    use scalesim_workloads::lusearch;

    fn debug_eq(a: &RunReport, b: &RunReport) {
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    fn small_report(retention: Retention, trace: TraceConfig) -> RunReport {
        let config = JvmConfig::builder()
            .threads(4)
            .seed(42)
            .retention(retention)
            .trace(trace)
            .build()
            .unwrap();
        Jvm::new(config).run(&lusearch().scaled(0.01)).unwrap()
    }

    #[test]
    fn hist_only_report_round_trips_debug_identically() {
        let report = small_report(Retention::HistogramOnly, TraceConfig::off());
        let text = report_to_json(&report).to_string();
        let back = report_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        debug_eq(&report, &back);
    }

    #[test]
    fn full_retention_traced_report_round_trips() {
        let report = small_report(Retention::Full, TraceConfig::on());
        assert!(report.timeline.is_enabled());
        assert!(report.trace.events().is_some_and(|e| !e.is_empty()));
        let text = report_to_json(&report).to_string();
        let back = report_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        debug_eq(&report, &back);
    }

    #[test]
    fn truncated_and_quarantined_outcomes_round_trip() {
        for outcome in [
            RunOutcome::Truncated(AbortReason::MaxEvents(7)),
            RunOutcome::Truncated(AbortReason::MaxSimTime(SimDuration::from_millis(3))),
            RunOutcome::Truncated(AbortReason::MaxHostMs(250)),
            RunOutcome::Truncated(AbortReason::Watchdog),
            RunOutcome::Quarantined("panic: \"quoted\"\nline two".to_owned()),
        ] {
            let mut report = RunReport::quarantined("xalan", 8, 8, "placeholder".to_owned());
            report.outcome = outcome;
            let text = report_to_json(&report).to_string();
            let back = report_from_json(&JsonValue::parse(&text).unwrap()).unwrap();
            debug_eq(&report, &back);
        }
    }

    #[test]
    fn report_from_json_rejects_malformed_documents() {
        let report = small_report(Retention::HistogramOnly, TraceConfig::off());
        let good = report_to_json(&report);
        // Unknown version.
        let mut doc = good.clone();
        if let JsonValue::Obj(pairs) = &mut doc {
            pairs[0].1 = u(9);
        }
        assert!(report_from_json(&doc).is_err());
        // Missing field.
        let mut doc = good.clone();
        if let JsonValue::Obj(pairs) = &mut doc {
            pairs.retain(|(k, _)| k != "counters");
        }
        assert!(report_from_json(&doc).is_err());
    }

    #[test]
    fn repro_spec_round_trips_and_reconstructs() {
        let chaos = ChaosConfig {
            panic_at_event: 2000,
            gc_stall_factor: 0.30000000000000004, // non-trivial f64 bits
            ..ChaosConfig::default()
        };
        let spec = ReproSpec {
            app: "xalan".to_owned(),
            total_items: 640,
            threads: 48,
            cores_override: Some(12),
            seed: 42,
            heap_bytes_override: None,
            monitors: false,
            retention: Retention::HistogramOnly,
            chaos,
            budget: RunBudget {
                max_events: 4_000_000,
                max_sim_time: None,
                max_host_ms: None,
                watchdog_ms: Some(500),
            },
            server: Some(scalesim_workloads::ServerSpec::robust(25_000, 64)),
            lock_alg: LockAlg::Malthusian,
            spec_key: 0xdead_beef_0badu64,
            exact: true,
        };
        let text = spec.to_json().to_string();
        let back = ReproSpec::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(spec, back);
        let (app, config) = back.reconstruct().unwrap();
        assert_eq!(app.name(), "xalan");
        assert_eq!(app.spec().total_items, 640);
        assert_eq!(config.threads, 48);
        assert_eq!(config.cores_override, Some(12));
        assert_eq!(config.budget.watchdog_ms, Some(500));
        assert_eq!(config.chaos.panic_at_event, 2000);
        assert_eq!(config.lock_alg, LockAlg::Malthusian);
    }

    #[test]
    fn repro_spec_fifo_emits_no_lock_alg_key() {
        // FIFO runs must serialize exactly as before the pluggable-lock
        // refactor so existing repro files and their hashes are stable.
        let spec = ReproSpec {
            app: "xalan".to_owned(),
            total_items: 1,
            threads: 1,
            cores_override: None,
            seed: 1,
            heap_bytes_override: None,
            monitors: false,
            retention: Retention::HistogramOnly,
            chaos: ChaosConfig::default(),
            budget: RunBudget::default(),
            server: None,
            lock_alg: LockAlg::Fifo,
            spec_key: 0,
            exact: false,
        };
        let text = spec.to_json().to_string();
        assert!(!text.contains("lock_alg"), "{text}");
        let back = ReproSpec::from_json(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back.lock_alg, LockAlg::Fifo);
    }

    #[test]
    fn repro_reconstruct_rejects_unknown_app() {
        let spec = ReproSpec {
            app: "no-such-app".to_owned(),
            total_items: 1,
            threads: 1,
            cores_override: None,
            seed: 1,
            heap_bytes_override: None,
            monitors: false,
            retention: Retention::HistogramOnly,
            chaos: ChaosConfig::default(),
            budget: RunBudget::default(),
            server: None,
            lock_alg: LockAlg::Fifo,
            spec_key: 0,
            exact: false,
        };
        assert!(matches!(
            spec.reconstruct(),
            Err(SimError::UnknownApp(name)) if name == "no-such-app"
        ));
    }
}
