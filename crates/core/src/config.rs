//! JVM configuration.
//!
//! [`JvmConfig`] mirrors the paper's experimental knobs: thread count,
//! enabled cores (equal to threads by default, §II-C), heap sized at 3×
//! the application's minimum requirement, the stop-the-world parallel
//! collector, plus the two future-work levers — biased (cohort)
//! scheduling and compartmentalized heaplets.

use scalesim_gc::GcCostModel;

/// How the old (mature) generation is collected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OldGenPolicy {
    /// Stop-the-world mark-compact — the paper's throughput collector.
    #[default]
    StwFull,
    /// Mostly-concurrent (CMS-like): a background thread marks and sweeps
    /// while mutators run, bracketed by two short STW pauses; promotion
    /// failure still falls back to a STW full collection ("concurrent
    /// mode failure").
    MostlyConcurrent,
}
use scalesim_machine::{MachineTopology, Placement};
use scalesim_objtrace::Retention;
use scalesim_sched::SchedPolicy;
use scalesim_simkit::{ChaosConfig, RunBudget, SimDuration};
use scalesim_sync::LockAlg;
use scalesim_trace::TraceConfig;

use crate::error::ConfigError;

/// Complete configuration for one simulated JVM run.
///
/// Build with [`JvmConfig::builder`].
///
/// # Examples
///
/// ```
/// use scalesim_core::JvmConfig;
///
/// let cfg = JvmConfig::builder().threads(16).seed(7).build().unwrap();
/// assert_eq!(cfg.threads, 16);
/// assert_eq!(cfg.cores(), 16); // paper methodology: cores = threads
/// ```
#[derive(Debug, Clone)]
pub struct JvmConfig {
    /// The machine the VM runs on.
    pub machine: MachineTopology,
    /// Number of mutator (application) threads.
    pub threads: usize,
    /// Enabled cores; `None` means "equal to `threads`" (the paper's
    /// setting), capped at the machine's core count.
    pub cores_override: Option<usize>,
    /// How enabled cores are placed across sockets.
    pub placement: Placement,
    /// OS scheduling policy.
    pub policy: SchedPolicy,
    /// Scheduling quantum.
    pub quantum: SimDuration,
    /// Cohort rotation period (biased policy only).
    pub cohort_rotation: SimDuration,
    /// Use per-thread nursery heaplets instead of a shared nursery.
    pub heaplets: bool,
    /// Total heap bytes; `None` means 3× the app's minimum heap (§II-C).
    pub heap_bytes_override: Option<u64>,
    /// Fraction of the heap given to the nursery.
    pub nursery_fraction: f64,
    /// Number of parallel GC workers; `None` means one per enabled core
    /// (the HotSpot default).
    pub gc_workers_override: Option<usize>,
    /// Number of JVM helper threads (JIT, finalizer, …) that periodically
    /// compete for cores (§II-C: "many helper threads also run
    /// concurrently with the application threads").
    pub helper_threads: usize,
    /// Mean helper burst length.
    pub helper_burst: SimDuration,
    /// Mean helper sleep between bursts.
    pub helper_period: SimDuration,
    /// Old-generation collection policy.
    pub old_gen: OldGenPolicy,
    /// Full override of the collector cost model; `None` derives a
    /// HotSpot-like model from the GC worker count and the enabled
    /// cores' mean NUMA factor. Used by sensitivity studies.
    pub gc_model_override: Option<GcCostModel>,
    /// Pause goal enabling adaptive nursery sizing (HotSpot
    /// `AdaptiveSizePolicy`): after each minor collection the nursery
    /// shrinks when the pause overshot the goal and grows when pauses sit
    /// well below it. `None` keeps the nursery fixed (the paper's
    /// measured configuration).
    pub pause_goal: Option<SimDuration>,
    /// Object-trace retention mode.
    pub retention: Retention,
    /// Hard limits on events, simulated time and host time for one run;
    /// exceeding any of them truncates the run cleanly.
    pub budget: RunBudget,
    /// Deterministic fault injection; all-off by default.
    pub chaos: ChaosConfig,
    /// Run the periodic invariant monitors (scheduler, heap conservation,
    /// monitor protocol scans). Cheap inline protocol checks are always
    /// on; this flag gates only the periodic full scans.
    pub monitors: bool,
    /// Timeline tracing: off by default; when enabled the run records
    /// deterministic state/monitor/GC spans and (optionally) exports them
    /// as Chrome trace-event JSON at the configured path.
    pub trace: TraceConfig,
    /// Salvage mode for the audit pass: instead of discarding the report
    /// when an invariant violation or simulation deadlock aborts the run,
    /// finalize it as [`RunOutcome::Quarantined`] with the recorded
    /// timeline and counters intact so the offline auditor can examine
    /// the evidence. Off by default — normal runs keep failing fast.
    ///
    /// [`RunOutcome::Quarantined`]: crate::report::RunOutcome::Quarantined
    pub salvage: bool,
    /// When set, the run executes this server-scale request workload
    /// (open/closed-loop arrivals, overload-control policies) instead of
    /// interpreting the app's batch work items. The carrier app still
    /// names the run and sizes the heap.
    pub server: Option<scalesim_workloads::ServerSpec>,
    /// Monitor handoff algorithm (FIFO baseline, MCS queue lock, or
    /// Malthusian concurrency restriction). Defaults from
    /// `SCALESIM_LOCK_ALG`, falling back to the paper-calibrated FIFO
    /// model.
    pub lock_alg: LockAlg,
    /// Master random seed; a run is a pure function of (config, app).
    pub seed: u64,
}

impl JvmConfig {
    /// Starts building a configuration from the defaults.
    #[must_use]
    pub fn builder() -> JvmConfigBuilder {
        JvmConfigBuilder::new()
    }

    /// Enabled core count after resolving the default (= threads, capped
    /// at the machine size).
    #[must_use]
    pub fn cores(&self) -> usize {
        self.cores_override
            .unwrap_or(self.threads)
            .clamp(1, self.machine.num_cores())
    }

    /// GC worker count after resolving the default (= enabled cores).
    #[must_use]
    pub fn gc_workers(&self) -> usize {
        self.gc_workers_override
            .unwrap_or_else(|| self.cores())
            .max(1)
    }

    /// Heap size for an app with the given minimum requirement: the
    /// override if set, otherwise 3× the minimum (§II-C).
    #[must_use]
    pub fn heap_bytes(&self, app_min_heap: u64) -> u64 {
        self.heap_bytes_override
            .unwrap_or_else(|| scalesim_heap::HeapSizer::three_times_min(app_min_heap))
    }

    /// Checks the configuration for structural errors.
    ///
    /// # Errors
    ///
    /// Returns the first rejection: zero threads, a nursery fraction
    /// outside `(0, 1)`, a zero scheduling quantum, more GC workers than
    /// enabled cores, or a zero heap override.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if !(self.nursery_fraction > 0.0 && self.nursery_fraction < 1.0) {
            return Err(ConfigError::NurseryOutOfRange {
                fraction_millis: (self.nursery_fraction * 1000.0).round() as i64,
            });
        }
        if self.quantum.is_zero() {
            return Err(ConfigError::ZeroQuantum);
        }
        if let Some(workers) = self.gc_workers_override {
            if workers > self.cores() {
                return Err(ConfigError::GcWorkersExceedCores {
                    workers,
                    cores: self.cores(),
                });
            }
        }
        if self.heap_bytes_override == Some(0) {
            return Err(ConfigError::ZeroHeap);
        }
        Ok(())
    }
}

impl Default for JvmConfig {
    fn default() -> Self {
        JvmConfig::builder().build().expect("defaults are valid")
    }
}

/// Non-consuming builder for [`JvmConfig`].
#[derive(Debug, Clone)]
pub struct JvmConfigBuilder {
    config: JvmConfig,
}

impl Default for JvmConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl JvmConfigBuilder {
    /// Starts from the paper's defaults: the 48-core AMD testbed, 4
    /// threads, fair scheduling, shared nursery, 2 helper threads.
    ///
    /// Budgets, chaos and tracing default from the environment
    /// (`SCALESIM_CHAOS`, `SCALESIM_MAX_EVENTS`, `SCALESIM_MAX_SIM_MS`,
    /// `SCALESIM_MAX_HOST_MS`, `SCALESIM_MONITORS`, `SCALESIM_TRACE`,
    /// `SCALESIM_TRACE_EVENTS`), read fresh on every call so tests can
    /// toggle them; the all-off / monitors-on defaults apply when unset.
    #[must_use]
    pub fn new() -> Self {
        JvmConfigBuilder {
            config: JvmConfig {
                machine: MachineTopology::amd_6168(),
                threads: 4,
                cores_override: None,
                placement: Placement::Compact,
                policy: SchedPolicy::Fair,
                quantum: SimDuration::from_millis(2),
                cohort_rotation: SimDuration::from_millis(4),
                heaplets: false,
                heap_bytes_override: None,
                nursery_fraction: 1.0 / 3.0,
                gc_workers_override: None,
                helper_threads: 2,
                helper_burst: SimDuration::from_micros(200),
                helper_period: SimDuration::from_millis(2),
                old_gen: OldGenPolicy::StwFull,
                gc_model_override: None,
                pause_goal: None,
                retention: Retention::HistogramOnly,
                budget: RunBudget::from_env(),
                chaos: ChaosConfig::from_env(),
                monitors: !matches!(
                    std::env::var("SCALESIM_MONITORS").as_deref(),
                    Ok("0") | Ok("off")
                ),
                trace: TraceConfig::from_env(),
                salvage: false,
                server: None,
                lock_alg: LockAlg::from_env(),
                seed: 42,
            },
        }
    }

    /// Sets the machine.
    pub fn machine(&mut self, machine: MachineTopology) -> &mut Self {
        self.config.machine = machine;
        self
    }

    /// Sets the mutator thread count.
    pub fn threads(&mut self, threads: usize) -> &mut Self {
        self.config.threads = threads;
        self
    }

    /// Overrides the enabled core count (default: equal to threads).
    pub fn cores(&mut self, cores: usize) -> &mut Self {
        self.config.cores_override = Some(cores);
        self
    }

    /// Sets the core placement across sockets.
    pub fn placement(&mut self, placement: Placement) -> &mut Self {
        self.config.placement = placement;
        self
    }

    /// Sets the scheduling policy.
    pub fn policy(&mut self, policy: SchedPolicy) -> &mut Self {
        self.config.policy = policy;
        self
    }

    /// Sets the scheduling quantum.
    pub fn quantum(&mut self, quantum: SimDuration) -> &mut Self {
        self.config.quantum = quantum;
        self
    }

    /// Sets the cohort rotation period (biased policy).
    pub fn cohort_rotation(&mut self, period: SimDuration) -> &mut Self {
        self.config.cohort_rotation = period;
        self
    }

    /// Switches the nursery to per-thread heaplets.
    pub fn heaplets(&mut self, on: bool) -> &mut Self {
        self.config.heaplets = on;
        self
    }

    /// Overrides the heap size (default: 3× the app's minimum heap).
    pub fn heap_bytes(&mut self, bytes: u64) -> &mut Self {
        self.config.heap_bytes_override = Some(bytes);
        self
    }

    /// Sets the nursery fraction of the heap.
    pub fn nursery_fraction(&mut self, fraction: f64) -> &mut Self {
        self.config.nursery_fraction = fraction;
        self
    }

    /// Overrides the GC worker count (default: one per enabled core).
    pub fn gc_workers(&mut self, workers: usize) -> &mut Self {
        self.config.gc_workers_override = Some(workers);
        self
    }

    /// Sets the helper-thread count.
    pub fn helper_threads(&mut self, helpers: usize) -> &mut Self {
        self.config.helper_threads = helpers;
        self
    }

    /// Sets helper burst length and sleep period means.
    pub fn helper_profile(&mut self, burst: SimDuration, period: SimDuration) -> &mut Self {
        self.config.helper_burst = burst;
        self.config.helper_period = period;
        self
    }

    /// Sets the old-generation collection policy.
    pub fn old_gen(&mut self, policy: OldGenPolicy) -> &mut Self {
        self.config.old_gen = policy;
        self
    }

    /// Overrides the collector cost model entirely (sensitivity
    /// studies); the default derives one from workers and NUMA factor.
    pub fn gc_model(&mut self, model: GcCostModel) -> &mut Self {
        self.config.gc_model_override = Some(model);
        self
    }

    /// Enables adaptive nursery sizing with the given pause goal.
    pub fn pause_goal(&mut self, goal: SimDuration) -> &mut Self {
        self.config.pause_goal = Some(goal);
        self
    }

    /// Sets the object-trace retention mode.
    pub fn retention(&mut self, retention: Retention) -> &mut Self {
        self.config.retention = retention;
        self
    }

    /// Sets the run budget (event / sim-time / host-time limits).
    pub fn budget(&mut self, budget: RunBudget) -> &mut Self {
        self.config.budget = budget;
        self
    }

    /// Sets the deterministic fault-injection config.
    pub fn chaos(&mut self, chaos: ChaosConfig) -> &mut Self {
        self.config.chaos = chaos;
        self
    }

    /// Enables or disables the periodic invariant monitors.
    pub fn monitors(&mut self, on: bool) -> &mut Self {
        self.config.monitors = on;
        self
    }

    /// Sets the timeline-tracing configuration.
    pub fn trace(&mut self, trace: TraceConfig) -> &mut Self {
        self.config.trace = trace;
        self
    }

    /// Enables salvage mode: aborted runs finalize as quarantined reports
    /// (with their timeline and counters) instead of returning an error.
    pub fn salvage(&mut self, on: bool) -> &mut Self {
        self.config.salvage = on;
        self
    }

    /// Runs a server-scale request workload instead of the app's batch
    /// items.
    pub fn server(&mut self, spec: scalesim_workloads::ServerSpec) -> &mut Self {
        self.config.server = Some(spec);
        self
    }

    /// Selects the monitor handoff algorithm (see
    /// [`LockAlg`]); the default comes from `SCALESIM_LOCK_ALG`, falling
    /// back to the paper-calibrated FIFO model.
    pub fn lock_alg(&mut self, alg: LockAlg) -> &mut Self {
        self.config.lock_alg = alg;
        self
    }

    /// Sets the master seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.config.seed = seed;
        self
    }

    /// Validates and finishes the build.
    ///
    /// # Errors
    ///
    /// Returns the first structural rejection — see
    /// [`JvmConfig::validate`].
    pub fn build(&self) -> Result<JvmConfig, ConfigError> {
        self.config.validate()?;
        Ok(self.config.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_methodology() {
        let cfg = JvmConfig::default();
        assert_eq!(cfg.machine.num_cores(), 48);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.cores(), 4, "cores follow threads");
        assert_eq!(cfg.gc_workers(), 4, "GC workers follow cores");
        assert_eq!(cfg.heap_bytes(10), 30, "3x min heap");
        assert!(!cfg.heaplets);
    }

    #[test]
    fn cores_cap_at_machine() {
        let cfg = JvmConfig::builder().threads(96).build().unwrap();
        assert_eq!(cfg.cores(), 48);
    }

    #[test]
    fn overrides_stick() {
        let cfg = JvmConfig::builder()
            .threads(8)
            .cores(4)
            .gc_workers(2)
            .heap_bytes(12345)
            .heaplets(true)
            .seed(9)
            .build()
            .unwrap();
        assert_eq!(cfg.cores(), 4);
        assert_eq!(cfg.gc_workers(), 2);
        assert_eq!(cfg.heap_bytes(1), 12345);
        assert!(cfg.heaplets);
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn defaults_have_monitors_on_and_chaos_off() {
        let cfg = JvmConfig::default();
        assert!(cfg.monitors);
        assert!(cfg.chaos.is_off());
        assert_eq!(cfg.budget.max_events, 2_000_000_000);
    }

    #[test]
    fn rejects_zero_threads() {
        assert_eq!(
            JvmConfig::builder().threads(0).build().unwrap_err(),
            ConfigError::ZeroThreads
        );
    }

    #[test]
    fn rejects_bad_nursery_fraction() {
        for bad in [0.0, 1.0, 1.5, -0.2] {
            let err = JvmConfig::builder()
                .nursery_fraction(bad)
                .build()
                .unwrap_err();
            assert!(
                matches!(err, ConfigError::NurseryOutOfRange { .. }),
                "fraction {bad} gave {err}"
            );
        }
    }

    #[test]
    fn rejects_zero_quantum() {
        assert_eq!(
            JvmConfig::builder()
                .quantum(SimDuration::ZERO)
                .build()
                .unwrap_err(),
            ConfigError::ZeroQuantum
        );
    }

    #[test]
    fn rejects_gc_workers_beyond_cores() {
        assert_eq!(
            JvmConfig::builder()
                .threads(4)
                .gc_workers(8)
                .build()
                .unwrap_err(),
            ConfigError::GcWorkersExceedCores {
                workers: 8,
                cores: 4
            }
        );
        // Exactly as many workers as cores is fine.
        assert!(JvmConfig::builder()
            .threads(4)
            .gc_workers(4)
            .build()
            .is_ok());
    }

    #[test]
    fn rejects_zero_heap_override() {
        assert_eq!(
            JvmConfig::builder().heap_bytes(0).build().unwrap_err(),
            ConfigError::ZeroHeap
        );
    }
}
