//! The request-serving engine: executes a [`ServerSpec`] instead of a
//! batch benchmark, against the same subsystems the batch runtime uses
//! (the `scalesim-sync` monitor table, the generational heap and
//! collector, the chaos plan, the trace registry).
//!
//! # Execution model
//!
//! Requests arrive open-loop (a Poisson schedule that keeps coming
//! regardless of server state) or closed-loop (clients that think, issue,
//! and wait). Each arrival is admitted into a bounded accept queue —
//! subject to admission control, a degraded-mode priority watermark and
//! the queue bound itself — and served by a fixed worker pool (one worker
//! per configured mutator thread). Serving a request allocates its
//! class's burst (driving real minor collections), optionally takes a
//! monitor critical section (driving real contention), then computes for
//! the class's service time.
//!
//! Clients time out, retry with their configured backoff, and stop at
//! their retry budget. The failure mode under study is *metastable*: a
//! transient GC stall freezes the workers while open-loop arrivals keep
//! queueing; once queue delay exceeds the client timeout, naive immediate
//! retries multiply the offered load and the server stays saturated long
//! after the stall has ended, its capacity wasted on orphan work nobody
//! is waiting for. Admission control plus backoff removes the
//! amplification loop, and goodput recovers as soon as the backlog
//! drains.
//!
//! # Stop-the-world without a clock shift
//!
//! The batch runtime realizes a pause by shifting every pending event.
//! Here that would be wrong: client timers and future arrivals are
//! *outside* the server and must not freeze. Instead the engine keeps a
//! cumulative STW counter; every in-service completion event carries the
//! counter value at schedule time and, on firing, re-schedules itself by
//! the pause time that accrued in between. Work stretches, the outside
//! world does not — which is exactly how a backlog forms.

use std::collections::{BTreeMap, VecDeque};

use rand::rngs::StdRng;

use scalesim_gc::{Collector, GcCostModel, GcKind};
use scalesim_heap::{AllocResult, Heap, HeapConfig, NurseryLayout, ObjectId};
use scalesim_metrics::LogHistogram;
use scalesim_objtrace::ObjectTracer;
use scalesim_sched::{StateTimes, ThreadId};
use scalesim_simkit::{
    AbortReason, CancelToken, ChaosPlan, EventId, EventQueue, FaultClass, RngFactory, SimDuration,
    SimTime,
};
use scalesim_sync::{AcquireOutcome, LockTable, MonitorId};
use scalesim_trace::{to_chrome_json, write_atomic, CounterId, Counters, EventKind, Timeline};
use scalesim_workloads::{poisson_gap_ns, think_ns, ArrivalProcess, ServerSpec};

use crate::config::JvmConfig;
use crate::error::SimError;
use crate::report::{RunOutcome, RunReport, ServerStats, ThreadReport};

/// Cadence, in events, of watchdog/budget polling (the event-count check
/// is a plain compare and runs on every event).
const BUDGET_CHECK_PERIOD: u64 = 1 << 10;

/// Heap floor when the config has no explicit sizing: small enough that
/// the allocation bursts produce regular minor collections for the chaos
/// plan to amplify.
const SERVER_MIN_HEAP: u64 = 4 << 20;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    /// The next open-loop arrival fires (the schedule is generated
    /// lazily, one gap at a time, from the `server-arrival` RNG stream).
    OpenArrival,
    /// A request attempt reaches the server.
    Arrival { req: u64, attempt: u32 },
    /// A client's per-attempt timer expires.
    Timeout { req: u64, attempt: u32 },
    /// A worker's critical-section hold ends; release and continue into
    /// the compute phase. `accum` is the STW counter at schedule time.
    HoldDone { worker: usize, accum: u64 },
    /// A worker's compute phase ends; the reply is ready.
    Done { worker: usize, accum: u64 },
}

/// Where an admitted attempt currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// In the accept queue.
    Queued,
    /// On a worker.
    InService,
    /// Silently discarded by the request-drop chaos fault; the client
    /// will find out at its timeout.
    DroppedSilent,
}

#[derive(Debug)]
struct Attempt {
    class: usize,
    arrival_at: u64,
    phase: Phase,
    /// The client's timer fired; a later completion is orphan work.
    timed_out: bool,
    timeout_ev: EventId,
    /// Closed-loop issuer (client index), when applicable.
    client: Option<usize>,
    /// The allocation burst's object, once in service.
    obj: Option<ObjectId>,
}

#[derive(Debug, Default)]
struct Worker {
    /// The attempt being served, if any (including blocked on a monitor).
    busy: Option<(u64, u32)>,
    /// Waiting in a monitor queue (dispatch must not hand it new work).
    blocked: bool,
    service_start_ns: u64,
    busy_ns: u64,
    items_done: u64,
    dispatches: u64,
}

struct ServerSim<'a> {
    config: &'a JvmConfig,
    spec: &'a ServerSpec,
    seed: u64,
    queue: EventQueue<Ev>,
    locks: LockTable,
    /// Monitor per distinct lock-profile class name.
    monitors: BTreeMap<String, MonitorId>,
    heap: Heap,
    collector: Collector,
    chaos: ChaosPlan,
    timeline: Timeline,
    counters: Counters,
    cancel: Option<CancelToken>,
    arrival_rng: StdRng,
    accept: VecDeque<(u64, u32)>,
    attempts: BTreeMap<(u64, u32), Attempt>,
    workers: Vec<Worker>,
    /// Cumulative stop-the-world nanoseconds (see module docs).
    stw_accum: u64,
    next_req: u64,
    retries_issued: u64,
    /// Closed-loop round counter per client.
    client_round: Vec<u64>,
    /// Closed-loop request ownership: which client is waiting on a
    /// request (across its retries). Open loop leaves this empty.
    client_owner: BTreeMap<u64, usize>,
    /// First monitor-protocol misuse observed; the main loop finishes
    /// the run as [`RunOutcome::Quarantined`] instead of panicking (the
    /// server model always salvages — its entry point returns a report,
    /// not a `Result`).
    violation: Option<String>,
    stats: ServerStats,
}

/// Runs `spec` under `config` and returns the standard report with
/// [`RunReport::server`] populated.
pub(crate) fn run_server(
    config: &JvmConfig,
    spec: &ServerSpec,
    cancel: Option<CancelToken>,
) -> Result<RunReport, SimError> {
    Ok(ServerSim::new(config, spec, cancel).run())
}

impl<'a> ServerSim<'a> {
    fn new(config: &'a JvmConfig, spec: &'a ServerSpec, cancel: Option<CancelToken>) -> Self {
        let cores = config.placement.enabled(&config.machine, config.cores());
        let mean_numa = config.machine.mean_numa_factor_of(&cores);
        let gc_model = config
            .gc_model_override
            .unwrap_or_else(|| GcCostModel::hotspot_like(config.gc_workers(), mean_numa));
        let mut collector = Collector::new(gc_model);
        collector.set_timeline(config.trace.recorder());
        let heap = Heap::new(HeapConfig::new(
            config.heap_bytes(SERVER_MIN_HEAP),
            config.nursery_fraction,
            NurseryLayout::Shared,
        ));
        let mut locks = LockTable::with_algorithm(config.lock_alg);
        locks.set_timeline(config.trace.recorder());
        let mut monitors = BTreeMap::new();
        for class in &spec.classes {
            if let Some(lock) = &class.lock {
                if !monitors.contains_key(&lock.class) {
                    let m = locks.create(&lock.class);
                    monitors.insert(lock.class.clone(), m);
                }
            }
        }
        let clients = match spec.arrival {
            ArrivalProcess::ClosedLoop { clients, .. } => clients,
            ArrivalProcess::OpenPoisson { .. } => 0,
        };
        ServerSim {
            config,
            spec,
            seed: config.seed,
            queue: EventQueue::new(),
            locks,
            monitors,
            heap,
            collector,
            chaos: ChaosPlan::new(config.chaos, config.seed),
            timeline: config.trace.recorder(),
            counters: Counters::new(),
            cancel,
            arrival_rng: RngFactory::new(config.seed).stream("server-arrival", 0),
            accept: VecDeque::new(),
            attempts: BTreeMap::new(),
            workers: (0..config.threads).map(|_| Worker::default()).collect(),
            stw_accum: 0,
            next_req: 0,
            retries_issued: 0,
            client_round: vec![0; clients],
            client_owner: BTreeMap::new(),
            violation: None,
            stats: ServerStats {
                policy: spec.name.clone(),
                arrivals: 0,
                goodput: 0,
                orphan_completions: 0,
                sheds: 0,
                timeouts: 0,
                retries: 0,
                in_flight: 0,
                degraded: false,
                latency: LogHistogram::new(),
                queue_depth: LogHistogram::new(),
                tail_goodput: 0,
                tail_arrivals: 0,
            },
        }
    }

    fn now_ns(&self) -> u64 {
        self.queue.now().as_nanos()
    }

    // ------------------------------------------------------------------
    // Main loop
    // ------------------------------------------------------------------

    fn run(mut self) -> RunReport {
        let host_start = std::time::Instant::now();
        match self.spec.arrival {
            ArrivalProcess::OpenPoisson { rate_per_sec } => {
                if rate_per_sec > 0 {
                    let gap = poisson_gap_ns(rate_per_sec, &mut self.arrival_rng);
                    self.queue
                        .schedule_at(SimTime::from_nanos(gap), Ev::OpenArrival);
                }
            }
            ArrivalProcess::ClosedLoop {
                clients,
                think_ns: range,
            } => {
                for c in 0..clients {
                    let at = think_ns(self.seed, c as u64, 0, range).max(1);
                    let req = self.next_req;
                    self.next_req += 1;
                    self.client_owner.insert(req, c);
                    self.queue
                        .schedule_at(SimTime::from_nanos(at), Ev::Arrival { req, attempt: 1 });
                }
            }
        }

        let budget = self.config.budget;
        let timed_budget = budget.max_sim_time.is_some() || budget.max_host_ms.is_some();
        let horizon = SimTime::from_nanos(self.spec.horizon_ns);
        let mut wall = SimTime::ZERO;
        let mut outcome = RunOutcome::Ok;
        loop {
            match self.queue.peek_time() {
                None => break,
                Some(at) if at >= horizon => break,
                Some(_) => {}
            }
            let (at, ev) = self.queue.pop().expect("peeked event vanished");
            wall = at;
            let processed = self.queue.popped_total();
            if processed > budget.max_events {
                outcome = RunOutcome::Truncated(AbortReason::MaxEvents(budget.max_events));
                break;
            }
            if self.chaos.panics_at(processed) {
                panic!("chaos: deliberate panic at event {processed}");
            }
            self.handle(ev);
            if let Some(detail) = self.violation.take() {
                outcome = RunOutcome::Quarantined(detail);
                break;
            }
            if processed.is_multiple_of(BUDGET_CHECK_PERIOD) {
                if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                    outcome = RunOutcome::Truncated(AbortReason::Watchdog);
                    break;
                }
                if timed_budget {
                    let host_ms = host_start.elapsed().as_millis() as u64;
                    if let Some(reason) = budget.check(processed, wall, host_ms) {
                        outcome = RunOutcome::Truncated(reason);
                        break;
                    }
                }
            }
        }
        if outcome == RunOutcome::Ok {
            wall = horizon;
        }
        self.finish(wall, outcome)
    }

    fn handle(&mut self, ev: Ev) {
        match ev {
            Ev::OpenArrival => self.on_open_arrival(),
            Ev::Arrival { req, attempt } => self.on_arrival(req, attempt),
            Ev::Timeout { req, attempt } => self.on_timeout(req, attempt),
            Ev::HoldDone { worker, accum } => self.on_hold_done(worker, accum),
            Ev::Done { worker, accum } => self.on_done(worker, accum),
        }
    }

    // ------------------------------------------------------------------
    // Arrivals and admission
    // ------------------------------------------------------------------

    fn on_open_arrival(&mut self) {
        let req = self.next_req;
        self.next_req += 1;
        self.on_arrival(req, 1);
        let ArrivalProcess::OpenPoisson { rate_per_sec } = self.spec.arrival else {
            unreachable!("open arrival under closed-loop spec");
        };
        let gap = poisson_gap_ns(rate_per_sec, &mut self.arrival_rng);
        let next = self.now_ns() + gap;
        if next < self.spec.horizon_ns {
            self.queue
                .schedule_at(SimTime::from_nanos(next), Ev::OpenArrival);
        }
    }

    fn on_arrival(&mut self, req: u64, attempt: u32) {
        let now = self.now_ns();
        let class = self.spec.class_of(self.seed, req);
        self.stats.arrivals += 1;
        if attempt == 1 && now >= self.spec.measure_from_ns {
            self.stats.tail_arrivals += 1;
        }
        self.stats.queue_depth.record(self.accept.len() as u64);

        // The client retains ownership across retries of the same req.
        let client = self.client_owner.get(&req).copied();

        // Door checks, most drastic first. A shed is answered
        // immediately — the client reacts now, not at its timeout.
        let depth = self.accept.len();
        let in_service = self.workers.iter().filter(|w| w.busy.is_some()).count();
        let degraded_shed = match self.spec.policy.degrade_above {
            Some(mark) if depth >= mark => {
                self.stats.degraded = true;
                self.spec.classes[class].priority > 0
            }
            _ => false,
        };
        let admission_shed = match self.spec.policy.admission_cap {
            Some(cap) => depth + in_service >= cap,
            None => false,
        };
        if degraded_shed || admission_shed || depth >= self.spec.policy.queue_cap {
            self.shed(req, attempt, class, client);
            return;
        }

        // Admitted. The request-drop chaos fault discards it silently:
        // the server took it and nothing will ever come back.
        let timeout_ev = self.queue.schedule_at(
            SimTime::from_nanos(now + self.spec.client.timeout_ns),
            Ev::Timeout { req, attempt },
        );
        let phase = if self.chaos.fires(FaultClass::RequestDrop) {
            self.counters.inc(CounterId::ChaosInjections);
            self.timeline
                .instant(EventKind::ChaosRequestDrop, 0, self.queue.now(), req);
            Phase::DroppedSilent
        } else {
            self.accept.push_back((req, attempt));
            Phase::Queued
        };
        self.attempts.insert(
            (req, attempt),
            Attempt {
                class,
                arrival_at: now,
                phase,
                timed_out: false,
                timeout_ev,
                client,
                obj: None,
            },
        );
        self.dispatch_idle_workers();
    }

    fn shed(&mut self, req: u64, attempt: u32, class: usize, client: Option<usize>) {
        self.stats.sheds += 1;
        self.timeline
            .instant(EventKind::ReqShed, class as u32, self.queue.now(), req);
        self.client_reacts(req, attempt, class, client);
    }

    /// The client learned this attempt failed (shed reply or timeout):
    /// retry with backoff if attempts and budget remain, else abandon.
    fn client_reacts(&mut self, req: u64, attempt: u32, class: usize, client: Option<usize>) {
        let can_retry = attempt <= self.spec.client.max_retries
            && self.retries_issued < self.spec.client.retry_budget;
        if can_retry {
            self.retries_issued += 1;
            self.stats.retries += 1;
            self.timeline
                .instant(EventKind::ReqRetry, class as u32, self.queue.now(), req);
            let delay = self.spec.client.backoff.delay_ns(self.seed, req, attempt);
            self.queue.schedule_at(
                SimTime::from_nanos(self.now_ns() + delay.max(1)),
                Ev::Arrival {
                    req,
                    attempt: attempt + 1,
                },
            );
        } else if let Some(c) = client {
            // The request is abandoned; the closed-loop client moves on.
            self.client_owner.remove(&req);
            self.next_client_round(c);
        }
    }

    /// Schedules closed-loop client `c`'s next request after a think.
    fn next_client_round(&mut self, c: usize) {
        let ArrivalProcess::ClosedLoop {
            think_ns: range, ..
        } = self.spec.arrival
        else {
            return;
        };
        self.client_round[c] += 1;
        let round = self.client_round[c];
        let req = self.next_req;
        self.next_req += 1;
        let delay = think_ns(self.seed, c as u64, round, range).max(1);
        let at = self.now_ns() + delay;
        if at < self.spec.horizon_ns {
            self.queue
                .schedule_at(SimTime::from_nanos(at), Ev::Arrival { req, attempt: 1 });
        }
        // The Arrival handler re-derives the issuer via this marker.
        self.client_owner.insert(req, c);
    }

    // ------------------------------------------------------------------
    // Service
    // ------------------------------------------------------------------

    fn dispatch_idle_workers(&mut self) {
        for w in 0..self.workers.len() {
            if self.workers[w].busy.is_some() || self.workers[w].blocked {
                continue;
            }
            self.dispatch_one(w);
        }
    }

    fn dispatch_one(&mut self, w: usize) {
        while let Some((req, attempt)) = self.accept.pop_front() {
            // Lazily skip entries resolved while queued (timeouts).
            let Some(state) = self.attempts.get(&(req, attempt)) else {
                continue;
            };
            if state.phase != Phase::Queued {
                continue;
            }
            // Deadline shedding: don't waste a worker on a request that
            // has already waited past the deadline.
            if let Some(deadline) = self.spec.policy.deadline_shed_ns {
                if self.now_ns().saturating_sub(state.arrival_at) > deadline {
                    let (class, client) = (state.class, state.client);
                    let timeout_ev = state.timeout_ev;
                    self.attempts.remove(&(req, attempt));
                    self.queue.cancel(timeout_ev);
                    self.shed(req, attempt, class, client);
                    continue;
                }
            }
            self.start_service(w, req, attempt);
            return;
        }
    }

    fn start_service(&mut self, w: usize, req: u64, attempt: u32) {
        let now = self.now_ns();
        let state = self
            .attempts
            .get_mut(&(req, attempt))
            .expect("dispatched attempt exists");
        state.phase = Phase::InService;
        let class = state.class;
        self.workers[w].busy = Some((req, attempt));
        self.workers[w].dispatches += 1;
        self.workers[w].service_start_ns = now;

        // Allocation burst first (the session / response buffers), which
        // may stop the world.
        let mut pause_ns = 0u64;
        let bytes = self.spec.classes[class].alloc_bytes;
        if bytes > 0 {
            let tid = ThreadId::new(w);
            loop {
                match self.heap.alloc(tid, bytes) {
                    AllocResult::Ok(obj) => {
                        self.attempts
                            .get_mut(&(req, attempt))
                            .expect("still serving")
                            .obj = Some(obj);
                        break;
                    }
                    AllocResult::NurseryFull { region } => {
                        pause_ns += self.minor_gc(region);
                    }
                }
            }
        }

        // Critical section (if the class has one), then compute.
        if let Some(lock) = &self.spec.classes[class].lock {
            let m = self.monitors[&lock.class];
            let tid = ThreadId::new(w);
            match self.locks.acquire(m, tid, self.queue.now()) {
                Ok(AcquireOutcome::Acquired) => {
                    self.counters.inc(CounterId::LockAcquires);
                    let hold = self
                        .spec
                        .hold_ns(self.seed, req, class)
                        .expect("locked class has a hold draw");
                    self.queue.schedule_at(
                        SimTime::from_nanos(now + pause_ns + hold),
                        Ev::HoldDone {
                            worker: w,
                            accum: self.stw_accum,
                        },
                    );
                }
                Ok(AcquireOutcome::Contended) => {
                    self.counters.inc(CounterId::LockContentions);
                    self.workers[w].blocked = true;
                }
                Err(misuse) => {
                    self.violation = Some(format!("{misuse} ({m})"));
                    self.workers[w].blocked = true;
                }
            }
        } else {
            let svc = self.spec.service_ns(self.seed, req, class);
            self.queue.schedule_at(
                SimTime::from_nanos(now + pause_ns + svc),
                Ev::Done {
                    worker: w,
                    accum: self.stw_accum,
                },
            );
        }
    }

    /// Re-schedules an in-service event by the STW time that accrued
    /// since it was scheduled. Returns `true` when the event was pushed
    /// forward and must not be handled now.
    fn stretch(&mut self, ev: Ev, accum: u64) -> bool {
        if self.stw_accum > accum {
            let delta = self.stw_accum - accum;
            let at = SimTime::from_nanos(self.now_ns() + delta);
            let pushed = match ev {
                Ev::HoldDone { worker, .. } => Ev::HoldDone {
                    worker,
                    accum: self.stw_accum,
                },
                Ev::Done { worker, .. } => Ev::Done {
                    worker,
                    accum: self.stw_accum,
                },
                other => other,
            };
            self.queue.schedule_at(at, pushed);
            return true;
        }
        false
    }

    fn on_hold_done(&mut self, w: usize, accum: u64) {
        if self.stretch(Ev::HoldDone { worker: w, accum }, accum) {
            return;
        }
        let (req, attempt) = self.workers[w].busy.expect("hold ends on a busy worker");
        let class = self.attempts[&(req, attempt)].class;
        let lock = self.spec.classes[class]
            .lock
            .as_ref()
            .expect("held class has a lock profile");
        let m = self.monitors[&lock.class];
        let tid = ThreadId::new(w);
        match self.locks.release(m, tid, self.queue.now()) {
            Ok(Some(grant)) => {
                // Hand the monitor to the blocked worker and start its
                // hold, stretched by the algorithm's handoff penalty
                // (park/wake latency on the critical path).
                let next = grant.next.index();
                self.counters.inc(CounterId::LockAcquires);
                self.workers[next].blocked = false;
                let key = self.workers[next].busy.expect("waiter is mid-request");
                let nclass = self.attempts[&key].class;
                let hold = self
                    .spec
                    .hold_ns(self.seed, key.0, nclass)
                    .expect("waiter's class has a hold draw");
                self.queue.schedule_at(
                    SimTime::from_nanos(self.now_ns() + hold + grant.penalty.as_nanos()),
                    Ev::HoldDone {
                        worker: next,
                        accum: self.stw_accum,
                    },
                );
            }
            Ok(None) => {}
            Err(misuse) => {
                self.violation = Some(format!("{misuse} ({m})"));
                return;
            }
        }
        let svc = self.spec.service_ns(self.seed, req, class);
        self.queue.schedule_at(
            SimTime::from_nanos(self.now_ns() + svc),
            Ev::Done {
                worker: w,
                accum: self.stw_accum,
            },
        );
    }

    fn on_done(&mut self, w: usize, accum: u64) {
        if self.stretch(Ev::Done { worker: w, accum }, accum) {
            return;
        }
        let now = self.now_ns();
        let (req, attempt) = self.workers[w].busy.take().expect("done on a busy worker");
        self.workers[w].items_done += 1;
        self.workers[w].busy_ns += now.saturating_sub(self.workers[w].service_start_ns);
        let state = self
            .attempts
            .remove(&(req, attempt))
            .expect("serving attempt exists");
        if let Some(obj) = state.obj {
            if self.heap.is_live(obj) {
                self.heap.kill(obj);
            }
        }
        if state.timed_out {
            // Nobody is waiting: the reply is orphan work.
            self.stats.orphan_completions += 1;
        } else {
            self.queue.cancel(state.timeout_ev);
            self.stats.goodput += 1;
            self.stats
                .latency
                .record(now.saturating_sub(state.arrival_at));
            if state.arrival_at >= self.spec.measure_from_ns {
                self.stats.tail_goodput += 1;
            }
            if let Some(c) = state.client {
                self.client_owner.remove(&req);
                self.next_client_round(c);
            }
        }
        self.dispatch_one(w);
    }

    // ------------------------------------------------------------------
    // Timeouts and faults
    // ------------------------------------------------------------------

    fn on_timeout(&mut self, req: u64, attempt: u32) {
        let Some(state) = self.attempts.get_mut(&(req, attempt)) else {
            return; // resolved in the meantime; cancel raced the pop
        };
        if state.timed_out {
            return;
        }
        state.timed_out = true;
        let (class, phase, client) = (state.class, state.phase, state.client);
        self.timeline
            .instant(EventKind::ReqTimeout, class as u32, self.queue.now(), req);
        match phase {
            Phase::InService => {
                // The server keeps going; resolution (orphan) happens at
                // completion. The client moves on now.
            }
            Phase::Queued | Phase::DroppedSilent => {
                // Never served and never will be: resolve as a timeout.
                self.attempts.remove(&(req, attempt));
                self.stats.timeouts += 1;
            }
        }
        self.client_reacts(req, attempt, class, client);
    }

    /// One minor collection, amplified by the GC-stall chaos fault when
    /// inside the spec's fault window. Returns the pause in nanoseconds
    /// and adds it to the cumulative STW counter.
    fn minor_gc(&mut self, region: usize) -> u64 {
        let at = self.queue.now();
        let mut pause =
            self.collector
                .collect_minor(&mut self.heap, region, self.workers.len(), at);
        let in_window = match self.spec.fault_window_ns {
            Some((start, end)) => {
                let now = at.as_nanos();
                now >= start && now < end
            }
            None => false,
        };
        if in_window && self.chaos.fires(FaultClass::GcStall) {
            let extra = pause.mul_f64(self.chaos.config().gc_stall_factor);
            self.counters.inc(CounterId::ChaosInjections);
            self.timeline
                .instant(EventKind::ChaosGcStall, 0, at, extra.as_nanos());
            pause += extra;
        }
        self.stw_accum += pause.as_nanos();
        pause.as_nanos()
    }

    // ------------------------------------------------------------------
    // Report assembly
    // ------------------------------------------------------------------

    fn finish(mut self, wall: SimTime, outcome: RunOutcome) -> RunReport {
        if !matches!(outcome, RunOutcome::Ok) {
            // Workers still queued on monitors at truncation: account
            // their partial waits (mirrors the batch runtime).
            self.locks.finalize(wall);
        }
        self.stats.in_flight = self.attempts.len() as u64;
        debug_assert!(self.stats.conserves(), "attempt conservation broke");

        let per_thread: Vec<ThreadReport> = self
            .workers
            .iter()
            .map(|w| ThreadReport {
                items_done: w.items_done,
                times: StateTimes {
                    running: SimDuration::from_nanos(w.busy_ns),
                    ..StateTimes::default()
                },
                dispatches: w.dispatches,
                preemptions: 0,
            })
            .collect();
        let mutator_cpu: SimDuration = per_thread.iter().map(|t| t.times.running).sum();

        let timeline = Timeline::merge(vec![
            self.locks.take_timeline(),
            self.collector.take_timeline(),
            std::mem::take(&mut self.timeline),
        ]);
        let log = self.collector.log();
        self.counters
            .set(CounterId::MinorGcs, log.count(GcKind::Minor) as u64);
        self.counters
            .set(CounterId::FullGcs, log.count(GcKind::Full) as u64);
        self.counters
            .set(CounterId::EventsProcessed, self.queue.popped_total());
        self.counters
            .set(CounterId::TimelineDropped, timeline.dropped());
        self.counters
            .set(CounterId::ReqArrivals, self.stats.arrivals);
        self.counters.set(CounterId::ReqGoodput, self.stats.goodput);
        self.counters.set(CounterId::ReqSheds, self.stats.sheds);
        self.counters
            .set(CounterId::ReqTimeouts, self.stats.timeouts);
        self.counters.set(CounterId::ReqRetries, self.stats.retries);
        self.counters
            .set(CounterId::ReqInFlight, self.stats.in_flight);

        if let Some(path) = &self.config.trace.path {
            if timeline.is_enabled() {
                if let Err(e) = write_atomic(std::path::Path::new(path), to_chrome_json(&timeline))
                {
                    eprintln!("scalesim: failed to write trace to {path}: {e}");
                }
            }
        }

        RunReport {
            app: self.spec.name.clone(),
            threads: self.config.threads,
            cores: self.config.cores(),
            wall_time: wall.saturating_since(SimTime::ZERO),
            gc_time: self.collector.log().total_pause(),
            mutator_cpu,
            gc: self.collector.into_log(),
            locks: self.locks.report(),
            trace: ObjectTracer::new(self.config.retention),
            heap: *self.heap.stats(),
            per_thread,
            events_processed: self.queue.popped_total(),
            counters: self.counters,
            timeline,
            host_ns: 0,
            outcome,
            server: Some(self.stats),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Jvm;
    use scalesim_workloads::xalan;

    fn run_spec(spec: ServerSpec, threads: usize, seed: u64) -> RunReport {
        let config = JvmConfig::builder()
            .threads(threads)
            .seed(seed)
            .server(spec)
            .build()
            .unwrap();
        Jvm::new(config).run(&xalan()).unwrap()
    }

    fn short(mut spec: ServerSpec) -> ServerSpec {
        spec.horizon_ns = 200_000_000;
        spec.measure_from_ns = 100_000_000;
        spec
    }

    #[test]
    fn open_loop_run_serves_requests_and_conserves_attempts() {
        let report = run_spec(short(ServerSpec::naive(20_000)), 4, 42);
        let stats = report.server.as_ref().unwrap();
        assert!(stats.arrivals > 3_000, "{} arrivals", stats.arrivals);
        assert!(stats.goodput > 0);
        assert!(stats.conserves(), "{stats:?}");
        assert!(stats.latency.count() == stats.goodput);
        assert!(report.locks.total.acquisitions > 0, "session lock used");
        assert_eq!(report.app, "naive");
    }

    #[test]
    fn server_runs_are_deterministic() {
        let a = run_spec(short(ServerSpec::robust(20_000, 64)), 4, 7);
        let b = run_spec(short(ServerSpec::robust(20_000, 64)), 4, 7);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = run_spec(short(ServerSpec::robust(20_000, 64)), 4, 8);
        assert_ne!(format!("{a:?}"), format!("{c:?}"), "seed matters");
    }

    #[test]
    fn closed_loop_is_self_limiting() {
        let mut spec = short(ServerSpec::naive(0));
        spec.arrival = ArrivalProcess::ClosedLoop {
            clients: 8,
            think_ns: (50_000, 150_000),
        };
        let report = run_spec(spec, 4, 42);
        let stats = report.server.as_ref().unwrap();
        assert!(stats.conserves(), "{stats:?}");
        assert!(stats.goodput > 100, "{} goodput", stats.goodput);
        // Eight clients with one outstanding request each can never
        // queue deeper than the client count.
        assert!(stats.queue_depth.max().unwrap_or(0) <= 8);
        assert_eq!(stats.sheds, 0);
    }

    #[test]
    fn allocation_bursts_drive_minor_collections() {
        let mut spec = short(ServerSpec::naive(20_000));
        spec.classes[1].alloc_bytes = 32_768;
        let config = JvmConfig::builder()
            .threads(4)
            .seed(42)
            .heap_bytes(8 << 20)
            .server(spec)
            .build()
            .unwrap();
        let report = Jvm::new(config).run(&xalan()).unwrap();
        assert!(report.gc.count(GcKind::Minor) > 0, "nursery pressure");
        assert!(report.gc_time.as_nanos() > 0);
    }
}
