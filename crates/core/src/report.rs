//! Run reports: everything a paper figure needs, from one run.

use std::fmt;

use scalesim_gc::GcLog;
use scalesim_heap::HeapStats;
use scalesim_metrics::{LogHistogram, Summary};
use scalesim_objtrace::ObjectTracer;
use scalesim_sched::StateTimes;
use scalesim_simkit::{AbortReason, SimDuration};
use scalesim_sync::LockReport;
use scalesim_trace::{Counters, Timeline};

/// How a run ended.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum RunOutcome {
    /// The run executed to completion.
    #[default]
    Ok,
    /// A run budget expired; the report carries partial metrics up to the
    /// truncation point.
    Truncated(AbortReason),
    /// The run crashed or kept failing; the sweep harness quarantined it
    /// and the report carries no metrics.
    Quarantined(String),
}

impl RunOutcome {
    /// True for a clean, complete run.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, RunOutcome::Ok)
    }

    /// Short marker for table cells: empty when ok, `trunc`/`quar`
    /// otherwise.
    #[must_use]
    pub fn marker(&self) -> &'static str {
        match self {
            RunOutcome::Ok => "",
            RunOutcome::Truncated(_) => "trunc",
            RunOutcome::Quarantined(_) => "quar",
        }
    }
}

impl fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunOutcome::Ok => write!(f, "ok"),
            RunOutcome::Truncated(reason) => write!(f, "truncated: {reason}"),
            RunOutcome::Quarantined(why) => write!(f, "quarantined: {why}"),
        }
    }
}

/// Per-mutator-thread results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadReport {
    /// Work items the thread completed.
    pub items_done: u64,
    /// Per-state time accounting.
    pub times: StateTimes,
    /// Times the thread was placed on a core.
    pub dispatches: u64,
    /// Times the thread was preempted at quantum expiry.
    pub preemptions: u64,
}

/// Request-level results from a server-workload run.
///
/// Attempts partition into completions, sheds and timeouts; whatever is
/// still unsettled at the horizon is `in_flight`, so
/// `arrivals == goodput + orphan_completions + sheds + timeouts + in_flight`
/// holds exactly ([`ServerStats::conserves`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerStats {
    /// Policy label from the spec ("naive", "robust", …).
    pub policy: String,
    /// Request attempts issued (first attempts and retries).
    pub arrivals: u64,
    /// Attempts completed within their client's timeout.
    pub goodput: u64,
    /// Attempts the server finished after the client had already timed
    /// out — wasted (orphan) work, the retry storm's fuel.
    pub orphan_completions: u64,
    /// Attempts shed at the door or at dequeue.
    pub sheds: u64,
    /// Attempts whose client-side timeout fired first.
    pub timeouts: u64,
    /// Retries issued by clients.
    pub retries: u64,
    /// Attempts still unsettled at the horizon.
    pub in_flight: u64,
    /// True when degraded-mode priority shedding engaged at least once.
    pub degraded: bool,
    /// Attempt-to-reply latency of in-deadline completions, nanoseconds.
    pub latency: LogHistogram,
    /// Accept-queue depth sampled at each arrival.
    pub queue_depth: LogHistogram,
    /// Goodput restricted to attempts arriving in the measurement tail
    /// `[measure_from, horizon)` — the metastability verdict window.
    pub tail_goodput: u64,
    /// First attempts arriving in the measurement tail (denominator for
    /// the tail goodput ratio).
    pub tail_arrivals: u64,
}

impl ServerStats {
    /// Latency quantile in nanoseconds (`None` when nothing completed).
    #[must_use]
    pub fn latency_p(&self, q: f64) -> Option<u64> {
        self.latency.quantile(q)
    }

    /// Checks the attempt-conservation invariant.
    #[must_use]
    pub fn conserves(&self) -> bool {
        self.arrivals
            == self.goodput + self.orphan_completions + self.sheds + self.timeouts + self.in_flight
    }

    /// Tail goodput as a fraction of tail first-attempts, in `[0, 1]`.
    #[must_use]
    pub fn tail_goodput_ratio(&self) -> f64 {
        if self.tail_arrivals == 0 {
            0.0
        } else {
            self.tail_goodput as f64 / self.tail_arrivals as f64
        }
    }
}

/// Everything measured during one simulated run.
///
/// * Figure 1a/1b read [`RunReport::locks`],
/// * Figure 1c/1d read [`RunReport::trace`],
/// * Figure 2 reads [`RunReport::mutator_wall`] / [`RunReport::gc_time`],
/// * the workload-distribution analysis reads [`RunReport::per_thread`].
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Application name.
    pub app: String,
    /// Configured mutator threads.
    pub threads: usize,
    /// Enabled cores.
    pub cores: usize,
    /// End-to-end execution time.
    pub wall_time: SimDuration,
    /// Sum of stop-the-world pauses — the paper's "GC time".
    pub gc_time: SimDuration,
    /// Aggregate on-CPU time over all mutator threads.
    pub mutator_cpu: SimDuration,
    /// The collection log.
    pub gc: GcLog,
    /// The DTrace-analog lock report.
    pub locks: LockReport,
    /// The Elephant-Tracks-analog object trace.
    pub trace: ObjectTracer,
    /// Heap counters.
    pub heap: HeapStats,
    /// Per-mutator-thread breakdown (index = thread).
    pub per_thread: Vec<ThreadReport>,
    /// Total simulation events processed (diagnostics).
    pub events_processed: u64,
    /// The counters registry at end of run (always populated; O(1) fixed
    /// slots, deterministic).
    pub counters: Counters,
    /// The merged deterministic timeline (empty unless the config enabled
    /// tracing).
    pub timeline: Timeline,
    /// Host-side wall-clock nanoseconds the simulation took, as measured
    /// by the runner (0 when not measured). Purely diagnostic: never part
    /// of determinism fingerprints, and memoized sweeps report the timing
    /// of the one simulation that actually ran.
    pub host_ns: u64,
    /// How the run ended: complete, budget-truncated, or quarantined by
    /// the sweep harness.
    pub outcome: RunOutcome,
    /// Request-level results when the run executed a server workload.
    pub server: Option<ServerStats>,
}

impl RunReport {
    /// Builds the metric-less placeholder report the sweep harness emits
    /// for a quarantined `(app, config, seed)` combination.
    #[must_use]
    pub fn quarantined(app: &str, threads: usize, cores: usize, why: String) -> RunReport {
        RunReport {
            app: app.to_owned(),
            threads,
            cores,
            wall_time: SimDuration::ZERO,
            gc_time: SimDuration::ZERO,
            mutator_cpu: SimDuration::ZERO,
            gc: GcLog::new(),
            locks: LockReport::default(),
            trace: ObjectTracer::new(scalesim_objtrace::Retention::HistogramOnly),
            heap: HeapStats::default(),
            per_thread: Vec::new(),
            events_processed: 0,
            counters: Counters::new(),
            timeline: Timeline::disabled(),
            host_ns: 0,
            outcome: RunOutcome::Quarantined(why),
            server: None,
        }
    }

    /// Wall time minus GC pauses — the paper's "mutator time" component
    /// of total execution.
    #[must_use]
    pub fn mutator_wall(&self) -> SimDuration {
        self.wall_time.saturating_sub(self.gc_time)
    }

    /// GC share of total execution, in `[0, 1]`.
    #[must_use]
    pub fn gc_share(&self) -> f64 {
        if self.wall_time.is_zero() {
            0.0
        } else {
            self.gc_time.as_secs_f64() / self.wall_time.as_secs_f64()
        }
    }

    /// Total items completed across threads.
    #[must_use]
    pub fn total_items(&self) -> u64 {
        self.per_thread.iter().map(|t| t.items_done).sum()
    }

    /// Per-thread item shares (fractions of total, one per thread).
    #[must_use]
    pub fn work_shares(&self) -> Vec<f64> {
        let total = self.total_items().max(1) as f64;
        self.per_thread
            .iter()
            .map(|t| t.items_done as f64 / total)
            .collect()
    }

    /// Workload-imbalance summary over per-thread item counts — CV near 0
    /// means "nearly uniform distribution of workload among threads"
    /// (§III); large CV means a few threads do most of the work.
    #[must_use]
    pub fn work_distribution(&self) -> Summary {
        let counts: Vec<f64> = self
            .per_thread
            .iter()
            .map(|t| t.items_done as f64)
            .collect();
        Summary::from_samples(&counts)
    }

    /// How many threads carry 90 % of the work (smallest such set).
    #[must_use]
    pub fn threads_for_90pct_work(&self) -> usize {
        let mut counts: Vec<u64> = self.per_thread.iter().map(|t| t.items_done).collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let mut acc = 0u64;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc as f64 >= 0.9 * total as f64 {
                return i + 1;
            }
        }
        counts.len()
    }

    /// Aggregate suspension time (alive but not executing) over mutators.
    #[must_use]
    pub fn total_suspension(&self) -> SimDuration {
        self.per_thread.iter().map(|t| t.times.suspended()).sum()
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} with {} threads on {} cores:",
            self.app, self.threads, self.cores
        )?;
        if !self.outcome.is_ok() {
            writeln!(f, "  outcome: {}", self.outcome)?;
        }
        writeln!(
            f,
            "  wall {}  (mutator {}, gc {} = {:.1}%)",
            self.wall_time,
            self.mutator_wall(),
            self.gc_time,
            self.gc_share() * 100.0
        )?;
        writeln!(f, "  {}", self.gc)?;
        writeln!(
            f,
            "  locks: {} acquisitions, {} contentions",
            self.locks.total.acquisitions, self.locks.total.contentions
        )?;
        write!(f, "  {}", self.trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scalesim_objtrace::Retention;

    fn report_with_items(items: &[u64]) -> RunReport {
        RunReport {
            app: "test".into(),
            threads: items.len(),
            cores: items.len(),
            wall_time: SimDuration::from_millis(100),
            gc_time: SimDuration::from_millis(20),
            mutator_cpu: SimDuration::from_millis(300),
            gc: GcLog::new(),
            locks: LockReport::default(),
            trace: ObjectTracer::new(Retention::HistogramOnly),
            heap: HeapStats::default(),
            per_thread: items
                .iter()
                .map(|&n| ThreadReport {
                    items_done: n,
                    times: StateTimes::default(),
                    dispatches: 0,
                    preemptions: 0,
                })
                .collect(),
            events_processed: 0,
            counters: Counters::new(),
            timeline: Timeline::disabled(),
            host_ns: 0,
            outcome: RunOutcome::Ok,
            server: None,
        }
    }

    #[test]
    fn mutator_wall_and_gc_share() {
        let r = report_with_items(&[10, 10]);
        assert_eq!(r.mutator_wall(), SimDuration::from_millis(80));
        assert!((r.gc_share() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn work_shares_sum_to_one() {
        let r = report_with_items(&[30, 10, 40, 20]);
        let shares = r.work_shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(shares[2], 0.4);
        assert_eq!(r.total_items(), 100);
    }

    #[test]
    fn imbalance_distinguishes_uniform_from_skewed() {
        let uniform = report_with_items(&[25, 25, 25, 25]);
        let skewed = report_with_items(&[97, 1, 1, 1]);
        assert!(uniform.work_distribution().coefficient_of_variation() < 0.01);
        assert!(skewed.work_distribution().coefficient_of_variation() > 1.0);
    }

    #[test]
    fn threads_for_90pct_work() {
        let uniform = report_with_items(&[25, 25, 25, 25]);
        assert_eq!(uniform.threads_for_90pct_work(), 4);
        let skewed = report_with_items(&[90, 4, 3, 2, 1, 0, 0, 0]);
        assert_eq!(skewed.threads_for_90pct_work(), 1);
        let empty = report_with_items(&[0, 0]);
        assert_eq!(empty.threads_for_90pct_work(), 0);
    }

    #[test]
    fn display_is_informative() {
        let r = report_with_items(&[1]);
        let s = r.to_string();
        assert!(s.contains("test with 1 threads"), "{s}");
        assert!(s.contains("gc"), "{s}");
        assert!(!s.contains("outcome"), "clean runs stay terse: {s}");
    }

    #[test]
    fn quarantined_report_is_marked_and_metricless() {
        let r = RunReport::quarantined("xalan", 8, 8, "worker panicked".to_owned());
        assert!(!r.outcome.is_ok());
        assert_eq!(r.outcome.marker(), "quar");
        assert_eq!(r.total_items(), 0);
        let s = r.to_string();
        assert!(s.contains("quarantined: worker panicked"), "{s}");
    }

    #[test]
    fn outcome_markers() {
        use scalesim_simkit::AbortReason;
        assert_eq!(RunOutcome::Ok.marker(), "");
        assert_eq!(
            RunOutcome::Truncated(AbortReason::MaxEvents(7)).marker(),
            "trunc"
        );
        assert!(RunOutcome::Truncated(AbortReason::MaxEvents(7))
            .to_string()
            .contains("event budget"));
    }
}
